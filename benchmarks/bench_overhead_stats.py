"""Benchmark + reproduction of the Sec. 5.5 cost statistics.

Two claims:

* overflow resolution raises the schedule cost (paper: 12 % average, 34 %
  worst case -- our stronger greedy sees smaller penalties; the check is
  that penalties are nonnegative and bounded),
* the end-to-end heuristic lands within ~30 % of the optimal schedule on
  average (measured exactly on exhaustively solvable instances).
"""

from repro.analysis import format_table, summarize
from repro.experiments import optimality_gap


def _resolution_penalties(runner):
    """Cost-increase ratios over a contended sub-grid."""
    ratios = []
    for cap in (5, 8):
        for srate in (3, 8):
            for alpha in (0.1, 0.271):
                rec = runner.run(
                    capacity_gb=cap, srate_per_gb_hour=srate, alpha=alpha
                )
                if rec.had_overflow:
                    ratios.append(rec.cost_increase_ratio)
    return ratios


def test_resolution_cost_increase(benchmark, bench_runner, save_artifact):
    ratios = benchmark.pedantic(
        lambda: _resolution_penalties(bench_runner), rounds=1, iterations=1
    )
    assert ratios, "the grid must produce overflow cases"
    s = summarize(ratios)
    save_artifact(
        "sec5_5_resolution_penalty",
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["overflow cases", "622/785", f"{s.n} sampled"],
                ["avg cost increase", "12 %", f"{100 * s.mean:.2f} %"],
                ["max cost increase", "34 %", f"{100 * s.maximum:.2f} %"],
            ],
            title="Sec. 5.5: overflow-resolution cost increase",
        ),
    )
    assert all(r >= -1e-12 for r in ratios)
    assert s.maximum <= 0.34 + 0.16  # within paper's worst case + margin


def test_optimality_gap(benchmark, save_artifact):
    gap = benchmark.pedantic(
        lambda: optimality_gap(n_instances=12, seed=3), rounds=1, iterations=1
    )
    save_artifact("sec5_5_optimality_gap", gap.as_table())
    assert gap.gaps, "gap measurement produced no instances"
    assert all(g >= -1e-9 for g in gap.gaps), "heuristic can never beat optimal"
    assert gap.summary.mean <= 0.30, "paper: within 30 % of optimal on average"
