"""Benchmark for the contention-sweep extension experiment.

Checked shape: overflow pressure (situations, resolution iterations) grows
as request density scales; the resolution cost penalty reaches meaningful
percentages at high contention -- the regime of the paper's 12 % average.
"""

from conftest import is_full_run

from repro.experiments import contention_sweep, paper_config, quick_config


def test_contention_sweep(benchmark, save_artifact):
    cfg = paper_config() if is_full_run() else quick_config(n_files=150)
    users_axis = (5, 10, 20, 40) if is_full_run() else (4, 10, 24)
    sweep = benchmark.pedantic(
        lambda: contention_sweep(cfg, users_axis=users_axis),
        rounds=1,
        iterations=1,
    )
    save_artifact("contention_sweep", sweep.as_table())

    iters = sweep.iterations()
    assert iters[-1] >= iters[0], "more load must need at least as many fixes"
    assert all(p >= 0 for p in sweep.penalties())
    # the densest point must actually exercise overflow resolution
    assert sweep.points[-1].overflow_count > 0
