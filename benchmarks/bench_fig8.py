"""Benchmark + reproduction of Fig. 8: storage rate sweep per network rate.

Paper claims checked (Sec. 5.3): every curve rises-then-saturates in the
storage rate; the network rate's effect is substantial and roughly linear
(curves ordered by nrate, evenly spread); the storage rate matters mostly
when it is low.
"""

import pytest

from repro.experiments import fig8

_NRATES = (300, 600, 1000)


def test_fig8(benchmark, bench_runner, save_artifact):
    fig = benchmark.pedantic(
        lambda: fig8(bench_runner, nrates=_NRATES), rounds=1, iterations=1
    )
    save_artifact("fig8", fig.render())

    curves = [fig.series_by_name(f"nrate={n:g}") for n in _NRATES]
    for s in curves:
        assert s.is_increasing(), f"{s.name} must rise with the storage rate"
    for lo, hi in zip(curves, curves[1:]):
        assert hi.dominates(lo), "higher network rate must cost more"
    # network-rate effect ~linear: interpolate the middle curve's first point
    y0 = [s.y[0] for s in curves]
    expected_mid = y0[0] + (y0[2] - y0[0]) * (600 - 300) / (1000 - 300)
    assert y0[1] == pytest.approx(expected_mid, rel=0.1)
