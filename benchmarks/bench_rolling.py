"""Performance + behaviour benchmark for rolling multi-cycle operation.

Times a three-cycle rolling run at the bench scale and checks the carryover
machinery's observable behaviour: inherited caches get reused, net costs
telescope correctly, and every cycle stays feasible.
"""

from repro import (
    PeakHourArrivals,
    Request,
    RequestBatch,
    WorkloadGenerator,
    detect_overflows,
    units,
)
from repro.extensions import RollingScheduler


def _run_week(runner, n_cycles=3):
    topo = runner.topology()
    gen = WorkloadGenerator(
        topo,
        runner.catalog,
        alpha=0.271,
        users_per_neighborhood=runner.config.users_per_neighborhood,
        arrivals=PeakHourArrivals(),
    )
    rolling = RollingScheduler(topo, runner.catalog)
    results = []
    for day in range(n_cycles):
        offset = day * units.DAY
        raw = gen.generate(seed=200 + day)
        batch = RequestBatch(
            Request(
                r.start_time + offset,
                r.video_id,
                f"d{day}/{r.user_id}",
                r.local_storage,
            )
            for r in raw
        )
        results.append(
            (batch, rolling.schedule_cycle(batch, cycle_end=offset + units.DAY))
        )
    return topo, results


def test_rolling_cycles(benchmark, bench_runner, save_artifact):
    topo, results = benchmark.pedantic(
        lambda: _run_week(bench_runner), rounds=1, iterations=1
    )
    lines = []
    total_reused = 0
    for batch, res in results:
        assert detect_overflows(res.schedule, bench_runner.catalog, topo) == []
        served = {d.request.user_id for d in res.schedule.deliveries}
        assert served == {r.user_id for r in batch}
        assert res.net_total_cost >= 0
        total_reused += res.reused_carryover
        lines.append(
            f"cycle {res.cycle_index}: net ${res.net_total_cost:,.0f}, "
            f"carry in/out {res.carried_in}/{res.carried_out}, "
            f"reused {res.reused_carryover}"
        )
    save_artifact("rolling_cycles", "\n".join(lines))
    # prime-time tails cross midnight at this scale: reuse must occur
    assert sum(res.carried_out for _, res in results[:-1]) > 0
