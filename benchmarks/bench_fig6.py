"""Benchmark + reproduction of Fig. 6: network rate vs cost per access skew.

Paper claims checked (Sec. 5.2): cost rises with the network rate for every
Zipf alpha, and "total service cost increases when the requests are more
evenly distributed" (larger alpha dominates smaller).
"""

from repro.experiments import fig6


def test_fig6(benchmark, bench_runner, save_artifact):
    alphas = bench_runner.config.alpha_axis
    fig = benchmark.pedantic(
        lambda: fig6(bench_runner, alphas=alphas), rounds=1, iterations=1
    )
    save_artifact("fig6", fig.render())

    for s in fig.series:
        assert s.is_increasing(strict=True), f"{s.name} must rise with nrate"
    ordered = [fig.series_by_name(f"alpha={a:g}") for a in sorted(alphas)]
    for lo, hi in zip(ordered, ordered[1:]):
        assert hi.dominates(lo), (
            f"{hi.name} (less biased) must cost at least {lo.name}"
        )
