"""Benchmark + reproduction of Fig. 9: access pattern vs storage size.

Paper claims checked (Sec. 5.4):
* total cost increases as the access pattern becomes less biased;
* smaller intermediate storages cost more;
* the advantage of larger storage grows as the pattern gets more skewed
  (the vertical distance between size-curves narrows with alpha).
"""

from repro.analysis import gap_between
from repro.experiments import fig9


def test_fig9(benchmark, bench_runner, save_artifact):
    caps = bench_runner.config.capacity_axis
    small_cap, large_cap = caps[0], caps[-1]
    fig = benchmark.pedantic(
        lambda: fig9(bench_runner, capacities=(small_cap, 8, large_cap)),
        rounds=1,
        iterations=1,
    )
    save_artifact("fig9", fig.render())

    for s in fig.series:
        assert s.is_increasing(), f"{s.name} must rise with alpha"
    small = fig.series_by_name(f"IS size={small_cap:g} GB")
    large = fig.series_by_name(f"IS size={large_cap:g} GB")
    assert small.dominates(large), "smaller storage must cost at least as much"
    gaps = gap_between(small, large)
    assert gaps[0] >= gaps[-1] >= -1e-9, (
        "larger storage must matter most under skewed access"
    )
