"""Benchmark for the hierarchical-warehouse staging substrate.

Not a paper figure -- the paper idealizes the warehouse -- but its related
work motivates the tape+disk hierarchy, and DESIGN.md lists this as an
extension experiment: miss rate vs. warehouse hardware for a fixed
scheduled workload.  Checked shapes: more disk and more drives never
increase misses, and a mid-90s-plausible configuration reaches zero misses.
"""

from repro import (
    StagingPlanner,
    VideoScheduler,
    WarehouseSpec,
    WorkloadGenerator,
    units,
)
from repro.analysis import format_table


def _plan_sweep(runner):
    topo = runner.topology()
    batch = runner.batch()
    result = VideoScheduler(topo, runner.catalog).solve(batch)
    rows = []
    for disk_gb, drives in [(50, 2), (100, 4), (400, 8)]:
        spec = WarehouseSpec(
            disk_capacity=units.gb(disk_gb),
            tape_drives=drives,
            tape_bandwidth=60 * units.MB,
        )
        report = StagingPlanner(spec, runner.catalog).plan(result.schedule)
        rows.append((disk_gb, drives, report))
    return rows


def test_warehouse_staging(benchmark, bench_runner, save_artifact):
    rows = benchmark.pedantic(
        lambda: _plan_sweep(bench_runner), rounds=1, iterations=1
    )
    save_artifact(
        "warehouse_staging",
        format_table(
            ["disk (GB)", "drives", "stagings", "hits", "misses", "miss rate"],
            [
                [
                    d,
                    n,
                    len(r.tasks),
                    r.hits,
                    len(r.misses),
                    f"{100 * r.miss_rate:.1f} %",
                ]
                for d, n, r in rows
            ],
            title="warehouse staging sweep (extension)",
        ),
    )
    misses = [len(r.misses) for _, _, r in rows]
    assert misses[0] >= misses[1] >= misses[2]
    assert misses[-1] == 0, "the big configuration must stage everything on time"
    for _, _, r in rows:
        assert r.peak_disk_usage <= units.gb(400) + 1e-6
