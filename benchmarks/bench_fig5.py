"""Benchmark + reproduction of Fig. 5: network charging rate vs total cost.

Paper claims checked here (Sec. 5.2):
* every curve increases with the network charging rate;
* the environment without intermediate storage costs the most, and its
  advantage gap widens as the network rate grows;
* the no-cache baseline is linear in the network rate;
* cheaper storage gives cheaper schedules.
"""

from repro.analysis import gap_between
from repro.experiments import fig5


def test_fig5(benchmark, bench_runner, save_artifact):
    srates = bench_runner.config.srate_axis
    fig = benchmark.pedantic(
        lambda: fig5(bench_runner, srates=(srates[0], srates[-1])),
        rounds=1,
        iterations=1,
    )
    save_artifact("fig5", fig.render())

    baseline = fig.series_by_name("no intermediate storage")
    cached_lo = fig.series_by_name(f"srate={srates[0]:g}")
    cached_hi = fig.series_by_name(f"srate={srates[-1]:g}")

    for s in fig.series:
        assert s.is_increasing(strict=True), f"{s.name} must rise with nrate"
    assert baseline.dominates(cached_lo)
    assert baseline.dominates(cached_hi)
    assert cached_hi.dominates(cached_lo)
    gaps = gap_between(baseline, cached_lo)
    assert gaps[-1] > gaps[0] > 0, "caching advantage must widen with nrate"
    assert baseline.linearity() > 0.999
