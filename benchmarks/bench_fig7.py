"""Benchmark + reproduction of Fig. 7: storage charging rate vs total cost.

Paper claims checked (Sec. 5.3):
* cost rises with the storage charging rate;
* sensitivity is highest at low storage rates (the curve flattens);
* the curve approaches the network-only system's constant cost from below.
"""

from repro.analysis import gap_between
from repro.experiments import fig7


def test_fig7(benchmark, bench_runner, save_artifact):
    fig = benchmark.pedantic(lambda: fig7(bench_runner), rounds=1, iterations=1)
    save_artifact("fig7", fig.render())

    cached = fig.series_by_name("with intermediate storage")
    base = fig.series_by_name("network only system")

    assert cached.is_increasing()
    assert base.is_increasing() and base.is_decreasing()  # constant line
    assert base.dominates(cached)
    gaps = gap_between(base, cached)
    assert gaps[0] > gaps[-1] >= -1e-9, "must approach the asymptote"
    xs, ys = cached.x, cached.y
    first_slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
    last_slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
    assert first_slope > last_slope >= 0, "sensitivity must decay"
