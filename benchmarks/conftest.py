"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, times the run
via pytest-benchmark, asserts the paper's qualitative claims, and writes the
rendered artifact to ``benchmarks/results/<name>.txt`` (also echoed to
stdout when pytest runs with ``-s``).

Scale is controlled by the ``REPRO_BENCH_FULL`` environment variable:
unset/0 runs the scaled-down configuration (same shapes, minutes not hours);
``REPRO_BENCH_FULL=1`` runs the paper's full Table 4 grid.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentRunner, paper_config, quick_config

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def is_full_run() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0")


@pytest.fixture(scope="session")
def bench_config():
    if is_full_run():
        return paper_config()
    # mid-size: enough contention for every paper shape to show
    return quick_config(n_files=150, users_per_neighborhood=10)


@pytest.fixture(scope="session")
def bench_runner(bench_config):
    return ExperimentRunner(bench_config)


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)
    scale = (
        "full Table 4 scale (REPRO_BENCH_FULL=1)"
        if is_full_run()
        else "scaled-down grid (set REPRO_BENCH_FULL=1 for the full Table 4 run)"
    )

    def _save(name: str, text: str) -> None:
        stamped = f"[scale: {scale}]\n{text}"
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(stamped + "\n")
        print(f"\n{stamped}\n[saved to {path}]")

    return _save
