"""Benchmark + reproduction of the Fig. 2 worked example (Sec. 3.2).

Paper values: Ψ(S1) = $259.20, Ψ(S2) = $138.975.  Both must reproduce
*exactly* -- this is the cost model's ground truth.
"""

import pytest

from repro.experiments import worked_example


def test_worked_example(benchmark, save_artifact):
    result = benchmark(worked_example)
    save_artifact("fig2_worked_example", result.as_table())
    assert result.psi_s1 == pytest.approx(259.2, abs=1e-9)
    assert result.psi_s2 == pytest.approx(138.975, abs=1e-9)
    assert result.psi_greedy <= result.psi_s2
