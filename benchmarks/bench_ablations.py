"""Benchmarks for the DESIGN.md ablation studies.

* route-wide vs destination-only cache deposits (phase-1 design choice),
* the four heat metrics head-to-head at a contended grid point,
* the bandwidth extension's admission behaviour as links tighten.
"""

from repro.experiments import (
    ablation_bandwidth,
    ablation_deposit_scope,
    ablation_heat_metrics,
)


def test_ablation_deposit_scope(benchmark, bench_runner, save_artifact):
    result = benchmark.pedantic(
        lambda: ablation_deposit_scope(bench_runner), rounds=1, iterations=1
    )
    save_artifact("ablation_deposit_scope", result.as_table())
    # Route-wide deposits give the greedy strictly more options, so Phase 1
    # is cheaper.  The *final* ordering can flip under tight capacity: the
    # richer candidate set also packs storages harder, triggering more
    # overflow resolution (a finding this ablation exists to surface).
    phase1 = {r.variant: r.extra["phase1 ($)"] for r in result.rows}
    assert phase1["route"] <= phase1["destination"] * 1.001


def test_ablation_heat_metrics(benchmark, bench_runner, save_artifact):
    result = benchmark.pedantic(
        lambda: ablation_heat_metrics(bench_runner), rounds=1, iterations=1
    )
    save_artifact("ablation_heat_metrics", result.as_table())
    assert len(result.rows) == 4
    costs = [r.total_cost for r in result.rows]
    assert max(costs) < 2 * min(costs), "metrics differ but not wildly"


def test_ablation_bandwidth(benchmark, bench_runner, save_artifact):
    result = benchmark.pedantic(
        lambda: ablation_bandwidth(
            bench_runner, link_capacities_mbps=(12, 48, 192)
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("ablation_bandwidth", result.as_table())
    tight, mid, loose = result.rows
    assert loose.extra["rejected"] == 0
    assert tight.extra["rejected"] + tight.extra["diverted"] >= (
        loose.extra["rejected"] + loose.extra["diverted"]
    )
