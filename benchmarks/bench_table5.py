"""Benchmark + reproduction of Table 5: heat-metric win rates.

Paper (over 785 parameter combinations, 622 with overflow-resolution cost):
method 2 best in 63 %, method 4 best in 70 %, method 2-or-4 best in 98 %.

The quick grid keeps the combination count small; ``REPRO_BENCH_FULL=1``
sweeps the complete Table 4 cartesian grid (768 combinations).  The
reproduced claim is the *dominance* of the per-cost metrics (2 and 4), not
the exact percentages -- our phase-1 greedy is stronger than the paper's,
so overflows are rarer and milder (see EXPERIMENTS.md).
"""

from conftest import is_full_run

from repro.experiments import table5


def _axes(runner):
    cfg = runner.config
    if is_full_run():
        return dict(
            nrates=cfg.nrate_axis,
            srates=cfg.srate_axis,
            capacities=cfg.capacity_axis,
            alphas=cfg.alpha_axis,
        )
    return dict(
        nrates=(300, 1000),
        srates=(3, 8),
        capacities=(5, 8),
        alphas=(0.1, 0.271, 0.5),
    )


def test_table5(benchmark, bench_runner, save_artifact):
    comparison = benchmark.pedantic(
        lambda: table5(bench_runner, **_axes(bench_runner)),
        rounds=1,
        iterations=1,
    )
    save_artifact("table5", comparison.as_table())

    assert comparison.total_cases > 0
    assert comparison.cases_with_cost > 0, "grid must exercise overflow"
    # the per-cost metrics must dominate, as in the paper
    assert comparison.rate_2_or_4 >= 0.5
    # resolution penalties stay within the paper's worst case
    assert comparison.increase_summary.maximum <= 0.50
