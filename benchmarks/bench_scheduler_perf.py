"""Pure performance benchmarks of the scheduler itself.

Not a paper artifact: tracks the runtime of the two-phase solve at the
paper's scale and of its building blocks, so regressions in the hot paths
(routing, greedy pricing, overflow sweeps) are caught by
``pytest benchmarks/ --benchmark-only``.

Also runs standalone as the parallel-scheduling speedup report::

    PYTHONPATH=src python benchmarks/bench_scheduler_perf.py [--quick]
        [--videos N] [--workers N] [--backends thread,process]
        [--json-out BENCH_phase1.json]

which times Phase 1 serially and on each parallel backend over a 500-video
batch (``--quick``: 60 videos), verifies every run is bit-identical to the
serial schedule, and reports speedups plus cost-cache hit rates.
``--json-out`` additionally writes the whole report as machine-readable
JSON (per-backend wall time, speedup, cache hit rate, schedule Ψ) so CI
can archive it as an artifact and diff runs over time.

``--compare BASELINE.json`` checks the run against a committed baseline
report (see ``benchmarks/BENCH_phase1.json``): the deterministic outputs
(Ψ totals, overflow iterations, warehouse-loss recovery outcome) must
match bit-for-bit and the configurations must agree, else the process
exits 2.  Wall-clock numbers are printed for context but never gate --
they depend on the machine.

Beyond Phase 1, the report also times Phase 2 (a standalone SORP pass
over the greedy schedule) and runs a seeded warehouse-loss drill on a
replicated two-warehouse copy of the paper topology, recording recovery
latency plus the deterministic saved/lost/Ψ-delta outcome.

Finally an online amendment drill replays a seeded fault feed (with one
injected transient failure) through the
:class:`~repro.online.OnlineAmendmentLoop`, recording amendment latency
plus the deterministic batch/retry/shed counters and the windowed-vs-cycle
lost-request comparison -- the windowed stance must never lose a request
cycle masking would save.

The multi-cycle horizon drill replays the committed
``benchmarks/scenarios/rush_hour_brownout.jsonl`` feed through a 3-cycle
:class:`~repro.horizon.HorizonOrchestrator` on the shrunken-cache
two-warehouse topology, gating the migration decisions, the per-cycle
Ψ trajectory, the resume/restart split, and the migrating-vs-frozen
horizon-total Ψ comparison -- migration must never cost more than the
frozen replica map, staging included.

The admission-gateway drill replays the committed
``benchmarks/scenarios/flash_crowd.jsonl`` booking spike through the
:class:`~repro.gateway.ReservationGateway` under a tight backpressure
envelope (batch 60, queue 8), gating the admitted/rejected/shed split,
the admission ratio, and the quote-vs-realized Ψ error.
"""

import argparse
import json
import sys
import time

import pytest

from repro import (
    CostModel,
    IndividualScheduler,
    ParallelConfig,
    ParallelIndividualScheduler,
    VideoScheduler,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.core.overflow import detect_overflows
from repro.core.spacefunc import UsageTimeline, residency_profile


@pytest.fixture(scope="module")
def env():
    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    catalog = paper_catalog(seed=4)
    batch = WorkloadGenerator(topo, catalog, alpha=0.271).generate(seed=4)
    return topo, catalog, batch


def test_bench_two_phase_solve(benchmark, env):
    topo, catalog, batch = env
    scheduler = VideoScheduler(topo, catalog)
    result = benchmark(lambda: scheduler.solve(batch))
    assert len(result.schedule.deliveries) == len(batch)


def test_bench_phase1_only(benchmark, env):
    topo, catalog, batch = env
    cm = CostModel(topo, catalog)
    greedy = IndividualScheduler(cm)
    schedule = benchmark(lambda: greedy.solve(batch))
    assert len(schedule.deliveries) == len(batch)


def test_bench_phase1_uncached(benchmark, env):
    topo, catalog, batch = env
    greedy = IndividualScheduler(CostModel(topo, catalog, cache=False))
    schedule = benchmark(lambda: greedy.solve(batch))
    assert len(schedule.deliveries) == len(batch)


def test_bench_phase1_process_pool(benchmark, env):
    topo, catalog, batch = env
    engine = ParallelIndividualScheduler(
        CostModel(topo, catalog), ParallelConfig(backend="process", workers=2)
    )
    result = benchmark(lambda: engine.run(batch))
    assert len(result.schedule.deliveries) == len(batch)


def test_bench_overflow_detection(benchmark, env):
    topo, catalog, batch = env
    cm = CostModel(topo, catalog)
    schedule = IndividualScheduler(cm).solve(batch)
    benchmark(lambda: detect_overflows(schedule, catalog, topo))


def test_bench_usage_timeline_sweep(benchmark):
    profiles = [
        residency_profile(2.5e9, 5400.0, float(i * 600), float(i * 600 + 7200))
        for i in range(200)
    ]
    tl = benchmark(lambda: UsageTimeline(profiles))
    assert tl.peak > 0


# -- standalone speedup report ------------------------------------------------


#: Baseline keys that must match bit-for-bit: pure functions of the seeded
#: workload, independent of machine and backend.
_DETERMINISTIC_SOLVE_KEYS = (
    "psi_total_dollars",
    "psi_network_dollars",
    "psi_storage_dollars",
    "overflow_iterations",
)
#: Config keys that define the workload a baseline was taken against.
_CONFIG_KEYS = ("n_videos", "n_requests", "users_per_neighborhood", "quick")
#: Recovery-drill keys that must match bit-for-bit: the warehouse-loss
#: outcome is a pure function of the seeded workload and replica map.
_DETERMINISTIC_RECOVERY_KEYS = (
    "requests_saved",
    "requests_lost",
    "impacted_videos",
    "psi_delta_dollars",
)
#: Online-drill keys that must match bit-for-bit: the amendment loop's
#: trajectory is a pure function of (feed seed, injected failures).
_DETERMINISTIC_ONLINE_KEYS = (
    "feed_events",
    "batches",
    "batches_amended",
    "retries",
    "failures_injected",
    "requests_lost_windowed",
    "requests_lost_cycle",
)
#: SLO indicators that must match bit-for-bit: ratios of deterministic
#: counters (latency indicators stay outside the gate).
_DETERMINISTIC_SLO_KEYS = (
    "deadline_hit_rate",
    "rejection_rate",
    "amendment_failure_rate",
    "shed_rate",
)
#: Horizon-drill keys that must match bit-for-bit: the multi-cycle
#: trajectory is a pure function of (workload seed, committed feed).
_DETERMINISTIC_HORIZON_KEYS = (
    "cycles",
    "migrations_accepted",
    "migrations_rejected",
    "staging_dollars",
    "resumed",
    "restarted",
    "resume_credit_dollars",
    "carried_events",
    "psi_trajectory",
    "psi_total_dollars",
    "psi_frozen_dollars",
)
#: Gateway-drill keys that must match bit-for-bit: the intake trajectory
#: is a pure function of the committed feed and the backpressure envelope.
_DETERMINISTIC_GATEWAY_KEYS = (
    "bookings_offered",
    "bookings_admitted",
    "bookings_rejected",
    "bookings_shed",
    "cycles_sealed",
    "admission_ratio",
    "shed_rate",
    "quote_error",
    "quote_total_dollars",
    "realized_total_dollars",
)


def compare_reports(baseline: dict, current: dict) -> list[str]:
    """Differences between a baseline report and the current run.

    Returns human-readable mismatch lines (empty = pass).  Only
    deterministic quantities gate: schedule Ψ (total/network/storage) and
    SORP iteration count, after checking the two runs solved the same
    workload.  Timing fields are ignored.
    """
    problems: list[str] = []
    if baseline.get("benchmark") != current.get("benchmark"):
        problems.append(
            f"benchmark name differs: baseline "
            f"{baseline.get('benchmark')!r} vs {current.get('benchmark')!r}"
        )
        return problems
    b_cfg, c_cfg = baseline.get("config", {}), current.get("config", {})
    for key in _CONFIG_KEYS:
        if b_cfg.get(key) != c_cfg.get(key):
            problems.append(
                f"config.{key} differs: baseline {b_cfg.get(key)!r} vs "
                f"{c_cfg.get(key)!r} (re-record the baseline or rerun with "
                "matching flags)"
            )
    if problems:
        return problems
    b_solve, c_solve = baseline.get("solve", {}), current.get("solve", {})
    for key in _DETERMINISTIC_SOLVE_KEYS:
        if b_solve.get(key) != c_solve.get(key):
            problems.append(
                f"solve.{key} regressed: baseline {b_solve.get(key)!r} vs "
                f"{c_solve.get(key)!r}"
            )
    b_rec, c_rec = baseline.get("recovery", {}), current.get("recovery", {})
    for key in _DETERMINISTIC_RECOVERY_KEYS:
        if b_rec.get(key) != c_rec.get(key):
            problems.append(
                f"recovery.{key} regressed: baseline {b_rec.get(key)!r} vs "
                f"{c_rec.get(key)!r}"
            )
    b_onl, c_onl = baseline.get("online", {}), current.get("online", {})
    for key in _DETERMINISTIC_ONLINE_KEYS:
        if b_onl.get(key) != c_onl.get(key):
            problems.append(
                f"online.{key} regressed: baseline {b_onl.get(key)!r} vs "
                f"{c_onl.get(key)!r}"
            )
    b_slo, c_slo = b_onl.get("slo", {}), c_onl.get("slo", {})
    for key in _DETERMINISTIC_SLO_KEYS:
        if b_slo.get(key) != c_slo.get(key):
            problems.append(
                f"online.slo.{key} regressed: baseline {b_slo.get(key)!r} vs "
                f"{c_slo.get(key)!r}"
            )
    b_hor, c_hor = baseline.get("horizon", {}), current.get("horizon", {})
    for key in _DETERMINISTIC_HORIZON_KEYS:
        if b_hor.get(key) != c_hor.get(key):
            problems.append(
                f"horizon.{key} regressed: baseline {b_hor.get(key)!r} vs "
                f"{c_hor.get(key)!r}"
            )
    b_gw, c_gw = baseline.get("gateway", {}), current.get("gateway", {})
    for key in _DETERMINISTIC_GATEWAY_KEYS:
        if b_gw.get(key) != c_gw.get(key):
            problems.append(
                f"gateway.{key} regressed: baseline {b_gw.get(key)!r} vs "
                f"{c_gw.get(key)!r}"
            )
    return problems


def _build_env(n_videos: int, users: int):
    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    catalog = paper_catalog(n_videos=n_videos, seed=4)
    batch = WorkloadGenerator(
        topo, catalog, alpha=0.271, users_per_neighborhood=users
    ).generate(seed=4)
    return topo, catalog, batch


def _time_sorp(topo, catalog, batch, repeats):
    """Best-of-N wall time of a standalone Phase-2 (SORP) pass."""
    from repro import resolve_overflows

    best = float("inf")
    iterations = 0
    for _ in range(repeats):
        cm = CostModel(topo, catalog)
        phase1 = ParallelIndividualScheduler(cm).run(batch).schedule
        t0 = time.perf_counter()
        _, stats = resolve_overflows(phase1, batch, cm)
        best = min(best, time.perf_counter() - t0)
        iterations = stats.iterations
    return best, iterations


def _recovery_drill(n_videos: int, users: int):
    """Seeded warehouse-loss drill on a replicated paper topology.

    A second warehouse is grafted onto the IS7 leaf cluster, every video
    is full-copy replicated, and the original warehouse is then lost for
    the whole horizon.  The outcome (saved/lost/Ψ-delta) is deterministic;
    the recovery wall time is the latency metric.
    """
    from repro import (
        ContingencyScheduler,
        FaultKind,
        FaultPlan,
        FaultSpec,
        ReplicaMap,
    )

    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    topo.add_warehouse("VW2")
    topo.add_edge("IS7", "VW2", nrate=units.per_gb(500))
    catalog = paper_catalog(n_videos=n_videos, seed=4)
    batch = WorkloadGenerator(
        topo, catalog, alpha=0.271, users_per_neighborhood=users
    ).generate(seed=4)
    replicas = ReplicaMap.full_copy(topo, catalog)
    scheduler = VideoScheduler(topo, catalog, replicas=replicas)
    result = scheduler.solve(batch)
    t_lo, t_hi = batch.span
    plan = FaultPlan(
        (FaultSpec(FaultKind.WAREHOUSE_LOSS, "VW", t_lo, t_hi + 1.0),),
        name="bench-warehouse-loss",
        seed=4,
    )
    t0 = time.perf_counter()
    rec = ContingencyScheduler(scheduler.cost_model).recover(
        result.schedule, plan, batch=batch
    )
    wall = time.perf_counter() - t0
    return {
        "requests_saved": rec.requests_saved,
        "requests_lost": rec.requests_lost,
        "impacted_videos": rec.videos_resolved,
        "psi_delta_dollars": rec.cost_delta,
        "wall_time_seconds": wall,
    }


def _online_drill(n_videos: int, users: int):
    """Seeded online-amendment drill on the paper topology.

    Replays a generated fault feed (feed seed 7: its IS outage makes the
    windowed-vs-cycle gap visible) through the online loop with one
    injected transient failure.  The loop trajectory and the recovered
    schedule are deterministic; the amendment wall time is the latency
    metric.  Also recovers the original schedule under both masking
    stances to record the lost-request comparison the windowed mode must
    dominate.
    """
    from repro import VORService
    from repro.faults import ContingencyScheduler, FaultFeed
    from repro.obs.slo import deterministic_slice, online_indicators
    from repro.online import (
        OnlineAmendmentLoop,
        OnlineLoopConfig,
        TransientFailureInjector,
    )

    topo, catalog, batch = _build_env(n_videos, users)
    service = VORService(topo, catalog, lead_time=0.0)
    for r in batch:
        service.reserve(
            r.user_id, r.video_id, r.start_time,
            local_storage=r.local_storage, now=0.0,
        )
    t_lo, t_hi = batch.span
    report = service.close_cycle(cycle_end=t_hi)
    feed = FaultFeed.generate(
        topo,
        seed=7,
        horizon=(t_lo, t_hi + max(v.playback for v in catalog)),
        n_events=4,
    )
    loop = OnlineAmendmentLoop(
        service,
        OnlineLoopConfig(max_retries=2, backoff_base=0.0),
        failure_injector=TransientFailureInjector({0: 1}),
    )
    t0 = time.perf_counter()
    run = loop.run(feed, report)
    wall = time.perf_counter() - t0
    amend_times = [rec.duration_s for rec in run.records if rec.duration_s]

    cm = CostModel(topo, catalog)
    schedule = report.cycle.schedule
    plan = run.plan
    lost = {}
    for masking in ("cycle", "windowed"):
        rec = ContingencyScheduler(cm, masking=masking).recover(
            schedule, plan, batch=batch
        )
        lost[masking] = rec.requests_lost
    return {
        "feed_events": run.events_total,
        "batches": run.batches_total,
        "batches_amended": run.amended,
        "retries": run.retries_total,
        "failures_injected": run.failures_injected,
        "requests_lost_windowed": lost["windowed"],
        "requests_lost_cycle": lost["cycle"],
        "wall_time_seconds": wall,
        "amendment_seconds_max": max(amend_times, default=0.0),
        "amendment_seconds_mean": (
            sum(amend_times) / len(amend_times) if amend_times else 0.0
        ),
        "slo": deterministic_slice(
            online_indicators(run, reservations=len(batch))
        ),
    }


def _horizon_drill(n_videos: int, users: int):
    """Multi-cycle horizon drill on the rush-hour-brownout scenario.

    Shrinks the neighborhood caches to 3 GB (a demand spike the caches
    cannot absorb -- the regime where staged replicas pay for
    themselves), grafts a second warehouse behind IS15, and replays the
    committed boundary-straddling brownout feed through a 3-cycle
    horizon twice: once with the migration planner live, once with the
    replica map frozen.  Everything but the wall time is deterministic.
    """
    from pathlib import Path

    from repro import ReplicaMap
    from repro.faults import FaultFeed
    from repro.horizon import (
        HorizonConfig,
        HorizonOrchestrator,
        generate_drifting_cycles,
    )

    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(3),
    )
    topo.add_warehouse("VW2")
    topo.add_edge("IS15", "VW2", nrate=units.per_gb(100))
    catalog = paper_catalog(n_videos=n_videos, seed=4)
    cycles = generate_drifting_cycles(
        topo, catalog, cycles=3, cycle_length=units.DAY, seed=4, churn=0.5,
        users_per_neighborhood=users,
    )
    replicas = ReplicaMap.heat_placement(
        topo, catalog, cycles[0][0], degree=1, seed=0
    )
    feed = FaultFeed.load(
        Path(__file__).parent / "scenarios" / "rush_hour_brownout.jsonl"
    )
    t0 = time.perf_counter()
    report = HorizonOrchestrator(topo, catalog, replicas=replicas).run(
        cycles, feed=feed
    )
    wall = time.perf_counter() - t0
    frozen = HorizonOrchestrator(
        topo, catalog, replicas=replicas,
        config=HorizonConfig(migration=None),
    ).run(cycles, feed=feed)
    assert report.total_psi <= frozen.total_psi + 1e-6, (
        "migration raised horizon-total psi!"
    )
    return {
        "cycles": len(report.cycles),
        "migrations_accepted": report.migrations_accepted,
        "migrations_rejected": report.migrations_rejected,
        "staging_dollars": round(report.staging_cost, 6),
        "resumed": report.resumed,
        "restarted": report.restarted,
        "resume_credit_dollars": round(report.resume_credit, 6),
        "carried_events": sum(c.carried_events for c in report.cycles),
        "psi_trajectory": [round(p, 6) for p in report.psi_trajectory],
        "psi_total_dollars": round(report.total_psi, 6),
        "psi_frozen_dollars": round(frozen.total_psi, 6),
        "wall_time_seconds": wall,
    }


def _gateway_drill():
    """Admission-gateway drill on the committed flash-crowd spike.

    Replays ``scenarios/flash_crowd.jsonl`` (a slotted booking spike on
    the 60-video paper environment -- the feed embeds its video ids, so
    the drill always builds that environment regardless of ``--videos``)
    through the gateway with a batch of 60 and a queue of 8: the spike
    must overflow into shedding.  Everything but the wall time is
    deterministic.
    """
    from pathlib import Path

    from repro import (
        GatewayConfig,
        RequestFeed,
        ReservationGateway,
        VORService,
    )

    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    catalog = paper_catalog(n_videos=60, seed=4)
    feed = RequestFeed.load(
        Path(__file__).parent / "scenarios" / "flash_crowd.jsonl"
    )
    gateway = ReservationGateway(
        VORService(topo, catalog),
        config=GatewayConfig(max_batch=60, queue_depth=8),
    )
    t0 = time.perf_counter()
    run = gateway.run(
        feed, boundaries=[max(feed.span[1], feed.showing_span[1])]
    )
    wall = time.perf_counter() - t0
    assert run.shed > 0, "flash crowd did not trigger shedding!"
    assert run.feasible, "gateway drill sealed an infeasible cycle!"
    return {
        "bookings_offered": run.offered,
        "bookings_admitted": run.admitted,
        "bookings_rejected": dict(run.rejected),
        "bookings_shed": run.shed,
        "cycles_sealed": len(run.cycles),
        "admission_ratio": round(run.admission_ratio, 6),
        "shed_rate": round(run.shed_rate, 6),
        "quote_error": round(run.quote_error, 6),
        "quote_total_dollars": round(
            sum(c.quote_total for c in run.cycles), 6
        ),
        "realized_total_dollars": round(
            sum(c.realized_total for c in run.cycles), 6
        ),
        "wall_time_seconds": wall,
    }


def _time_phase1(topo, catalog, batch, config, repeats):
    """Best-of-N wall time of one Phase-1 run plus its result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        engine = ParallelIndividualScheduler(CostModel(topo, catalog), config)
        t0 = time.perf_counter()
        result = engine.run(batch)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serial-vs-parallel Phase-1 speedup and cache report"
    )
    parser.add_argument(
        "--quick", action="store_true", help="60-video smoke run (CI-sized)"
    )
    parser.add_argument("--videos", type=int, default=None, help="catalog size")
    parser.add_argument(
        "--workers", type=int, default=8, help="pool size (default 8)"
    )
    parser.add_argument(
        "--backends",
        default="thread,process",
        help="comma-separated parallel backends to time",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="best-of-N timing (default 3/1)"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the report as machine-readable JSON",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="diff the deterministic outputs (psi, overflow iterations) "
        "against a committed baseline report; exit 2 on mismatch",
    )
    args = parser.parse_args(argv)

    n_videos = args.videos if args.videos else (60 if args.quick else 500)
    users = 4 if args.quick else 10
    repeats = args.repeats if args.repeats else (1 if args.quick else 3)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    unknown = [b for b in backends if b not in ("thread", "process")]
    if unknown:
        parser.error(f"--backends must be thread and/or process, got {unknown}")

    topo, catalog, batch = _build_env(n_videos, users)
    print(
        f"Phase-1 speedup report: {n_videos} videos, {len(batch)} requests, "
        f"{args.workers} workers, best of {repeats}"
    )

    serial_t, serial = _time_phase1(
        topo, catalog, batch, ParallelConfig(), repeats
    )
    # time the uncached model separately for the cache-win line
    t0 = time.perf_counter()
    uncached_schedule = ParallelIndividualScheduler(
        CostModel(topo, catalog, cache=False)
    ).run(batch).schedule
    uncached_t = time.perf_counter() - t0
    assert uncached_schedule == serial.schedule, "cache changed the schedule!"

    # cache hit rate of a full two-phase solve (greedy + SORP repricing)
    solve = VideoScheduler(topo, catalog).solve(batch)

    rows = [("serial", serial_t, 1.0, solve.cache_hit_rate)]
    for backend in backends:
        cfg = ParallelConfig(backend=backend, workers=args.workers)
        t, result = _time_phase1(topo, catalog, batch, cfg, repeats)
        assert result.schedule == serial.schedule, f"{backend} diverged!"
        par_solve = VideoScheduler(topo, catalog, parallel=cfg).solve(batch)
        rows.append((backend, t, serial_t / t, par_solve.cache_hit_rate))

    print(f"\n{'backend':<10} {'time (s)':>10} {'speedup':>9} {'cache hit':>10}")
    for name, t, speedup, hit_rate in rows:
        print(f"{name:<10} {t:>10.3f} {speedup:>8.2f}x {100 * hit_rate:>9.1f}%")
    print(
        f"\nuncached serial Phase 1: {uncached_t:.3f}s "
        f"(cache win {uncached_t / serial_t:.2f}x); all backends bit-identical"
    )
    print(
        f"full solve cache: {solve.cache_stats.hits}/"
        f"{solve.cache_stats.lookups} hits "
        f"({100 * solve.cache_hit_rate:.1f}%), "
        f"SORP share {solve.resolution.cache_stats.lookups} lookups"
    )

    sorp_t, sorp_iterations = _time_sorp(topo, catalog, batch, repeats)
    print(
        f"SORP (Phase 2): {sorp_t:.3f}s standalone, "
        f"{sorp_iterations} overflow iteration(s)"
    )
    recovery = _recovery_drill(n_videos, users)
    print(
        f"warehouse-loss drill: saved "
        f"{recovery['requests_saved']}/"
        f"{recovery['requests_saved'] + recovery['requests_lost']} requests "
        f"over {recovery['impacted_videos']} video(s) in "
        f"{recovery['wall_time_seconds']:.3f}s "
        f"(psi delta {recovery['psi_delta_dollars']:+,.2f})"
    )
    online = _online_drill(n_videos, users)
    print(
        f"online amendment drill: {online['feed_events']} event(s), "
        f"{online['batches_amended']}/{online['batches']} batch(es) amended, "
        f"{online['retries']} retry(ies) in {online['wall_time_seconds']:.3f}s "
        f"(max amendment {online['amendment_seconds_max']:.3f}s); "
        f"windowed loses {online['requests_lost_windowed']} vs "
        f"{online['requests_lost_cycle']} whole-cycle"
    )
    horizon = _horizon_drill(n_videos, users)
    print(
        f"horizon drill: {horizon['cycles']} cycle(s), "
        f"{horizon['migrations_accepted']} migration(s) accepted "
        f"(staging ${horizon['staging_dollars']:,.2f}), "
        f"{horizon['resumed']} resumed / {horizon['restarted']} restarted "
        f"in {horizon['wall_time_seconds']:.3f}s; "
        f"psi ${horizon['psi_total_dollars']:,.2f} migrating vs "
        f"${horizon['psi_frozen_dollars']:,.2f} frozen"
    )
    gateway = _gateway_drill()
    print(
        f"gateway drill: {gateway['bookings_offered']} booking(s) -> "
        f"{gateway['bookings_admitted']} admitted / "
        f"{sum(gateway['bookings_rejected'].values())} rejected / "
        f"{gateway['bookings_shed']} shed in "
        f"{gateway['wall_time_seconds']:.3f}s "
        f"(quote error {100 * gateway['quote_error']:.1f}%)"
    )
    if args.json_out or args.compare:
        report = {
            "benchmark": "phase1_speedup",
            "config": {
                "n_videos": n_videos,
                "n_requests": len(batch),
                "users_per_neighborhood": users,
                "workers": args.workers,
                "repeats": repeats,
                "quick": args.quick,
            },
            "backends": [
                {
                    "backend": name,
                    "wall_time_seconds": t,
                    "speedup": speedup,
                    "cache_hit_rate": hit_rate,
                }
                for name, t, speedup, hit_rate in rows
            ],
            "uncached": {
                "wall_time_seconds": uncached_t,
                "cache_win": uncached_t / serial_t,
            },
            "solve": {
                "psi_total_dollars": solve.total_cost,
                "psi_network_dollars": solve.cost.network,
                "psi_storage_dollars": solve.cost.storage,
                "cache_hits": solve.cache_stats.hits,
                "cache_lookups": solve.cache_stats.lookups,
                "overflow_iterations": solve.resolution.iterations,
            },
            "sorp": {
                "wall_time_seconds": sorp_t,
                "iterations": sorp_iterations,
            },
            "recovery": recovery,
            "online": online,
            "horizon": horizon,
            "gateway": gateway,
        }
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json_out}")
        if args.compare:
            with open(args.compare) as fh:
                baseline = json.load(fh)
            problems = compare_reports(baseline, report)
            if problems:
                print(f"\nbaseline comparison vs {args.compare}: FAIL")
                for p in problems:
                    print(f"  {p}")
                return 2
            print(
                f"\nbaseline comparison vs {args.compare}: OK "
                f"(psi ${report['solve']['psi_total_dollars']:,.2f}, "
                f"{report['solve']['overflow_iterations']} overflow fixes)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
