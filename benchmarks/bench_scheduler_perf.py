"""Pure performance benchmarks of the scheduler itself.

Not a paper artifact: tracks the runtime of the two-phase solve at the
paper's scale and of its building blocks, so regressions in the hot paths
(routing, greedy pricing, overflow sweeps) are caught by
``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro import (
    CostModel,
    IndividualScheduler,
    VideoScheduler,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.core.overflow import detect_overflows
from repro.core.spacefunc import UsageTimeline, residency_profile


@pytest.fixture(scope="module")
def env():
    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    catalog = paper_catalog(seed=4)
    batch = WorkloadGenerator(topo, catalog, alpha=0.271).generate(seed=4)
    return topo, catalog, batch


def test_bench_two_phase_solve(benchmark, env):
    topo, catalog, batch = env
    scheduler = VideoScheduler(topo, catalog)
    result = benchmark(lambda: scheduler.solve(batch))
    assert len(result.schedule.deliveries) == len(batch)


def test_bench_phase1_only(benchmark, env):
    topo, catalog, batch = env
    cm = CostModel(topo, catalog)
    greedy = IndividualScheduler(cm)
    schedule = benchmark(lambda: greedy.solve(batch))
    assert len(schedule.deliveries) == len(batch)


def test_bench_overflow_detection(benchmark, env):
    topo, catalog, batch = env
    cm = CostModel(topo, catalog)
    schedule = IndividualScheduler(cm).solve(batch)
    benchmark(lambda: detect_overflows(schedule, catalog, topo))


def test_bench_usage_timeline_sweep(benchmark):
    profiles = [
        residency_profile(2.5e9, 5400.0, float(i * 600), float(i * 600 + 7200))
        for i in range(200)
    ]
    tl = benchmark(lambda: UsageTimeline(profiles))
    assert tl.peak > 0
