#!/usr/bin/env python3
"""Batching vs caching: how much does a little patience save?

The era's other big lever for VOD economics was *batching* (Dan et al.
1994): delay each showing to the next slot boundary so requests for the
same title coalesce into one stream.  Our model makes the interplay with
the paper's caching visible -- coalesced requests share streams as zero-lag
relays, and the caches the shared stream seeds keep serving later slots.

This script sweeps the batching window over a skewed prime-time evening and
prints the waiting-time vs delivery-cost frontier.

Run:  python examples/batching_tradeoff.py
"""

from repro import (
    PeakHourArrivals,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.baselines import batching_study


def main() -> None:
    topology = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(150, seed=12)
    batch = WorkloadGenerator(
        topology,
        catalog,
        alpha=0.1,  # strongly skewed: lots of same-title demand to batch
        users_per_neighborhood=10,
        arrivals=PeakHourArrivals(),
    ).generate(seed=12)
    print(f"{len(batch)} prime-time reservations, heavily skewed catalog")
    print()

    study = batching_study(
        batch,
        topology,
        catalog,
        slots=(
            0.0,
            5 * units.MINUTE,
            15 * units.MINUTE,
            30 * units.MINUTE,
            units.HOUR,
            2 * units.HOUR,
        ),
    )
    print(study.as_table())
    costs = study.costs()
    print()
    print(
        f"a {units.fmt_duration(30 * units.MINUTE)} window changes the bill "
        f"by {100 * (costs[3] / costs[0] - 1):+.2f} % versus exact-time "
        "service.\n\n"
        "the headline finding is a NEGATIVE one: with the paper's cost-driven\n"
        "caching in place, batching barely moves the bill -- the offline\n"
        "scheduler already de-duplicates same-neighborhood demand through\n"
        "caches, so coalescing start times only adds free relays (visible in\n"
        "the 'shared streams' column) without removing paid transfers.  For\n"
        "this infrastructure, patience buys little that caching hasn't\n"
        "already bought; very wide windows can even cost MORE by squeezing\n"
        "residencies into contended peaks."
    )


if __name__ == "__main__":
    main()
