#!/usr/bin/env python3
"""Sizing the warehouse's hierarchical storage for a scheduled evening.

The paper models the warehouse as a free infinite archive, but a real 1997
video warehouse is a tape library with a disk staging area (its related
work, and the authors' companion papers, study exactly this).  Given the
evening's final delivery schedule, this example plans tape→disk stagings
offline (earliest-deadline drives + Belady eviction) and sweeps the
hardware configuration until every warehouse-sourced stream is ready on
time — a concrete answer to "what warehouse do we need to serve this
reservation book?".

Run:  python examples/warehouse_staging.py
"""

from repro import (
    StagingPlanner,
    VideoScheduler,
    WarehouseSpec,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.analysis import format_table


def main() -> None:
    topology = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(seed=21)
    batch = WorkloadGenerator(topology, catalog, alpha=0.271).generate(seed=21)
    result = VideoScheduler(topology, catalog).solve(batch)
    vw_streams = sum(1 for d in result.schedule.deliveries if d.source == "VW")
    print(
        f"schedule: {len(result.schedule.deliveries)} deliveries, "
        f"{vw_streams} sourced at the warehouse"
    )

    rows = []
    recommended = None
    for disk_gb, drives in [
        (50, 2),
        (100, 2),
        (100, 4),
        (200, 4),
        (200, 8),
        (400, 8),
    ]:
        spec = WarehouseSpec(
            disk_capacity=units.gb(disk_gb),
            tape_drives=drives,
            tape_bandwidth=60 * units.MB,
            tape_seek=90.0,
        )
        report = StagingPlanner(spec, catalog).plan(result.schedule)
        utils = report.drive_utilization(spec)
        rows.append(
            [
                f"{disk_gb} GB / {drives} drives",
                len(report.tasks),
                report.hits,
                len(report.misses),
                f"{100 * report.miss_rate:.1f} %",
                f"{units.fmt_bytes(report.peak_disk_usage)}",
                f"{100 * max(utils):.0f} %",
            ]
        )
        if recommended is None and not report.misses:
            recommended = (disk_gb, drives)
    print()
    print(
        format_table(
            [
                "configuration",
                "stagings",
                "disk hits",
                "misses",
                "miss rate",
                "peak disk",
                "busiest drive",
            ],
            rows,
            title="warehouse staging sweep",
        )
    )
    print()
    if recommended:
        print(
            f"recommended warehouse: {recommended[0]} GB staging disk with "
            f"{recommended[1]} tape drives (zero misses)."
        )
    else:
        print("no configuration in the sweep eliminated misses; go bigger.")


if __name__ == "__main__":
    main()
