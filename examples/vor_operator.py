#!/usr/bin/env python3
"""Running the whole service: reservations in, schedules + invoices out.

The flagship end-to-end scenario.  A provider operates the paper's
infrastructure through :class:`repro.VORService`: customers book titles a
few hours ahead; at midnight the operator closes the cycle, which

* schedules every due reservation with the two-phase algorithm,
* validates the plan in the discrete-event simulator,
* plans tape-to-disk staging inside the hierarchical warehouse,
* bills every customer their exact share of Ψ(S), and
* rolls still-draining caches into the next day.

Run:  python examples/vor_operator.py
"""

import numpy as np

from repro import (
    VORService,
    WarehouseSpec,
    paper_catalog,
    paper_topology,
    units,
)
from repro.analysis import format_table


def main() -> None:
    topology = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(150, seed=77)
    service = VORService(
        topology,
        catalog,
        lead_time=units.HOUR,
        warehouse=WarehouseSpec(
            disk_capacity=units.gb(300),
            tape_drives=6,
            tape_bandwidth=60 * units.MB,
        ),
    )

    rng = np.random.default_rng(77)
    storages = [s.name for s in topology.storages]
    zipf_ranks = (rng.pareto(1.2, size=400) * 3).astype(int).clip(0, len(catalog) - 1)

    # two days of bookings, evening-heavy showings
    bookings = 0
    for day in range(2):
        day_start = day * units.DAY
        for k in range(200):
            showing = day_start + float(
                rng.normal(20 * units.HOUR, 2.5 * units.HOUR)
            ) % units.DAY
            if showing < day_start + units.HOUR:
                continue
            try:
                service.reserve(
                    f"cust{day}{k:03d}",
                    catalog.by_rank(int(zipf_ranks[day * 200 + k])).video_id,
                    showing,
                    local_storage=str(rng.choice(storages)),
                    now=day_start,
                )
                bookings += 1
            except Exception:
                continue  # lead-time misses etc. -- the customer retries

        report = service.close_cycle(cycle_end=(day + 1) * units.DAY)
        print(f"== closing day {day} ==")
        print(report.summary())
        top = report.billing.top_payers(3)
        print(
            format_table(
                ["customer", "services", "network ($)", "storage ($)", "total ($)"],
                [
                    [i.user_id, i.services, i.network, i.storage, i.total]
                    for i in top
                ],
                title="top invoices",
                float_fmt="{:,.2f}",
            )
        )
        print()
    print(f"{bookings} reservations processed over two days")


if __name__ == "__main__":
    main()
