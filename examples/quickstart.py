#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 2 worked example, end to end.

Builds the two-storage topology, prices the paper's two hand-made schedules
(Ψ(S1) = $259.20, Ψ(S2) = $138.975), then lets the two-phase scheduler find
its own schedule -- which turns out cheaper than both.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    Request,
    RequestBatch,
    VideoCatalog,
    VideoFile,
    VideoScheduler,
    units,
    worked_example_topology,
)
from repro.experiments.worked_example import paper_schedule_s1, paper_schedule_s2


def main() -> None:
    # -- the environment: VW -- IS1 -- IS2, rates straight from Fig. 2 ------
    topology = worked_example_topology()
    movie = VideoFile(
        "movie",
        size=units.gb(2.5),
        playback=units.minutes(90),
        bandwidth=units.mbps(6),
    )
    catalog = VideoCatalog([movie])

    # -- three reservations: U1 at 1:00 pm (IS1), U2 2:30 pm, U3 4:00 pm ----
    one_pm = 13 * units.HOUR
    batch = RequestBatch(
        [
            Request(one_pm, "movie", "U1", "IS1"),
            Request(one_pm + 1.5 * units.HOUR, "movie", "U2", "IS2"),
            Request(one_pm + 3.0 * units.HOUR, "movie", "U3", "IS2"),
        ]
    )

    # -- price the paper's hand-made schedules under the Eq. 1-4 cost model -
    cost_model = CostModel(topology, catalog)
    psi_s1 = cost_model.total(paper_schedule_s1())
    psi_s2 = cost_model.total(paper_schedule_s2())
    print(f"paper S1 (all direct from warehouse): ${psi_s1:.3f}   (paper: $259.200)")
    print(f"paper S2 (cache at IS1):              ${psi_s2:.3f}   (paper: $138.975)")

    # -- now let the two-phase scheduler decide ------------------------------
    result = VideoScheduler(topology, catalog).solve(batch)
    print(f"two-phase scheduler:                  ${result.total_cost:.3f}")
    print()
    print("chosen deliveries:")
    for d in sorted(result.schedule.deliveries, key=lambda d: d.start_time):
        hops = " -> ".join(d.route) if d.hops else f"{d.route[0]} (local cache)"
        print(f"  {d.request.user_id} at t={d.start_time / units.HOUR:.1f} h via {hops}")
    print("cache residencies:")
    for c in result.schedule.residencies:
        print(
            f"  {c.video_id} at {c.location}: "
            f"[{c.t_start / units.HOUR:.1f} h, {c.t_last / units.HOUR:.1f} h], "
            f"serves {list(c.service_list)}"
        )
    print()
    print(
        "the scheduler beats the paper's S2 by also caching at IS2: U3 is\n"
        "served from its own neighborhood at zero network cost."
    )

    # -- audit the decisions --------------------------------------------------
    from repro.analysis import explain_file

    print()
    print(explain_file(result.schedule, "movie", cost_model).as_table())


if __name__ == "__main__":
    main()
