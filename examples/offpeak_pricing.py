#!/usr/bin/env python3
"""Scheduling under a diurnal network tariff.

The network-pricing literature the paper cites (Cocchi et al., Shenker et
al.) prices transfers by time of day.  A VOR provider knows the whole
evening in advance, so it can respond: when prime-time transfers cost 2-3x,
a single peak stream that seeds neighborhood caches turns every later
request into a free local service.

The script schedules the same prime-time reservation book under a flat
tariff and under an evening-peak tariff, and shows how the scheduler shifts
spend from network to storage as the peak gets more expensive.

Run:  python examples/offpeak_pricing.py
"""

from repro import (
    CostModel,
    PeakHourArrivals,
    VideoScheduler,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.analysis import format_table
from repro.extensions import DiurnalCostModel, TimeOfDayTariff


def main() -> None:
    # storage priced high enough that flat-rate scheduling sometimes prefers
    # re-streaming -- that's where a tariff can flip decisions
    topology = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(300),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(200, seed=5)
    batch = WorkloadGenerator(
        topology,
        catalog,
        alpha=0.271,
        users_per_neighborhood=10,
        arrivals=PeakHourArrivals(),  # reservations pile into the peak
    ).generate(seed=5)
    print(f"{len(batch)} reservations, mostly in the 18:00-23:00 peak")

    rows = []
    for label, peak_mult in [("flat", 1.0), ("peak x1.5", 1.5), ("peak x3", 3.0)]:
        if peak_mult == 1.0:
            cm = CostModel(topology, catalog)
        else:
            tariff = TimeOfDayTariff.evening_peak(peak_multiplier=peak_mult)
            cm = DiurnalCostModel(topology, catalog, tariff)
        result = VideoScheduler(topology, catalog, cost_model=cm).solve(batch)
        cached = sum(
            1 for d in result.schedule.deliveries if d.source != "VW"
        )
        rows.append(
            [
                label,
                result.total_cost,
                result.cost.network,
                result.cost.storage,
                len(result.schedule.residencies),
                cached,
            ]
        )
    print()
    print(
        format_table(
            [
                "tariff",
                "total ($)",
                "network ($)",
                "storage ($)",
                "residencies",
                "cache-served",
            ],
            rows,
            title="the same evening under three network tariffs",
        )
    )
    print()
    print(
        "as the peak multiplier grows, the scheduler opens more residencies\n"
        "and serves more requests from caches: storage spend substitutes for\n"
        "peak network spend."
    )


if __name__ == "__main__":
    main()
