#!/usr/bin/env python3
"""Capacity planning with the cost model: how much cache should we buy?

A provider deploying intermediate storages must pick a per-site capacity.
Bigger caches cut network traffic but storage has a price.  This example
sweeps capacity and storage pricing over a fixed workload and reports the
total-cost surface plus the marginal value of each capacity step -- exactly
the "carefully examine these relationships when prototyping practical
infrastructure" use the paper's conclusion recommends.

Run:  python examples/capacity_planning.py
"""

from repro import units
from repro.analysis import format_table
from repro.experiments import ExperimentRunner, paper_config


def main() -> None:
    cfg = paper_config(
        n_files=200,  # mid-size catalog keeps the sweep snappy
        users_per_neighborhood=10,
        alpha=0.271,
        nrate_per_gb=500,
    )
    runner = ExperimentRunner(cfg)
    capacities = (4, 5, 8, 11, 14, 20)
    srates = (3, 8, 25)

    rows = []
    best: tuple[float, float, float] | None = None  # (cost, cap, srate)
    for srate in srates:
        for cap in capacities:
            rec = runner.run(capacity_gb=cap, srate_per_gb_hour=srate)
            rows.append(
                [
                    f"{cap:g} GB",
                    f"{srate:g}",
                    rec.total_cost,
                    rec.storage_cost,
                    rec.resolution_iterations,
                ]
            )
            if best is None or rec.total_cost < best[0]:
                best = (rec.total_cost, cap, srate)
    print(
        format_table(
            [
                "capacity",
                "srate ($/GB/h)",
                "total cost ($)",
                "storage cost ($)",
                "overflow fixes",
            ],
            rows,
            title="capacity planning sweep (190 requests, alpha=0.271)",
        )
    )

    # marginal value of capacity at the cheapest storage price
    print()
    marginal = []
    prev = None
    for cap in capacities:
        rec = runner.run(capacity_gb=cap, srate_per_gb_hour=srates[0])
        if prev is not None:
            saved = prev[1] - rec.total_cost
            marginal.append(
                [
                    f"{prev[0]:g} -> {cap:g} GB",
                    saved,
                    saved / (cap - prev[0]),
                ]
            )
        prev = (cap, rec.total_cost)
    print(
        format_table(
            ["capacity step", "cost saved ($)", "$ saved per GB added"],
            marginal,
            title=f"marginal value of cache capacity (srate={srates[0]:g})",
        )
    )
    assert best is not None
    print()
    print(
        f"cheapest configuration: {best[1]:g} GB per storage at "
        f"srate={best[2]:g} $/GB/h -> ${best[0]:,.0f} total"
    )


if __name__ == "__main__":
    main()
