#!/usr/bin/env python3
"""Operating the VOR service for a week of daily cycles.

The paper schedules one reservation cycle in isolation; a deployed service
rolls cycle after cycle, and caches committed near midnight still hold space
(and can keep serving!) the next day.  This example runs seven daily cycles
with the rolling scheduler and reports, per day: cost, carryover, and how
often the next day's requests were served straight from a cache inherited
from the previous day.

Run:  python examples/rolling_week.py
"""

from repro import (
    PeakHourArrivals,
    RankChurn,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.analysis import format_table
from repro.extensions import RollingScheduler
from repro.workload.requests import Request, RequestBatch


def main() -> None:
    topology = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(200, seed=3)
    generator = WorkloadGenerator(
        topology,
        catalog,
        alpha=0.271,
        users_per_neighborhood=8,
        arrivals=PeakHourArrivals(),  # late-evening peak -> midnight tails
    )
    rolling = RollingScheduler(topology, catalog)
    # popularity drifts day to day: ~10 % of titles change chart position
    churn = RankChurn(len(catalog), churn=0.1, seed=3)

    rows = []
    total_net = 0.0
    for day in range(7):
        offset = day * units.DAY
        raw = generator.generate(
            seed=100 + day, rank_permutation=churn.permutation
        )
        churn.advance()
        batch = RequestBatch(
            Request(r.start_time + offset, r.video_id, f"d{day}/{r.user_id}", r.local_storage)
            for r in raw
        )
        res = rolling.schedule_cycle(batch, cycle_end=offset + units.DAY)
        total_net += res.net_total_cost
        rows.append(
            [
                f"day {day}",
                len(batch),
                res.net_total_cost,
                res.carried_in,
                res.carried_out,
                res.reused_carryover,
                res.resolution.iterations,
            ]
        )
    print(
        format_table(
            [
                "cycle",
                "requests",
                "net cost ($)",
                "carried in",
                "carried out",
                "caches reused",
                "overflow fixes",
            ],
            rows,
            title="one week of rolling VOR cycles",
        )
    )
    print()
    print(f"week total (net of carryover credits): ${total_net:,.0f}")
    print(
        "caches committed before midnight keep serving the next morning --\n"
        "'caches reused' counts next-day requests answered by extending an\n"
        "inherited residency instead of re-streaming from the warehouse."
    )


if __name__ == "__main__":
    main()
