#!/usr/bin/env python3
"""Reproduce the shape of the paper's Fig. 3: overflow before/after SORP.

Constructs a deliberately over-committed storage (several overlapping
residencies at one small IS), renders the integrated space requirement with
two distinct overflow windows -- the situation Fig. 3 illustrates -- then
runs storage-overflow resolution and renders the feasible result.

Run:  python examples/storage_timeline.py
"""

from repro import (
    CostModel,
    IndividualScheduler,
    Request,
    RequestBatch,
    Topology,
    VideoCatalog,
    VideoFile,
    detect_overflows,
    resolve_overflows,
    units,
)
from repro.analysis import ascii_timeline
from repro.core.overflow import storage_usage


def main() -> None:
    # one small storage; four movies contending for it in two waves
    topo = Topology()
    topo.add_warehouse("VW")
    topo.add_storage("IS1", srate=units.per_gb_hour(2), capacity=units.gb(4))
    topo.add_edge("VW", "IS1", nrate=units.per_gb(600))
    catalog = VideoCatalog(
        [
            VideoFile(f"movie{i}", size=units.gb(2.4), playback=units.minutes(95))
            for i in range(4)
        ]
    )
    hour = units.HOUR
    reqs = []
    # wave 1: movies 0 and 1 around 18:00-21:00
    for i, (t1, t2) in enumerate([(18.0, 20.5), (18.5, 21.0)]):
        reqs.append(Request(t1 * hour, f"movie{i}", f"u{i}a", "IS1"))
        reqs.append(Request(t2 * hour, f"movie{i}", f"u{i}b", "IS1"))
    # wave 2: movies 2 and 3 around 23:00-02:00
    for i, (t1, t2) in enumerate([(23.0, 25.0), (23.5, 25.5)], start=2):
        reqs.append(Request(t1 * hour, f"movie{i}", f"u{i}a", "IS1"))
        reqs.append(Request(t2 * hour, f"movie{i}", f"u{i}b", "IS1"))
    batch = RequestBatch(reqs)

    cm = CostModel(topo, catalog)
    phase1 = IndividualScheduler(cm).solve(batch)
    overflows = detect_overflows(phase1, catalog, topo)
    print(f"phase-1 schedule: {len(overflows)} storage overflow situation(s)")
    for of in overflows:
        print(
            f"  at {of.location}: [{of.interval[0] / hour:.2f} h, "
            f"{of.interval[1] / hour:.2f} h], peak "
            f"{units.fmt_bytes(of.peak_usage)} of "
            f"{units.fmt_bytes(of.capacity)}, {len(of.members)} file(s) involved"
        )
    print()
    print(
        ascii_timeline(
            storage_usage(phase1, catalog, "IS1"),
            capacity=topo.capacity("IS1"),
            title="integrated schedule BEFORE overflow resolution (Fig. 3)",
        )
    )

    resolved, stats = resolve_overflows(phase1, batch, cm)
    print()
    print(
        f"SORP: {stats.iterations} victim reschedule(s), cost "
        f"${stats.phase1_cost:,.2f} -> ${stats.resolved_cost:,.2f} "
        f"(+{100 * stats.cost_increase_ratio:.1f} %)"
    )
    for v in stats.victims:
        print(f"  victim: {v.video_id} evicted from {v.location}")
    print()
    print(
        ascii_timeline(
            storage_usage(resolved, catalog, "IS1"),
            capacity=topo.capacity("IS1"),
            title="AFTER overflow resolution (feasible)",
        )
    )
    assert detect_overflows(resolved, catalog, topo) == []


if __name__ == "__main__":
    main()
