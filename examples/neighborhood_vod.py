#!/usr/bin/env python3
"""A metro-area Video-On-Reservation service, scheduled for one evening.

The scenario from the paper's introduction: an entertainment provider serves
19 neighborhoods from one video warehouse over a priced metro network.
Customers reserve movies ahead of time (prime-time heavy); the provider
schedules the whole evening offline, using the intermediate storages to
avoid repeated long-haul deliveries.

The script runs the full two-phase scheduler, prints the cost breakdown
against the no-cache alternative, shows where the money goes, renders one
storage's occupancy timeline (the paper's Fig. 3), and validates the final
schedule with the discrete-event simulator.

Run:  python examples/neighborhood_vod.py
"""

from repro import (
    CostModel,
    PeakHourArrivals,
    VideoScheduler,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.analysis import ascii_timeline, format_table
from repro.baselines import network_only_cost
from repro.core.overflow import storage_usage
from repro.sim import SimulationEngine, validate_schedule


def main() -> None:
    # -- environment: Table 4 rates, prime-time reservations ----------------
    topology = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(seed=42)
    workload = WorkloadGenerator(
        topology,
        catalog,
        alpha=0.271,  # Dan & Sitaram's video-rental skew
        users_per_neighborhood=10,
        arrivals=PeakHourArrivals(),
    )
    batch = workload.generate(seed=42)
    print(f"{len(batch)} reservations across {len(topology.storages)} neighborhoods, "
          f"{len(batch.video_ids)} distinct titles requested")

    # -- schedule -------------------------------------------------------------
    result = VideoScheduler(topology, catalog).solve(batch)
    cm = CostModel(topology, catalog)
    baseline = network_only_cost(batch, cm)
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["network cost ($)", result.cost.network],
                ["storage cost ($)", result.cost.storage],
                ["total cost ($)", result.total_cost],
                ["no-cache baseline ($)", baseline],
                ["saving vs baseline", f"{100 * (1 - result.total_cost / baseline):.1f} %"],
                ["cache residencies", len(result.schedule.residencies)],
                ["storage overflows resolved", result.resolution.iterations],
                [
                    "overflow cost penalty",
                    f"{100 * result.overflow_cost_ratio:.2f} %",
                ],
            ],
            title="evening schedule",
        )
    )

    # -- where does the evening's traffic come from? --------------------------
    from_warehouse = sum(
        1 for d in result.schedule.deliveries if d.source == "VW"
    )
    from_cache = len(result.schedule.deliveries) - from_warehouse
    print()
    print(f"deliveries from the warehouse: {from_warehouse}")
    print(f"deliveries from neighborhood caches: {from_cache}")

    # -- Fig. 3: one storage's occupancy over the evening ---------------------
    busiest = max(
        topology.storages,
        key=lambda s: storage_usage(result.schedule, catalog, s.name).peak,
    )
    timeline = storage_usage(result.schedule, catalog, busiest.name)
    print()
    print(
        ascii_timeline(
            timeline,
            capacity=busiest.capacity,
            title=f"storage occupancy at {busiest.name} (paper Fig. 3 shape)",
        )
    )

    # -- where does the money go? ---------------------------------------------
    from repro.analysis import breakdown_report

    print()
    print(breakdown_report(result.schedule, cm, top=5))

    # -- execute the schedule in the simulator and check feasibility ----------
    violations = validate_schedule(result.schedule, batch, cm)
    report = SimulationEngine(cm).run(result.schedule)
    t0, t1 = report.makespan
    print()
    print(
        f"simulation: {report.n_streams} streams, {report.n_residencies} "
        f"residencies, active {t0 / units.HOUR:.1f} h .. {t1 / units.HOUR:.1f} h"
    )
    print(f"feasibility violations: {len(violations)}")
    assert not violations, violations


if __name__ == "__main__":
    main()
