#!/usr/bin/env python3
"""Provisioning link bandwidth with the future-work extension.

The base paper assumes uncapacitated links; its stated future work is
resolving bandwidth constraints.  Using the bandwidth-aware scheduler, this
example answers a provisioning question: *how much per-link bandwidth does
the evening's reservation book need before nothing is rejected?*  It sweeps
link capacity, reporting admissions, diversions onto alternate routes, and
the cost premium those diversions carry.

Run:  python examples/bandwidth_provisioning.py
"""

from repro import (
    PeakHourArrivals,
    Topology,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.analysis import format_table
from repro.extensions import BandwidthAwareScheduler


def capped_topology(base, link_mbps: float) -> Topology:
    """Copy of the paper topology with a finite per-link bandwidth."""
    topo = Topology()
    topo.add_warehouse(base.warehouse.name)
    for s in base.storages:
        topo.add_storage(s.name, srate=s.srate, capacity=s.capacity)
    for e in base.edges:
        topo.add_edge(e.a, e.b, nrate=e.nrate, bandwidth=units.mbps(link_mbps))
    return topo


def main() -> None:
    base = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(8),
    )
    catalog = paper_catalog(200, seed=9)
    batch = WorkloadGenerator(
        base,
        catalog,
        alpha=0.271,
        users_per_neighborhood=10,
        arrivals=PeakHourArrivals(),  # prime time stresses the links
    ).generate(seed=9)
    print(f"{len(batch)} prime-time reservations")

    rows = []
    first_clean: float | None = None
    for link_mbps in (25, 50, 100, 200, 400, 800):
        topo = capped_topology(base, link_mbps)
        result = BandwidthAwareScheduler(topo, catalog).solve(batch)
        rows.append(
            [
                f"{link_mbps:g} Mbps",
                result.admitted,
                len(result.rejected),
                result.diverted_streams,
                result.total_cost,
            ]
        )
        if first_clean is None and not result.rejected:
            first_clean = link_mbps
    print()
    print(
        format_table(
            ["link capacity", "admitted", "rejected", "diverted", "total cost ($)"],
            rows,
            title="bandwidth provisioning sweep",
        )
    )
    print()
    if first_clean is not None:
        print(
            f"every reservation is admitted from {first_clean:g} Mbps per link "
            "upward; below that, admission control rejects the overflow "
            "instead of violating link capacities."
        )
    else:
        print("even the largest sweep value rejected requests - provision more.")


if __name__ == "__main__":
    main()
