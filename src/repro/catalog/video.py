"""The :class:`VideoFile` description used throughout the library.

A video file ``i`` is characterised in the paper by its size ``size_i``
(bytes), playback length ``P_i`` (seconds) and playback bandwidth ``B_i``
(bytes/s).  The cost model uses two *different* volumes:

* **storage** reserves ``size_i`` bytes (Eqs. 2-3), and
* **network** charges for the amortized bandwidth volume ``P_i * B_i`` bytes
  (Sec. 2.2.2: "The amortized bandwidth requirement for d_i corresponds to
  P_idi * B_idi bytes").

For a stream delivered exactly at playback rate the two coincide, but the
paper's own worked example (Fig. 2) prices a "2.5 GB" file whose 6 Mbps x
90 min stream actually moves 4.05 GB; keeping both quantities lets us
reproduce the paper's numbers exactly.  When ``bandwidth`` is omitted it
defaults to ``size / playback`` so the volumes agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import CatalogError


@dataclass(frozen=True)
class VideoFile:
    """Immutable description of one continuous-media file.

    Attributes:
        video_id: Unique identifier within a catalog.
        size: File size in bytes (``size_i``); the storage-space requirement.
        playback: Playback length ``P_i`` in seconds.
        bandwidth: Streaming bandwidth ``B_i`` in bytes/s.  Defaults to
            ``size / playback`` (stream at playback rate).
    """

    video_id: str
    size: float
    playback: float
    bandwidth: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.video_id:
            raise CatalogError("video_id must be non-empty")
        if not (self.size > 0 and math.isfinite(self.size)):
            raise CatalogError(f"size must be positive and finite, got {self.size}")
        if not (self.playback > 0 and math.isfinite(self.playback)):
            raise CatalogError(
                f"playback must be positive and finite, got {self.playback}"
            )
        if self.bandwidth == 0.0:
            object.__setattr__(self, "bandwidth", self.size / self.playback)
        elif not (self.bandwidth > 0 and math.isfinite(self.bandwidth)):
            raise CatalogError(
                f"bandwidth must be positive and finite, got {self.bandwidth}"
            )

    @property
    def network_volume(self) -> float:
        """Amortized bandwidth volume ``P_i * B_i`` in bytes (Sec. 2.2.2)."""
        return self.playback * self.bandwidth

    def __repr__(self) -> str:
        from repro.units import fmt_bytes, fmt_duration

        return (
            f"VideoFile({self.video_id!r}, {fmt_bytes(self.size)}, "
            f"{fmt_duration(self.playback)})"
        )
