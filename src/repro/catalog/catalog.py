"""Video catalog container and deterministic generators."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.catalog.video import VideoFile
from repro.errors import CatalogError
from repro import units


class VideoCatalog:
    """Ordered, id-addressable collection of :class:`VideoFile` entries.

    Order matters: workload generators assign Zipf popularity by catalog
    rank (entry 0 is the most popular title).
    """

    def __init__(self, videos: Iterable[VideoFile] = ()):
        self._videos: list[VideoFile] = []
        self._by_id: dict[str, VideoFile] = {}
        for v in videos:
            self.add(v)

    def add(self, video: VideoFile) -> None:
        if video.video_id in self._by_id:
            raise CatalogError(f"duplicate video id {video.video_id!r}")
        self._videos.append(video)
        self._by_id[video.video_id] = video

    def __len__(self) -> int:
        return len(self._videos)

    def __iter__(self) -> Iterator[VideoFile]:
        return iter(self._videos)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._by_id

    def __getitem__(self, video_id: str) -> VideoFile:
        try:
            return self._by_id[video_id]
        except KeyError:
            raise CatalogError(f"unknown video id {video_id!r}") from None

    def by_rank(self, rank: int) -> VideoFile:
        """The ``rank``-th most popular title (0-based catalog order)."""
        if not (0 <= rank < len(self._videos)):
            raise CatalogError(f"rank {rank} out of range [0, {len(self._videos)})")
        return self._videos[rank]

    @property
    def ids(self) -> list[str]:
        return [v.video_id for v in self._videos]

    @property
    def total_size(self) -> float:
        return float(sum(v.size for v in self._videos))

    @property
    def mean_size(self) -> float:
        if not self._videos:
            raise CatalogError("catalog is empty")
        return self.total_size / len(self._videos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VideoCatalog({len(self)} videos, total {units.fmt_bytes(self.total_size)})"


def uniform_catalog(
    n_videos: int,
    *,
    size: float,
    playback: float,
    prefix: str = "video",
) -> VideoCatalog:
    """Catalog of ``n_videos`` identical files (handy for focused tests)."""
    if n_videos < 1:
        raise CatalogError(f"need at least one video, got {n_videos}")
    return VideoCatalog(
        VideoFile(f"{prefix}{i:04d}", size=size, playback=playback)
        for i in range(n_videos)
    )


def paper_catalog(
    n_videos: int = 500,
    *,
    mean_size: float = 3.3 * units.GB,
    size_spread: float = 0.25,
    mean_playback: float = 100.0 * units.MINUTE,
    playback_spread: float = 0.2,
    seed: int = 0,
) -> VideoCatalog:
    """The Table 4 catalog: 500 files averaging 3.3 GB.

    The paper only states the count and the average size; we draw sizes
    uniformly within ``mean_size * (1 +/- size_spread)`` and playback lengths
    within ``mean_playback * (1 +/- playback_spread)`` so files are
    heterogeneous but tightly controlled.  Bandwidth is ``size / playback``
    (streams at playback rate).  Deterministic for a given seed.
    """
    if n_videos < 1:
        raise CatalogError(f"need at least one video, got {n_videos}")
    if not (0.0 <= size_spread < 1.0 and 0.0 <= playback_spread < 1.0):
        raise CatalogError("spreads must be in [0, 1)")
    rng = np.random.default_rng(seed)
    sizes = mean_size * (1.0 + size_spread * (2.0 * rng.random(n_videos) - 1.0))
    plays = mean_playback * (
        1.0 + playback_spread * (2.0 * rng.random(n_videos) - 1.0)
    )
    return VideoCatalog(
        VideoFile(f"video{i:04d}", size=float(sizes[i]), playback=float(plays[i]))
        for i in range(n_videos)
    )
