"""Video catalog substrate.

The video warehouse archives "several thousand video files"; the experiments
use 500 files of ~3.3 GB average size (Table 4).  This subpackage provides
the immutable :class:`~repro.catalog.video.VideoFile` description and the
:class:`~repro.catalog.catalog.VideoCatalog` container with deterministic
catalog generators.
"""

from repro.catalog.video import VideoFile
from repro.catalog.catalog import (
    VideoCatalog,
    paper_catalog,
    uniform_catalog,
)

__all__ = [
    "VideoFile",
    "VideoCatalog",
    "paper_catalog",
    "uniform_catalog",
]
