"""The paper's primary contribution: cost model + two-phase video scheduler.

Layout:

* :mod:`repro.core.schedule`   -- schedule data model (``d_i``, ``c_i``, S)
* :mod:`repro.core.spacefunc`  -- space-time profiles ``f_c(t)`` (Eqs. 5-7)
* :mod:`repro.core.costmodel`  -- the mapping Ψ (Eqs. 1-4)
* :mod:`repro.core.individual` -- Phase 1: capacity-ignorant per-file greedy
* :mod:`repro.core.parallel`   -- Phase-1 fan-out engine (serial/thread/process)
* :mod:`repro.core.overflow`   -- storage-overflow detection (Sec. 4.1)
* :mod:`repro.core.heat`       -- victim-selection heat metrics (Eqs. 8-11)
* :mod:`repro.core.rejective`  -- capacity-aware rescheduling (Sec. 4.4)
* :mod:`repro.core.sorp`       -- Phase 2: overflow-resolution loop (Table 3)
* :mod:`repro.core.scheduler`  -- the two-phase :class:`VideoScheduler` facade
"""

from repro.core.schedule import (
    DeliveryInfo,
    FileSchedule,
    ResidencyInfo,
    Schedule,
)
from repro.core.spacefunc import (
    UsageTimeline,
    charged_space_time,
    delta_space,
    gamma_coefficient,
    residency_profile,
)
from repro.core.costmodel import (
    CacheStats,
    CacheStatsDetail,
    CostBreakdown,
    CostModel,
    record_cache_metrics,
)
from repro.core.heat import HeatMetric, compute_heat
from repro.core.overflow import OverflowSituation, detect_overflows
from repro.core.individual import IndividualScheduler
from repro.core.parallel import (
    ParallelConfig,
    ParallelIndividualScheduler,
    Phase1Result,
)
from repro.core.rejective import RejectiveGreedyScheduler, ResidencyConstraints
from repro.core.sorp import ResolutionStats, resolve_overflows
from repro.core.scheduler import (
    ScheduleResult,
    VideoScheduler,
    record_schedule_metrics,
)

__all__ = [
    "DeliveryInfo",
    "FileSchedule",
    "ResidencyInfo",
    "Schedule",
    "UsageTimeline",
    "charged_space_time",
    "delta_space",
    "gamma_coefficient",
    "residency_profile",
    "CacheStats",
    "CacheStatsDetail",
    "CostBreakdown",
    "CostModel",
    "record_cache_metrics",
    "record_schedule_metrics",
    "ParallelConfig",
    "ParallelIndividualScheduler",
    "Phase1Result",
    "HeatMetric",
    "compute_heat",
    "OverflowSituation",
    "detect_overflows",
    "IndividualScheduler",
    "RejectiveGreedyScheduler",
    "ResidencyConstraints",
    "ResolutionStats",
    "resolve_overflows",
    "ScheduleResult",
    "VideoScheduler",
]
