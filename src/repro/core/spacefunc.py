"""Space-time profiles of cache residencies (paper Eqs. 5-7).

A residency ``c`` of video ``i`` at an intermediate storage occupies a
reserved space that the paper models (Eq. 6) as

    f_c(t) = gamma * size_i                         for t_s <= t < t_f
           = gamma * size_i * (1 - (t - t_f)/P_i)   for t_f <= t <= t_f + P_i
           = 0                                      elsewhere

where ``[t_s, t_f]`` is the caching interval (``t_f`` = start of the *last*
service from the cache), ``P_i`` the playback length, and ``gamma`` (Eq. 7)
adjusts the peak space to match the long/short residency cost models of
Eqs. 2-3:

    gamma = 1                   if t_f - t_s >= P_i   (long residency)
          = (t_f - t_s) / P_i   otherwise             (short residency)

The short-residency form follows from the fluid block model: consumption by
the last service chases the filling stream with lag ``t_f - t_s``, so at most
that fraction of the file is ever held.  Integrating ``f_c`` gives exactly the
Eq. 2/3 amortized space-time ``gamma * size * ((t_f - t_s) + P/2)``, which is
what :mod:`repro.core.costmodel` charges -- the cost model, overflow detector
and heat metrics all share this single space model.

:class:`UsageTimeline` aggregates many residency profiles at one storage via
an event sweep, yielding a piecewise-linear total-usage function that supports
point queries, maxima, integrals and threshold-crossing intervals (used for
overflow detection and the Eq. 5 improvement integral).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError

#: Absolute slack (bytes / seconds scale-free) for floating-point comparisons.
EPS = 1e-9


def gamma_coefficient(t_start: float, t_last: float, playback: float) -> float:
    """The Eq. 7 peak-space coefficient ``gamma`` for a residency."""
    if playback <= 0:
        raise ScheduleError(f"playback must be positive, got {playback}")
    span = t_last - t_start
    if span < 0:
        raise ScheduleError(f"residency interval reversed: [{t_start}, {t_last}]")
    if span >= playback:
        return 1.0
    return span / playback


def charged_space_time(size: float, playback: float, span: float) -> float:
    """The Eq. 2/3 amortized space-time of a residency, in byte-seconds.

    ``gamma * size * (span + P/2)`` -- the integral of the Eq. 6 profile,
    which multiplied by ``srate`` gives Ψ_C.  The value is invariant under
    time translation: it depends on the residency only through
    ``span = t_f - t_s`` (plus the video's ``size`` and ``P``), which is what
    makes Ψ_C evaluations memoizable on ``(srate, size, span, P)`` tuples
    (see :class:`repro.core.costmodel.CostModel`).
    """
    g = gamma_coefficient(0.0, span, playback)
    return g * size * (span + 0.5 * playback)


@dataclass(frozen=True)
class LinearSegment:
    """One linear piece ``y(t) = y0 + slope * (t - start)`` on [start, end)."""

    start: float
    end: float
    y0: float
    y1: float

    @property
    def slope(self) -> float:
        if self.end == self.start:
            return 0.0
        return (self.y1 - self.y0) / (self.end - self.start)

    def value(self, t: float) -> float:
        if not (self.start <= t <= self.end):
            return 0.0
        return self.y0 + self.slope * (t - self.start)

    def integral(self, a: float, b: float) -> float:
        """Integral of the segment over ``[a, b]`` (clipped to the segment)."""
        lo = max(a, self.start)
        hi = min(b, self.end)
        if hi <= lo:
            return 0.0
        return 0.5 * (self.value(lo) + self.value(hi)) * (hi - lo)


@dataclass(frozen=True)
class SpaceProfile:
    """A residency's reserved-space function ``f_c(t)`` (Eq. 6).

    Composed of contiguous linear segments; zero outside their union.
    """

    segments: tuple[LinearSegment, ...]

    @property
    def support(self) -> tuple[float, float]:
        if not self.segments:
            return (0.0, 0.0)
        return (self.segments[0].start, self.segments[-1].end)

    @property
    def peak(self) -> float:
        if not self.segments:
            return 0.0
        return max(max(s.y0, s.y1) for s in self.segments)

    def value(self, t: float) -> float:
        for s in self.segments:
            if s.start <= t <= s.end:
                return s.value(t)
        return 0.0

    def integral(self, a: float | None = None, b: float | None = None) -> float:
        """Integral of ``f_c`` over ``[a, b]`` (defaults to full support)."""
        lo, hi = self.support
        if a is None:
            a = lo
        if b is None:
            b = hi
        if b <= a:
            return 0.0
        return math.fsum(s.integral(a, b) for s in self.segments)

    def positive_in(self, a: float, b: float) -> bool:
        """True if ``f_c`` is strictly positive somewhere inside ``(a, b)``."""
        if b <= a:
            return False
        for s in self.segments:
            lo, hi = max(a, s.start), min(b, s.end)
            if hi <= lo:
                continue
            mid = 0.5 * (lo + hi)
            if s.value(lo) > EPS or s.value(hi) > EPS or s.value(mid) > EPS:
                return True
        return False


def residency_profile(
    size: float,
    playback: float,
    t_start: float,
    t_last: float,
) -> SpaceProfile:
    """Build the Eq. 6 profile for a residency of a ``size``-byte video.

    Args:
        size: Video size in bytes.
        playback: Playback length ``P_i`` in seconds.
        t_start: ``t_s`` -- when caching begins.
        t_last: ``t_f`` -- start time of the last service from the cache.
    """
    if size <= 0:
        raise ScheduleError(f"size must be positive, got {size}")
    g = gamma_coefficient(t_start, t_last, playback)
    peak = g * size
    if peak <= 0.0:
        return SpaceProfile(())
    segments = []
    if t_last > t_start:
        segments.append(LinearSegment(t_start, t_last, peak, peak))
    segments.append(LinearSegment(t_last, t_last + playback, peak, 0.0))
    return SpaceProfile(tuple(segments))


def delta_space(
    profile: SpaceProfile,
    overflow_start: float,
    overflow_end: float,
) -> float:
    """The Eq. 5 amortized time-space improvement ``ΔS``.

    The integral of the residency's space function over the part of the
    overflow interval it actually covers: removing the residency frees exactly
    this much space-time inside ``[overflow_start, overflow_end]``.
    """
    if overflow_end < overflow_start:
        raise ScheduleError(
            f"overflow interval reversed: [{overflow_start}, {overflow_end}]"
        )
    return profile.integral(overflow_start, overflow_end)


class UsageTimeline:
    """Piecewise-linear sum of residency profiles at one storage.

    Built once from an iterable of profiles via an event sweep:  every
    segment contributes ``(intercept, slope)`` on ``[start, end)``; the sweep
    accumulates these on the sorted union of endpoints, producing grid times
    ``ts`` and usage values ``ys`` with linear interpolation between
    consecutive grid points (usage may jump *at* grid points -- reservations
    begin abruptly -- so ``ys`` holds right-limits and a separate array holds
    the value reached just before the next grid point).
    """

    def __init__(self, profiles: Iterable[SpaceProfile] = ()):
        events: list[tuple[float, float, float]] = []  # (t, d_intercept, d_slope)
        for p in profiles:
            for s in p.segments:
                if s.end <= s.start:
                    continue
                slope = s.slope
                intercept = s.y0 - slope * s.start
                events.append((s.start, intercept, slope))
                events.append((s.end, -intercept, -slope))
        if not events:
            self._ts = np.empty(0)
            self._y_right = np.empty(0)
            self._y_next = np.empty(0)
            return
        events.sort(key=lambda e: e[0])
        ts: list[float] = []
        y_right: list[float] = []
        a = 0.0  # running intercept
        b = 0.0  # running slope
        i = 0
        n = len(events)
        while i < n:
            t = events[i][0]
            while i < n and events[i][0] == t:
                a += events[i][1]
                b += events[i][2]
                i += 1
            ts.append(t)
            y_right.append(a + b * t)
        self._ts = np.asarray(ts)
        self._y_right = np.asarray(y_right)
        # Value approached just before each next grid point (linear from the
        # right-limit with the active slope).  Recomputed by evaluating the
        # running (a, b) at segment ends during a second sweep.
        y_next = np.empty_like(self._y_right)
        a = b = 0.0
        i = 0
        k = 0
        while i < n:
            t = events[i][0]
            while i < n and events[i][0] == t:
                a += events[i][1]
                b += events[i][2]
                i += 1
            t_next = events[i][0] if i < n else t
            y_next[k] = a + b * t_next
            k += 1
        self._y_next = y_next

    @property
    def is_empty(self) -> bool:
        return self._ts.size == 0

    @property
    def grid(self) -> np.ndarray:
        out = self._ts.view()
        out.flags.writeable = False
        return out

    def value(self, t: float) -> float:
        """Total usage at time ``t`` (right-continuous)."""
        if self.is_empty:
            return 0.0
        idx = bisect_right(self._ts, t) - 1
        if idx < 0 or idx >= self._ts.size - 1 and t > self._ts[-1]:
            return 0.0
        if idx == self._ts.size - 1:
            return float(self._y_right[idx]) if t == self._ts[idx] else 0.0
        t0, t1 = self._ts[idx], self._ts[idx + 1]
        if t1 == t0:
            return float(self._y_right[idx])
        frac = (t - t0) / (t1 - t0)
        return float(self._y_right[idx] + frac * (self._y_next[idx] - self._y_right[idx]))

    def value_left(self, t: float) -> float:
        """Left-limit of the usage function at ``t``.

        Usage jumps up where reservations begin and down where drains end;
        capacity checks need both one-sided values at breakpoints.
        """
        if self.is_empty:
            return 0.0
        idx = bisect_left(self._ts, t) - 1  # last grid point strictly < t
        if idx < 0 or idx >= self._ts.size - 1:
            return 0.0
        t0, t1 = float(self._ts[idx]), float(self._ts[idx + 1])
        if t > t1:
            return 0.0
        if t1 == t0:
            return float(self._y_next[idx])
        frac = (t - t0) / (t1 - t0)
        return float(self._y_right[idx] + frac * (self._y_next[idx] - self._y_right[idx]))

    def values(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized right-continuous :meth:`value` over an array of times."""
        ts = np.asarray(ts, dtype=np.float64)
        out = np.zeros_like(ts)
        if self.is_empty:
            return out
        idx = np.searchsorted(self._ts, ts, side="right") - 1
        valid = (idx >= 0) & (idx < self._ts.size - 1)
        if valid.any():
            i = idx[valid]
            t0 = self._ts[i]
            t1 = self._ts[i + 1]
            span = t1 - t0
            frac = np.where(span > 0, (ts[valid] - t0) / np.where(span > 0, span, 1.0), 0.0)
            out[valid] = self._y_right[i] + frac * (self._y_next[i] - self._y_right[i])
        at_last = (idx == self._ts.size - 1) & (ts == self._ts[-1])
        out[at_last] = self._y_right[-1]
        return out

    def values_left(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_left` over an array of times."""
        ts = np.asarray(ts, dtype=np.float64)
        out = np.zeros_like(ts)
        if self.is_empty:
            return out
        idx = np.searchsorted(self._ts, ts, side="left") - 1
        valid = (idx >= 0) & (idx < self._ts.size - 1)
        if valid.any():
            i = idx[valid]
            t0 = self._ts[i]
            t1 = self._ts[i + 1]
            inside = ts[valid] <= t1
            span = t1 - t0
            frac = np.where(span > 0, (ts[valid] - t0) / np.where(span > 0, span, 1.0), 1.0)
            vals = self._y_right[i] + frac * (self._y_next[i] - self._y_right[i])
            sub = np.zeros_like(vals)
            sub[inside] = vals[inside]
            out[valid] = sub
        return out

    def max_over(self, a: float, b: float) -> float:
        """Maximum usage over ``[a, b]`` (0 outside the support)."""
        if self.is_empty or b < a:
            return 0.0
        best = max(self.value(a), self.value(b))
        n = self._ts.size
        i0 = bisect_left(self._ts, a)  # first grid index >= a
        i1 = bisect_right(self._ts, b) - 1  # last grid index <= b
        for i in range(max(i0, 0), min(i1 + 1, n)):
            best = max(best, float(self._y_right[i]))
        # Usage can jump *down* at a grid point where reservations end, so
        # also consider each cell's left-limit (y_next[i], approached just
        # before ts[i+1]) whenever that endpoint lies inside (a, b].
        for i in range(max(i0 - 1, 0), min(i1 + 1, n - 1)):
            if a < self._ts[i + 1] <= b:
                best = max(best, float(self._y_next[i]))
        return best

    @property
    def peak(self) -> float:
        if self.is_empty:
            return 0.0
        return float(max(self._y_right.max(), self._y_next.max()))

    def intervals_above(self, threshold: float, *, eps: float = EPS) -> list[tuple[float, float]]:
        """Maximal intervals where usage exceeds ``threshold`` (strictly).

        Within each grid cell usage is linear, so the crossing point (if any)
        is found analytically.  Adjacent or touching intervals are merged.
        """
        if self.is_empty:
            return []
        raw: list[tuple[float, float]] = []
        thr = threshold + eps
        n = self._ts.size
        for i in range(n - 1):
            t0, t1 = float(self._ts[i]), float(self._ts[i + 1])
            y0, y1 = float(self._y_right[i]), float(self._y_next[i])
            if y0 <= thr and y1 <= thr:
                continue
            if y0 > thr and y1 > thr:
                raw.append((t0, t1))
                continue
            # one crossing inside the cell
            tc = t0 + (thr - y0) / (y1 - y0) * (t1 - t0)
            if y0 > thr:
                raw.append((t0, tc))
            else:
                raw.append((tc, t1))
        # last grid point: an instantaneous spike cannot exceed on an interval
        if not raw:
            return []
        raw.sort()
        merged = [raw[0]]
        for s, e in raw[1:]:
            ls, le = merged[-1]
            if s <= le + eps:
                merged[-1] = (ls, max(le, e))
            else:
                merged.append((s, e))
        return merged

    def integral_above(self, threshold: float) -> float:
        """Space-time integral of ``max(usage - threshold, 0)``.

        The total "excess" that overflow resolution must remove; SORP uses it
        as its monotone progress measure.
        """
        if self.is_empty:
            return 0.0
        total = 0.0
        n = self._ts.size
        for i in range(n - 1):
            t0, t1 = float(self._ts[i]), float(self._ts[i + 1])
            if t1 <= t0:
                continue
            y0 = float(self._y_right[i]) - threshold
            y1 = float(self._y_next[i]) - threshold
            if y0 <= 0 and y1 <= 0:
                continue
            if y0 >= 0 and y1 >= 0:
                total += 0.5 * (y0 + y1) * (t1 - t0)
                continue
            tc = t0 + (0.0 - y0) / (y1 - y0) * (t1 - t0)
            if y0 > 0:
                total += 0.5 * y0 * (tc - t0)
            else:
                total += 0.5 * y1 * (t1 - tc)
        return total
