"""The two-phase video scheduler facade (paper Sec. 3.1).

:class:`VideoScheduler` wires the pieces together:

1. **Individual Video Scheduling** -- per-file greedy schedules assuming
   unbounded intermediate storage (:mod:`repro.core.individual`);
2. **Integration + Storage Overflow Resolution** -- merge, detect
   over-commitments, and reschedule victims until feasible
   (:mod:`repro.core.sorp`).

The returned :class:`ScheduleResult` carries the feasible schedule, its cost
breakdown, and the Phase-1/Phase-2 statistics the paper reports (overflow
counts, victims, relative cost increase).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CacheStats, CostBreakdown, CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig, ParallelIndividualScheduler
from repro.core.schedule import Schedule
from repro.core.sorp import ResolutionStats, resolve_overflows
from repro.topology.graph import Topology
from repro.topology.validation import validate_topology
from repro.workload.requests import RequestBatch


@dataclass
class ScheduleResult:
    """Outcome of a full two-phase scheduling run."""

    schedule: Schedule
    cost: CostBreakdown
    phase1_cost: CostBreakdown
    resolution: ResolutionStats
    #: Cost-evaluation cache activity over the whole solve (Phase 1 workers
    #: included).  Excluded from equality: two runs that produce identical
    #: schedules may reach them with different hit/miss mixes.
    cache_stats: CacheStats = field(default_factory=CacheStats, compare=False)

    @property
    def total_cost(self) -> float:
        """Ψ of the final feasible schedule."""
        return self.cost.total

    @property
    def overflow_cost_ratio(self) -> float:
        """Relative cost added by overflow resolution (Sec. 5.5)."""
        return self.resolution.cost_increase_ratio

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of Ψ evaluations served from the memoization cache."""
        return self.cache_stats.hit_rate


class VideoScheduler:
    """End-to-end scheduler for one cycle of VOR requests.

    Args:
        topology: The delivery infrastructure (validated on construction).
        catalog: All schedulable videos.
        heat_metric: Victim-selection criterion for Phase 2; defaults to the
            paper's best performer, method 4 (``ΔS / overhead``, Eq. 11).
        cost_model: Optional custom Ψ (e.g. a time-of-day tariff from
            :mod:`repro.extensions.pricing`); must be built over the same
            topology and catalog.  Defaults to the flat-rate paper model.
        parallel: Phase-1 execution plan (:class:`ParallelConfig`); ``None``
            runs the serial loop.  Every backend produces bit-identical
            schedules -- see :mod:`repro.core.parallel`.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        cost_model: CostModel | None = None,
        parallel: ParallelConfig | None = None,
    ):
        validate_topology(topology)
        self.topology = topology
        self.catalog = catalog
        self.heat_metric = heat_metric
        self.cost_model = (
            cost_model if cost_model is not None else CostModel(topology, catalog)
        )
        self.parallel = parallel if parallel is not None else ParallelConfig()
        self._engine = ParallelIndividualScheduler(self.cost_model, self.parallel)

    def solve_individual(self, batch: RequestBatch) -> Schedule:
        """Phase 1 only: capacity-ignorant per-file schedules (Table 2)."""
        return self._engine.run(batch, self.catalog).schedule

    def solve(self, batch: RequestBatch) -> ScheduleResult:
        """Full two-phase solve: greedy + overflow resolution."""
        base_stats = self.cost_model.cache_stats
        phase1_result = self._engine.run(batch, self.catalog)
        phase1 = phase1_result.schedule
        phase1_cost = self.cost_model.schedule_cost(phase1)
        feasible, stats = resolve_overflows(
            phase1, batch, self.cost_model, metric=self.heat_metric
        )
        final = feasible.pruned()
        return ScheduleResult(
            schedule=final,
            cost=self.cost_model.schedule_cost(final),
            phase1_cost=phase1_cost,
            resolution=stats,
            cache_stats=(self.cost_model.cache_stats - base_stats)
            + phase1_result.cache_stats,
        )
