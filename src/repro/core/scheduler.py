"""The two-phase video scheduler facade (paper Sec. 3.1).

:class:`VideoScheduler` wires the pieces together:

1. **Individual Video Scheduling** -- per-file greedy schedules assuming
   unbounded intermediate storage (:mod:`repro.core.individual`);
2. **Integration + Storage Overflow Resolution** -- merge, detect
   over-commitments, and reschedule victims until feasible
   (:mod:`repro.core.sorp`).

The returned :class:`ScheduleResult` carries the feasible schedule, its cost
breakdown, and the Phase-1/Phase-2 statistics the paper reports (overflow
counts, victims, relative cost increase).  With a live observability handle
(``obs=``), a solve additionally records ``solve``/``ivsp``/``sorp``/
``overflow`` spans, Ψ-evaluation counters, and per-IS peak-storage gauges
-- all without changing a single bit of the schedule.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import (
    CacheStats,
    CacheStatsDetail,
    CostBreakdown,
    CostModel,
    record_cache_metrics,
)
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig, ParallelIndividualScheduler
from repro.core.schedule import Schedule
from repro.core.sorp import ResolutionStats, resolve_overflows
from repro.core.spacefunc import UsageTimeline
from repro.errors import ScheduleError
from repro.obs import NULL_OBS, Observability
from repro.topology.graph import Topology
from repro.topology.validation import validate_topology
from repro.workload.requests import RequestBatch

_log = logging.getLogger(__name__)


@dataclass
class ScheduleResult:
    """Outcome of a full two-phase scheduling run."""

    schedule: Schedule
    cost: CostBreakdown
    phase1_cost: CostBreakdown
    resolution: ResolutionStats
    #: Cost-evaluation cache activity over the whole solve (Phase 1 workers
    #: included).  Excluded from equality: two runs that produce identical
    #: schedules may reach them with different hit/miss mixes.
    cache_stats: CacheStats = field(default_factory=CacheStats, compare=False)
    #: Per-cache (Ψ_C vs Ψ_D) breakdown of :attr:`cache_stats`.
    cache_detail: CacheStatsDetail = field(
        default_factory=CacheStatsDetail, compare=False
    )

    @property
    def total_cost(self) -> float:
        """Ψ of the final feasible schedule."""
        return self.cost.total

    @property
    def overflow_cost_ratio(self) -> float:
        """Relative cost added by overflow resolution (Sec. 5.5)."""
        return self.resolution.cost_increase_ratio

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of Ψ evaluations served from the memoization cache."""
        return self.cache_stats.hit_rate


def record_schedule_metrics(
    obs: Observability,
    schedule: Schedule,
    cost_model: CostModel,
    *,
    scope: str = "final",
) -> None:
    """Record schedule-derived gauges: per-IS peak storage and Ψ split.

    Every intermediate storage gets a ``vor_storage_peak_reserved_bytes``
    gauge (Eq. 6 reserved model, zero when unused), so capacity pressure
    is visible per site.  All values are pure functions of the schedule
    and therefore identical across Phase-1 backends.
    """
    metrics = obs.metrics
    if not metrics.enabled:
        return
    catalog = cost_model.catalog
    by_loc: dict[str, list] = {}
    for fs in schedule:
        video = catalog[fs.video_id]
        for c in fs.residencies:
            by_loc.setdefault(c.location, []).append(c.profile(video))
    for spec in cost_model.topology.storages:
        metrics.gauge(
            "vor_storage_peak_reserved_bytes",
            mode="max",
            help="Peak reserved (Eq. 6) occupancy per intermediate storage",
            location=spec.name,
        ).set(UsageTimeline(by_loc.get(spec.name, [])).peak)
    cost = cost_model.schedule_cost(schedule)
    for component, value in (("storage", cost.storage), ("network", cost.network)):
        metrics.gauge(
            "vor_schedule_cost_dollars",
            mode="last",
            help="Ψ of the schedule by resource component",
            component=component,
            scope=scope,
        ).set(value)


class VideoScheduler:
    """End-to-end scheduler for one cycle of VOR requests.

    Args:
        topology: The delivery infrastructure (validated on construction).
        catalog: All schedulable videos.
        heat_metric: Victim-selection criterion for Phase 2; defaults to the
            paper's best performer, method 4 (``ΔS / overhead``, Eq. 11).
        cost_model: Optional custom Ψ (e.g. a time-of-day tariff from
            :mod:`repro.extensions.pricing`); must be built over the same
            topology and catalog.  Defaults to the flat-rate paper model.
        parallel: Phase-1 execution plan (:class:`ParallelConfig`); ``None``
            runs the serial loop.  Every backend produces bit-identical
            schedules -- see :mod:`repro.core.parallel`.
        obs: Observability handle (:class:`repro.obs.Observability`);
            defaults to the inert :data:`repro.obs.NULL_OBS`.
        replicas: Optional :class:`~repro.replication.ReplicaMap` homing
            each video at a subset of the warehouses; the Phase-1 greedy
            then serves each request from the cheapest reachable copy among
            the video's homes and open caches.  Mutually exclusive with a
            ``cost_model`` that already carries a different map.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        cost_model: CostModel | None = None,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
        replicas=None,
    ):
        if (
            cost_model is not None
            and replicas is not None
            and cost_model.replicas is not replicas
        ):
            raise ScheduleError(
                "pass replicas either directly or on the cost model, not both"
            )
        effective_replicas = (
            replicas
            if replicas is not None
            else (cost_model.replicas if cost_model is not None else None)
        )
        validate_topology(topology, replicas=effective_replicas)
        self.topology = topology
        self.catalog = catalog
        self.heat_metric = heat_metric
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(topology, catalog, replicas=replicas)
        )
        self.parallel = parallel if parallel is not None else ParallelConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self._engine = ParallelIndividualScheduler(
            self.cost_model, self.parallel, obs=self.obs
        )

    def solve_individual(self, batch: RequestBatch) -> Schedule:
        """Phase 1 only: capacity-ignorant per-file schedules (Table 2)."""
        return self._engine.run(batch, self.catalog).schedule

    def solve(self, batch: RequestBatch) -> ScheduleResult:
        """Full two-phase solve: greedy + overflow resolution."""
        with self.obs.tracer.span("solve", requests=len(batch)) as span:
            phase1_result = self._engine.run(batch, self.catalog)
            # Everything after Phase 1 runs on the caller's model, so the
            # post-phase-1 counter delta plus the engine's exact per-shard
            # accounting covers the whole solve on every backend.
            base_detail = self.cost_model.cache_stats_detail
            phase1 = phase1_result.schedule
            phase1_cost = self.cost_model.schedule_cost(phase1)
            record_cache_metrics(
                self.obs.metrics,
                self.cost_model.cache_stats_detail - base_detail,
                phase="integrate",
            )
            feasible, stats = resolve_overflows(
                phase1,
                batch,
                self.cost_model,
                metric=self.heat_metric,
                obs=self.obs,
            )
            final = feasible.pruned()
            pre_costing = self.cost_model.cache_stats_detail
            final_cost = self.cost_model.schedule_cost(final)
            record_cache_metrics(
                self.obs.metrics,
                self.cost_model.cache_stats_detail - pre_costing,
                phase="costing",
            )
            span.set(
                deliveries=len(final.deliveries),
                residencies=len(final.residencies),
                overflow_fixes=stats.iterations,
            )
        detail = (
            phase1_result.detail
            + (self.cost_model.cache_stats_detail - base_detail)
        )
        record_schedule_metrics(self.obs, final, self.cost_model, scope="final")
        if self.obs.metrics.enabled:
            self.obs.metrics.gauge(
                "vor_schedule_cost_dollars",
                mode="last",
                help="Ψ of the schedule by resource component",
                component="total",
                scope="phase1",
            ).set(phase1_cost.total)
        _log.info(
            "solved %d requests: $%.2f (%d deliveries, %d residencies, "
            "%d overflow fixes)",
            len(batch),
            final_cost.total,
            len(final.deliveries),
            len(final.residencies),
            stats.iterations,
        )
        return ScheduleResult(
            schedule=final,
            cost=final_cost,
            phase1_cost=phase1_cost,
            resolution=stats,
            cache_stats=detail.combined,
            cache_detail=detail,
        )
