"""Phase 1: Individual Video Scheduling (paper Sec. 3.2, Table 2).

``IVSP_solve`` partitions the cycle's requests by video and computes each
file's schedule independently with a greedy ``find_video_schedule`` modeled
on Papadimitriou et al.'s rectilinear heuristic:

Requests for a file are served in chronological order.  At every step the
scheduler prices each available *copy* of the file -- the warehouse(s), which
hold everything permanently for free, and every cache residency opened so far
-- and serves the request from the cheapest one:

* serving from a warehouse costs ``P*B * rate(VW, local_IS)`` (Eq. 4);
* serving from a cache costs the transfer from the cache plus the *extension*
  of the residency's interval to the new service's start time
  (``Ψ_C(t_s, t_u) - Ψ_C(t_s, t_f_old)``), realizing the paper's "the resident
  period of the file has to be extended" option.

Each delivery stream then deposits **zero-cost cache candidates** at every
intermediate storage it traverses (``t_s = t_f =`` stream start, hence
``gamma = 0`` and ``Ψ_C = 0``): files are loaded "by copying data blocks from
streams during transmission", so a passing stream is exactly the opportunity
to introduce a new caching site -- the paper's other option.  A candidate
costs nothing until a later request extends it; unused candidates are pruned
from the final schedule.

The same greedy, parameterized with residency constraints, becomes the
capacity-aware *rejective greedy* of Sec. 4.4 (see
:mod:`repro.core.rejective`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.catalog.video import VideoFile
from repro.core.costmodel import CostModel
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.errors import RoutingError, ScheduleError
from repro.obs import COUNT_BUCKETS, NULL_OBS, Observability
from repro.topology.routing import Route
from repro.workload.requests import Request, RequestBatch


@dataclass(frozen=True)
class _Candidate:
    """One priced way to serve a request (internal to the greedy)."""

    cost: float
    hops: int
    kind_rank: int  # 0 = cache (preferred on ties), 1 = warehouse
    source: str
    route: Route
    cache_index: int  # index into the residency list, -1 for warehouse
    #: The Ψ_D share of ``cost`` (network transfer); the remainder is the
    #: Ψ_C residency-extension share.  Journal-only -- not in the sort key.
    network_cost: float = 0.0

    @property
    def sort_key(self) -> tuple[float, int, int, str]:
        return (self.cost, self.hops, self.kind_rank, self.source)


class RoutePolicy:
    """Pluggable route selection for the greedy scheduler.

    The default policy always picks the cheapest route and never refuses.
    The bandwidth extension (:mod:`repro.extensions.bandwidth`) overrides
    :meth:`select` to skip routes whose links are saturated during the
    stream's lifetime and :meth:`commit` to book the chosen route's capacity.
    """

    def __init__(self, router):
        self._router = router

    def select(
        self, src: str, dst: str, t_start: float, t_end: float, bandwidth: float
    ) -> Route | None:
        """Route to use for a stream, or ``None`` if none is feasible."""
        del t_start, t_end, bandwidth
        return self._router.route(src, dst)

    def commit(
        self, route: Route, t_start: float, t_end: float, bandwidth: float
    ) -> None:
        """Record that a stream now occupies ``route`` over the window."""
        del route, t_start, t_end, bandwidth


class IndividualScheduler:
    """Greedy per-file scheduler (``find_video_schedule`` of Table 2).

    Args:
        cost_model: Supplies the topology, catalog, router and Ψ pricing.
        constraints: Optional residency constraints; ``None`` reproduces the
            capacity-ignorant Phase-1 behaviour, a
            :class:`~repro.core.rejective.ResidencyConstraints` instance
            turns this into the Sec. 4.4 rejective greedy.
        route_policy: Optional :class:`RoutePolicy`; defaults to
            unconditional cheapest-path routing.
        deposit_scope: Where streams open cache candidates: ``"route"``
            (every traversed storage, the default) or ``"destination"``
            (only the user's local storage).  The destination-only variant
            exists for the ablation study -- it is strictly weaker.
        replicas: Optional :class:`~repro.replication.ReplicaMap`; defaults
            to the cost model's map.  When set, warehouse candidates for a
            video are restricted to its *home* warehouses present in the
            topology -- the replica-aware IVSP picks the cheapest reachable
            copy among homes and open caches.  ``None`` keeps the paper's
            behaviour: every warehouse holds everything.
        obs: Observability handle (:class:`repro.obs.Observability`);
            defaults to the inert :data:`repro.obs.NULL_OBS`.  When live,
            every :meth:`schedule_file` call records an ``ivsp.video``
            span plus delivery/residency counters.  Purely additive:
            schedules are bit-identical either way.

    Thread-safety: with the default (stateless) route policy, one instance
    may serve concurrent :meth:`schedule_file` calls from multiple threads
    -- all mutable per-solve state lives in the :class:`FileGreedySession`;
    the shared router/cost caches are dictionaries whose operations are
    atomic under the GIL.  Stateful route policies (e.g. the bandwidth
    extension, which books link capacity in :meth:`RoutePolicy.commit`) are
    NOT safe to share and must stay on the serial path.
    """

    def __init__(
        self,
        cost_model: CostModel,
        constraints=None,
        route_policy=None,
        *,
        deposit_scope: str = "route",
        obs: Observability | None = None,
        replicas=None,
    ):
        if deposit_scope not in ("route", "destination"):
            raise ScheduleError(
                f"deposit_scope must be 'route' or 'destination', got "
                f"{deposit_scope!r}"
            )
        self._obs = obs if obs is not None else NULL_OBS
        self._cm = cost_model
        self._topo = cost_model.topology
        self._router = cost_model.router
        self._constraints = constraints
        self._route_policy = (
            route_policy if route_policy is not None else RoutePolicy(self._router)
        )
        self._deposit_scope = deposit_scope
        # Immutable copies: scheduler instances are shared across worker
        # threads by the parallel Phase-1 engine, and all per-solve mutable
        # state must live in the per-call FileGreedySession instead.
        self._warehouses = tuple(w.name for w in self._topo.warehouses)
        if not self._warehouses:
            raise ScheduleError("topology has no warehouse to serve from")
        self._warehouse_set = frozenset(self._warehouses)
        self._storage_names = frozenset(s.name for s in self._topo.storages)
        self._replicas = replicas if replicas is not None else cost_model.replicas

    # -- public API ----------------------------------------------------------

    def schedule_file(
        self,
        video: VideoFile,
        requests: list[Request],
        *,
        initial_residencies: tuple[ResidencyInfo, ...] = (),
    ) -> FileSchedule:
        """Compute ``S_i`` for one video's chronologically-sorted requests.

        ``initial_residencies`` seeds the greedy with committed caches from a
        previous scheduling cycle (see :mod:`repro.extensions.rolling`): they
        are kept in the output unconditionally and may be extended by this
        cycle's requests, but never shrunk.
        """
        with self._obs.tracer.span(
            "ivsp.video", video=video.video_id, requests=len(requests)
        ) as span:
            session = self.session(video, initial_residencies=initial_residencies)
            for req in sorted(requests):
                session.serve(req)
            fs = session.finish()
            span.set(deliveries=len(fs.deliveries), residencies=len(fs.residencies))
        metrics = self._obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_ivsp_videos_total",
                help="Videos solved by the Phase-1 per-file greedy",
            ).inc()
            metrics.counter(
                "vor_deliveries_total",
                help="Delivery streams committed by Phase-1 solves",
            ).inc(len(fs.deliveries))
            metrics.counter(
                "vor_residencies_total",
                help="Cache residencies committed by Phase-1 solves",
            ).inc(len(fs.residencies))
            metrics.histogram(
                "vor_requests_per_video",
                boundaries=COUNT_BUCKETS,
                help="Requests per scheduled video",
            ).observe(len(requests))
        return fs

    def session(
        self,
        video: VideoFile,
        *,
        initial_residencies: tuple[ResidencyInfo, ...] = (),
    ) -> "FileGreedySession":
        """Incremental per-file greedy: serve requests one at a time.

        Lets callers interleave requests of different videos (the
        bandwidth-aware scheduler admits requests in global chronological
        order) while each video keeps its own cache state.
        """
        # fail fast: residency pricing will need the catalog entry later
        self._cm.catalog[video.video_id]
        return FileGreedySession(self, video, initial_residencies)

    def serve_into(
        self,
        video: VideoFile,
        req: Request,
        residencies: list[ResidencyInfo],
        fs: FileSchedule,
    ) -> None:
        """One greedy step: price, pick, apply (used by sessions)."""
        if req.video_id != video.video_id:
            raise ScheduleError(
                f"request for {req.video_id!r} passed to schedule of "
                f"{video.video_id!r}"
            )
        choice = self._best_candidate(video, req, residencies)
        journal = self._obs.journal
        if journal.enabled:
            journal.emit(
                "phase1-assigned",
                request=req,
                source=choice.source,
                source_kind="cache" if choice.cache_index >= 0 else "warehouse",
                route=choice.route.nodes,
                hops=choice.hops,
                psi_d=choice.network_cost,
                psi_c=choice.cost - choice.network_cost,
            )
        self._apply(video, req, choice, residencies, fs)

    def solve(self, batch: RequestBatch, catalog: VideoCatalog | None = None) -> Schedule:
        """``IVSP_solve``: schedule every requested file independently."""
        catalog = catalog if catalog is not None else self._cm.catalog
        schedule = Schedule()
        for video_id, requests in batch.by_video().items():
            schedule.set_file(self.schedule_file(catalog[video_id], requests))
        return schedule

    # -- greedy internals ------------------------------------------------------

    def _home_warehouses(self, video_id: str) -> tuple[str, ...]:
        """Warehouse candidates for a video: its homes, or every warehouse."""
        if self._replicas is None:
            return self._warehouses
        return tuple(
            h
            for h in self._replicas.homes(video_id)
            if h in self._warehouse_set
        )

    def _best_candidate(
        self,
        video: VideoFile,
        req: Request,
        residencies: list[ResidencyInfo],
    ) -> _Candidate:
        best: _Candidate | None = None
        if req.local_storage not in self._cm.topology:
            # an unknown destination is a malformed request, not a copy that
            # happens to be unreachable -- keep raising, never skip
            raise RoutingError(f"unknown destination node {req.local_storage!r}")
        volume = video.network_volume * self._cm.network_multiplier(
            req.start_time
        )
        t0, t1 = req.start_time, req.start_time + video.playback
        for w in self._home_warehouses(video.video_id):
            # On a fault-masked (possibly partitioned) topology a warehouse
            # may not reach this neighborhood at all; an unreachable copy is
            # simply not a candidate.  Ties never depend on iteration order
            # (the sort key includes the source name), so skipping here
            # keeps schedules bit-identical across backends.
            try:
                route = self._route_policy.select(
                    w, req.local_storage, t0, t1, video.bandwidth
                )
            except RoutingError:
                continue
            if route is None:
                continue
            cand = _Candidate(
                volume * route.rate, route.hops, 1, w, route, -1,
                network_cost=volume * route.rate,
            )
            if best is None or cand.sort_key < best.sort_key:
                best = cand
        for idx, c in enumerate(residencies):
            if c.t_start > req.start_time:
                continue  # cache not yet filled when the service starts
            extended = c.extended(req.start_time, req.user_id)
            if self._constraints is not None and not self._constraints.allows(
                extended, video, replacing=c
            ):
                continue
            try:
                route = self._route_policy.select(
                    c.location, req.local_storage, t0, t1, video.bandwidth
                )
            except RoutingError:
                continue
            if route is None:
                continue
            ext_cost = self._cm.residency_cost_for(
                video.video_id, c.location, extended.t_start, extended.t_last
            ) - self._cm.residency_cost_for(
                video.video_id, c.location, c.t_start, c.t_last
            )
            cand = _Candidate(
                volume * route.rate + ext_cost, route.hops, 0, c.location,
                route, idx, network_cost=volume * route.rate,
            )
            if best is None or cand.sort_key < best.sort_key:
                best = cand
        if best is None:
            # with the default route policy on a healthy topology some home
            # warehouse is always feasible; a restrictive policy (e.g.
            # bandwidth-aware), a partitioned masked topology, or a video
            # whose every home failed may exhaust options
            raise ScheduleError(f"no feasible source for request {req}")
        if not math.isfinite(best.cost):
            raise ScheduleError(f"non-finite candidate cost for request {req}")
        return best

    def _apply(
        self,
        video: VideoFile,
        req: Request,
        choice: _Candidate,
        residencies: list[ResidencyInfo],
        fs: FileSchedule,
    ) -> None:
        if choice.cache_index >= 0:
            old = residencies[choice.cache_index]
            residencies[choice.cache_index] = old.extended(
                req.start_time, req.user_id
            )
        delivery = DeliveryInfo(
            video_id=video.video_id,
            route=choice.route.nodes,
            start_time=req.start_time,
            request=req,
        )
        fs.add_delivery(delivery)
        self._route_policy.commit(
            choice.route,
            req.start_time,
            req.start_time + video.playback,
            video.bandwidth,
        )
        self._deposit_candidates(video, delivery, residencies)

    def _deposit_candidates(
        self,
        video: VideoFile,
        delivery: DeliveryInfo,
        residencies: list[ResidencyInfo],
    ) -> None:
        """Open zero-cost cache candidates at storages the stream traverses.

        A node gets a candidate unless it already holds a residency of this
        file that a future request could extend.  An *unused* candidate
        (``t_f == t_s``, no services) is replaced by a fresher one: for
        unused candidates a later ``t_s`` strictly dominates (extension cost
        grows with ``t_f - t_s`` while causality only needs ``t_s <= t_u``).
        """
        t = delivery.start_time
        occupied = {c.location: i for i, c in enumerate(residencies)}
        nodes = (
            delivery.route
            if self._deposit_scope == "route"
            else (delivery.destination,)
        )
        for node in nodes:
            if node not in self._storage_names:
                continue
            if node == delivery.source:
                continue  # the serving cache itself lives here already
            candidate = ResidencyInfo(
                video_id=video.video_id,
                location=node,
                source=delivery.source,
                t_start=t,
                t_last=t,
                service_list=(),
            )
            if self._constraints is not None and not self._constraints.allows(
                candidate, video, replacing=None
            ):
                continue
            existing_idx = occupied.get(node)
            if existing_idx is None:
                residencies.append(candidate)
            else:
                existing = residencies[existing_idx]
                if existing.t_last == existing.t_start and not existing.service_list:
                    residencies[existing_idx] = candidate


class FileGreedySession:
    """Incremental greedy state for one video (see
    :meth:`IndividualScheduler.session`).

    Requests must be served in non-decreasing start-time order; the session
    enforces this because the greedy's cache-extension pricing assumes
    chronological processing.
    """

    def __init__(
        self,
        scheduler: IndividualScheduler,
        video: VideoFile,
        initial_residencies: tuple[ResidencyInfo, ...] = (),
    ):
        self._scheduler = scheduler
        self._video = video
        self._fs = FileSchedule(video.video_id)
        self._residencies: list[ResidencyInfo] = []
        for c in initial_residencies:
            if c.video_id != video.video_id:
                raise ScheduleError(
                    f"seed residency of {c.video_id!r} passed to session of "
                    f"{video.video_id!r}"
                )
            self._residencies.append(c)
        self._last_time = -math.inf

    def serve(self, req: Request) -> None:
        """Serve one request, updating cache state and the file schedule.

        Raises :class:`~repro.errors.ScheduleError` if no feasible source
        exists (possible only under a restrictive route policy) -- in that
        case the session state is unchanged and the caller may reject the
        request and continue.
        """
        if req.start_time < self._last_time:
            raise ScheduleError(
                f"requests must be served chronologically: {req.start_time} < "
                f"{self._last_time}"
            )
        self._scheduler.serve_into(self._video, req, self._residencies, self._fs)
        self._last_time = req.start_time

    def finish(self) -> FileSchedule:
        """Finalize: prune unused cache candidates and return ``S_i``.

        Zero-extent residencies that *served* someone (real-time relays of
        simultaneous streams) are kept -- they back their deliveries.
        """
        self._fs.residencies = [
            c
            for c in self._residencies
            if c.t_last > c.t_start or c.service_list
        ]
        return self._fs

    @property
    def schedule(self) -> FileSchedule:
        """The schedule under construction (deliveries only are reliable)."""
        return self._fs

    @property
    def residencies(self) -> list[ResidencyInfo]:
        """Live view of the session's current cache state (do not mutate)."""
        return self._residencies
