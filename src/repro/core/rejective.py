"""Rejective greedy rescheduling (paper Sec. 4.4).

The rejective greedy re-arranges the service delivery of *all* requests for a
victim file under two additional constraints the Phase-1 greedy ignores:

1. the file may not be cached at the overflowing storage ``IS_j`` during the
   overflow interval ``Δt`` (it must not occupy space there then), and
2. it "maintains the space usage information for the intermediate storages,
   and does not schedule a video file to the intermediate storage if there is
   not sufficient storage capacity available" -- avoiding subsequent
   overflows.

Both are expressed as a :class:`ResidencyConstraints` object plugged into the
shared greedy core (:class:`~repro.core.individual.IndividualScheduler`), so
Phase 1 and the rejective greedy are literally the same algorithm with and
without constraints, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.catalog import VideoCatalog
from repro.catalog.video import VideoFile
from repro.core.costmodel import CostModel
from repro.core.individual import IndividualScheduler
from repro.core.schedule import FileSchedule, ResidencyInfo, Schedule
from repro.core.spacefunc import EPS, SpaceProfile, UsageTimeline
from repro.topology.graph import Topology
from repro.workload.requests import Request


def fits_under(
    timeline: UsageTimeline,
    profile: SpaceProfile,
    capacity: float,
    *,
    eps: float = EPS,
) -> bool:
    """True iff ``timeline + profile <= capacity`` everywhere.

    Both operands are piecewise linear, so their sum is too; its maximum is
    attained at a breakpoint of either operand (approached from the left or
    the right), which is the finite set of points we evaluate -- vectorized,
    as this is the scheduler's hottest inner check.
    """
    if not profile.segments:
        return True
    slack = capacity + eps + 1e-12 * max(capacity, 1.0)
    if timeline.is_empty:
        return profile.peak <= slack
    ts = timeline._ts
    y_right = timeline._y_right
    y_next = timeline._y_next
    for seg in profile.segments:
        # segment endpoints: both one-sided timeline values matter
        for p in (seg.start, seg.end):
            pv = seg.value(p)
            if pv + timeline.value(p) > slack:
                return False
            if pv + timeline.value_left(p) > slack:
                return False
        # timeline grid points strictly inside the segment: the profile is
        # linear there, so evaluate it on a *view* of the grid (no per-point
        # Python bisects -- this is the scheduler's hottest loop)
        i0 = int(np.searchsorted(ts, seg.start, side="right"))
        i1 = int(np.searchsorted(ts, seg.end, side="left"))
        if i1 <= i0:
            continue
        prof = seg.y0 + seg.slope * (ts[i0:i1] - seg.start)
        if ((y_right[i0:i1] + prof) > slack).any():
            return False
        # left-limits at grid point j live in y_next[j-1]
        j0 = i0
        if j0 == 0:
            prof = prof[1:]
            j0 = 1
        if prof.size and ((y_next[j0 - 1 : i1 - 1] + prof) > slack).any():
            return False
    return True


class AvailabilityOracle:
    """Per-storage "space used by everyone else" view for one victim file.

    Built from the current integrated schedule with the victim's residencies
    excluded; answers whether a candidate residency profile fits in the
    remaining capacity at a location.  Timelines are built lazily per
    location because a reschedule usually touches only a few storages.
    """

    def __init__(
        self,
        schedule: Schedule,
        catalog: VideoCatalog,
        topology: Topology,
        exclude_video: str,
        background=None,
    ):
        self._schedule = schedule
        self._catalog = catalog
        self._topo = topology
        self._exclude = exclude_video
        self._background = background or {}
        self._timelines: dict[str, UsageTimeline] = {}

    def timeline(self, location: str) -> UsageTimeline:
        tl = self._timelines.get(location)
        if tl is None:
            profiles = [
                c.profile(self._catalog[c.video_id])
                for c in self._schedule.residencies_at(location)
                if c.video_id != self._exclude
            ]
            profiles.extend(self._background.get(location, ()))
            tl = UsageTimeline(profiles)
            self._timelines[location] = tl
        return tl

    def fits(self, location: str, profile: SpaceProfile) -> bool:
        capacity = self._topo.capacity(location)
        if profile.peak > capacity + EPS:
            return False
        return fits_under(self.timeline(location), profile, capacity)


@dataclass
class ResidencyConstraints:
    """Constraints plugged into the greedy to make it *rejective*.

    Attributes:
        forbidden: ``(location, (t0, t1))`` pairs; a residency whose space
            profile is positive inside such an interval at that location is
            rejected (the victim must vacate the overflow window).
        oracle: Optional capacity oracle; when present, any residency whose
            profile does not fit in the location's remaining capacity is
            rejected.
    """

    forbidden: list[tuple[str, tuple[float, float]]] = field(default_factory=list)
    oracle: AvailabilityOracle | None = None

    def allows(
        self,
        candidate: ResidencyInfo,
        video: VideoFile,
        *,
        replacing: ResidencyInfo | None = None,
    ) -> bool:
        """May ``candidate`` (possibly replacing an earlier interval) exist?"""
        del replacing  # one residency per (file, IS); see IndividualScheduler
        profile = candidate.profile(video)
        if not profile.segments:
            return True  # zero-extent candidates occupy no space
        for location, (t0, t1) in self.forbidden:
            if location == candidate.location and profile.positive_in(t0, t1):
                return False
        if self.oracle is not None and not self.oracle.fits(
            candidate.location, profile
        ):
            return False
        return True


class RejectiveGreedyScheduler:
    """``rejective_greedy()`` of Table 3, line 18.

    Reschedules one victim file against the current integrated schedule,
    forbidding it from the overflowing ``(Δt, IS_j)`` and from any placement
    that would not fit in the currently available space.
    """

    def __init__(self, cost_model: CostModel):
        self._cm = cost_model

    def reschedule(
        self,
        video: VideoFile,
        requests: list[Request],
        schedule: Schedule,
        *,
        forbidden: list[tuple[str, tuple[float, float]]],
        background=None,
        initial_residencies: tuple[ResidencyInfo, ...] = (),
    ) -> FileSchedule:
        """New ``S_i`` for ``video`` honouring capacity + forbidden windows.

        ``schedule`` is the full integrated schedule; the victim's own
        residencies are excluded from the availability view (they are being
        replaced wholesale).  ``background`` adds committed out-of-schedule
        usage (rolling cycles); ``initial_residencies`` re-seeds the
        victim's committed carryover caches, which a rebuild must keep.
        """
        oracle = AvailabilityOracle(
            schedule,
            self._cm.catalog,
            self._cm.topology,
            video.video_id,
            background=background,
        )
        constraints = ResidencyConstraints(forbidden=list(forbidden), oracle=oracle)
        greedy = IndividualScheduler(self._cm, constraints)
        return greedy.schedule_file(
            video, requests, initial_residencies=initial_residencies
        )
