"""Schedule data model (paper Sec. 2.1).

A *service schedule* ``S`` consists of

* network transfer information ``D = {d_1 ... d_nd}`` -- each
  :class:`DeliveryInfo` says "a stream of video ``id`` flows along ``route``
  starting at ``t_s``", and
* file residency information ``C = {c_1 ... c_nc}`` -- each
  :class:`ResidencyInfo` is the paper's five-tuple
  ``([t_s, t_f], loc, id, n_src, service_list)``.

Routes end at the *local* intermediate storage of the requesting user; the
last hop from local IS to the user is fixed and therefore never scheduled or
priced (Sec. 2.1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.catalog.video import VideoFile
from repro.core.spacefunc import SpaceProfile, residency_profile
from repro.errors import ScheduleError
from repro.workload.requests import Request


@dataclass(frozen=True)
class DeliveryInfo:
    """Network transfer information ``d_i = (route, t_s, id)``.

    Attributes:
        video_id: The transferred video.
        route: Node names from the stream's source (warehouse or caching
            storage) to the requesting user's local storage, inclusive.  A
            single-node route means the user is served by its own local
            cache and no priced network transfer occurs.
        start_time: When the flow (and the user's playback) begins.
        request: The request this delivery serves.
    """

    video_id: str
    route: tuple[str, ...]
    start_time: float
    request: Request

    def __post_init__(self) -> None:
        if not self.route:
            raise ScheduleError("delivery route must contain at least one node")
        if not math.isfinite(self.start_time):
            raise ScheduleError(f"start_time must be finite, got {self.start_time}")
        if self.request.video_id != self.video_id:
            raise ScheduleError(
                f"delivery video {self.video_id!r} does not match request video "
                f"{self.request.video_id!r}"
            )
        if self.route[-1] != self.request.local_storage:
            raise ScheduleError(
                f"route ends at {self.route[-1]!r}, expected the user's local "
                f"storage {self.request.local_storage!r}"
            )

    @property
    def source(self) -> str:
        return self.route[0]

    @property
    def destination(self) -> str:
        return self.route[-1]

    @property
    def hops(self) -> int:
        return len(self.route) - 1


@dataclass(frozen=True)
class ResidencyInfo:
    """File residency information ``c_i = ([t_s, t_f], loc, id, n_src, svc)``.

    ``t_start`` is when the cache starts filling (from the stream identified
    by ``source``); ``t_last`` is the start time of the last service fed from
    this cache.  Blocks already consumed by that chronologically-last service
    are discarded, so physical occupancy follows the Eq. 6 profile and ends at
    ``t_last + P``.
    """

    video_id: str
    location: str
    source: str
    t_start: float
    t_last: float
    service_list: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.t_last < self.t_start:
            raise ScheduleError(
                f"residency interval reversed: [{self.t_start}, {self.t_last}]"
            )
        if not (math.isfinite(self.t_start) and math.isfinite(self.t_last)):
            raise ScheduleError("residency interval must be finite")
        if self.location == self.source:
            raise ScheduleError(
                f"residency at {self.location!r} cannot source from itself"
            )

    @property
    def span(self) -> float:
        """Length of the caching interval ``t_f - t_s``."""
        return self.t_last - self.t_start

    def is_long(self, video: VideoFile) -> bool:
        """Long residency per Sec. 2.2.1: ``t_f - t_s >= P``."""
        return self.span >= video.playback

    def profile(self, video: VideoFile) -> SpaceProfile:
        """The Eq. 6 reserved-space profile of this residency."""
        if video.video_id != self.video_id:
            raise ScheduleError(
                f"profile requested with video {video.video_id!r} for residency "
                f"of {self.video_id!r}"
            )
        return residency_profile(video.size, video.playback, self.t_start, self.t_last)

    def extended(self, new_t_last: float, user_id: str) -> "ResidencyInfo":
        """Copy with the caching interval extended to serve ``user_id``."""
        if new_t_last < self.t_last:
            raise ScheduleError(
                f"cannot shrink residency: {new_t_last} < {self.t_last}"
            )
        # hot path (millions of calls in SORP's trial rebuilds): direct
        # construction is ~3x faster than dataclasses.replace
        return ResidencyInfo(
            self.video_id,
            self.location,
            self.source,
            self.t_start,
            new_t_last,
            self.service_list + (user_id,),
        )


@dataclass
class FileSchedule:
    """Schedule ``S_i`` for one video: its deliveries and residencies."""

    video_id: str
    deliveries: list[DeliveryInfo] = field(default_factory=list)
    residencies: list[ResidencyInfo] = field(default_factory=list)

    def add_delivery(self, d: DeliveryInfo) -> None:
        if d.video_id != self.video_id:
            raise ScheduleError(
                f"delivery of {d.video_id!r} added to schedule of {self.video_id!r}"
            )
        self.deliveries.append(d)

    def add_residency(self, c: ResidencyInfo) -> None:
        if c.video_id != self.video_id:
            raise ScheduleError(
                f"residency of {c.video_id!r} added to schedule of {self.video_id!r}"
            )
        self.residencies.append(c)

    @property
    def served_users(self) -> list[str]:
        return [d.request.user_id for d in self.deliveries]

    def residencies_at(self, location: str) -> list[ResidencyInfo]:
        return [c for c in self.residencies if c.location == location]

    def pruned(self) -> "FileSchedule":
        """Copy without unused cache candidates.

        A candidate is pruned only when it is zero-extent *and* served
        nobody.  A zero-extent residency **with** services is a real-time
        relay -- two simultaneous streams where the second tees off the
        first at this storage with zero lag (gamma = 0, no space, no cost)
        -- and must stay in the schedule to back its deliveries.
        """
        return FileSchedule(
            self.video_id,
            list(self.deliveries),
            [
                c
                for c in self.residencies
                if c.t_last > c.t_start or c.service_list
            ],
        )


class Schedule:
    """The full service schedule ``S`` = union of per-file schedules."""

    def __init__(self, file_schedules: Iterable[FileSchedule] = ()):
        self._files: dict[str, FileSchedule] = {}
        for fs in file_schedules:
            self.set_file(fs)

    def set_file(self, fs: FileSchedule) -> None:
        """Insert or replace the schedule of one video."""
        self._files[fs.video_id] = fs

    def __eq__(self, other: object) -> bool:
        """Value equality: same videos with equal per-file schedules.

        Insertion order is deliberately ignored -- two schedules holding the
        same deliveries and residencies are the same plan however they were
        assembled.  (Per-file delivery/residency *lists* still compare
        ordered, as those orders are part of each file's greedy history.)
        """
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._files == other._files

    __hash__ = None  # mutable container

    def file(self, video_id: str) -> FileSchedule:
        try:
            return self._files[video_id]
        except KeyError:
            raise ScheduleError(f"no schedule for video {video_id!r}") from None

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._files

    def __iter__(self) -> Iterator[FileSchedule]:
        return iter(self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    @property
    def deliveries(self) -> list[DeliveryInfo]:
        return [d for fs in self._files.values() for d in fs.deliveries]

    @property
    def residencies(self) -> list[ResidencyInfo]:
        return [c for fs in self._files.values() for c in fs.residencies]

    def residencies_at(self, location: str) -> list[ResidencyInfo]:
        return [c for c in self.residencies if c.location == location]

    def pruned(self) -> "Schedule":
        """Copy with unused zero-extent cache candidates removed."""
        return Schedule(fs.pruned() for fs in self._files.values())

    def copy(self) -> "Schedule":
        return Schedule(
            FileSchedule(fs.video_id, list(fs.deliveries), list(fs.residencies))
            for fs in self._files.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule({len(self._files)} videos, "
            f"{len(self.deliveries)} deliveries, "
            f"{len(self.residencies)} residencies)"
        )
