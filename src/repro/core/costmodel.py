"""The cost model Ψ (paper Sec. 2.2, Eqs. 1-4).

``Ψ(S) = Σ Ψ_C(c_i) + Σ Ψ_D(d_i)`` maps a service schedule to money:

* **Storage** (Eqs. 2-3, unified via the Eq. 7 coefficient):

      Ψ_C(c) = srate(loc) * size * gamma * ((t_f - t_s) + P/2)

  with ``gamma = 1`` for long residencies (``t_f - t_s >= P``) and
  ``gamma = (t_f - t_s)/P`` for short ones.  This is exactly the integral of
  the Eq. 6 space profile, so storage cost == charged space-time.

* **Network** (Eq. 4): the amortized bandwidth volume of a delivery is
  ``P_i * B_i`` bytes; on a per-hop basis the transfer costs
  ``P*B * Σ_hop nrate(hop)``, on an end-to-end basis ``P*B * nrate(src,dst)``.

Charging rates are *inherent to each resource entity* (each storage node,
each link), which is why the model reads them from the topology rather than
taking global constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.core.spacefunc import gamma_coefficient
from repro.errors import ScheduleError
from repro.topology.graph import ChargingBasis, Topology
from repro.topology.routing import Router


@dataclass(frozen=True)
class CostBreakdown:
    """Total schedule cost split by resource type (all in $)."""

    storage: float
    network: float

    @property
    def total(self) -> float:
        return self.storage + self.network

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(self.storage + other.storage, self.network + other.network)


class CostModel:
    """Evaluates Ψ over schedules against a fixed topology + catalog."""

    def __init__(self, topology: Topology, catalog: VideoCatalog):
        self._topo = topology
        self._catalog = catalog
        self._router = Router(topology)

    @property
    def topology(self) -> Topology:
        return self._topo

    @property
    def catalog(self) -> VideoCatalog:
        return self._catalog

    @property
    def router(self) -> Router:
        return self._router

    # -- storage: Ψ_C -------------------------------------------------------

    def residency_cost(self, c: ResidencyInfo) -> float:
        """Ψ_C(c) per Eqs. 2-3 (unified with the Eq. 7 gamma)."""
        video = self._catalog[c.video_id]
        srate = self._topo.srate(c.location)
        g = gamma_coefficient(c.t_start, c.t_last, video.playback)
        return srate * video.size * g * (c.span + 0.5 * video.playback)

    # -- network: Ψ_D -------------------------------------------------------

    def network_multiplier(self, start_time: float) -> float:
        """Time-of-day factor applied to network charges.

        The base model charges flat rates (multiplier 1.0).  Subclasses --
        e.g. :class:`repro.extensions.pricing.DiurnalCostModel` -- override
        this to make transfers cheaper off-peak; both Ψ_D evaluation *and*
        the greedy's candidate pricing consult it, so schedules are optimized
        under the same tariff they are billed under.
        """
        del start_time
        return 1.0

    def delivery_cost(self, d: DeliveryInfo) -> float:
        """Ψ_D(d) per Eq. 4 on the delivery's concrete route."""
        video = self._catalog[d.video_id]
        volume = video.network_volume
        if len(d.route) == 1:
            return 0.0  # served from the user's own local storage
        multiplier = self.network_multiplier(d.start_time)
        if self._topo.charging_basis is ChargingBasis.END_TO_END:
            explicit = self._topo.pair_rate(d.source, d.destination)
            if explicit is not None:
                return volume * explicit * multiplier
        rate = math.fsum(
            self._topo.edge(a, b).nrate for a, b in zip(d.route, d.route[1:])
        )
        return volume * rate * multiplier

    # -- aggregates ----------------------------------------------------------

    def file_cost(self, fs: FileSchedule) -> CostBreakdown:
        """Ψ(S_i): cost of one video's schedule, split by resource."""
        storage = math.fsum(self.residency_cost(c) for c in fs.residencies)
        network = math.fsum(self.delivery_cost(d) for d in fs.deliveries)
        return CostBreakdown(storage, network)

    def schedule_cost(self, schedule: Schedule) -> CostBreakdown:
        """Ψ(S) = Σ_i Ψ(S_i) (Eq. 1)."""
        total = CostBreakdown(0.0, 0.0)
        for fs in schedule:
            total = total + self.file_cost(fs)
        return total

    def total(self, schedule: Schedule) -> float:
        """Scalar Ψ(S)."""
        return self.schedule_cost(schedule).total

    # -- convenience for the schedulers --------------------------------------

    def transfer_rate(self, src: str, dst: str) -> float:
        """Cheapest effective $/byte rate between two nodes."""
        return self._router.rate(src, dst)

    def residency_cost_for(
        self, video_id: str, location: str, t_start: float, t_last: float
    ) -> float:
        """Ψ_C of a hypothetical residency, used for incremental pricing."""
        if t_last < t_start:
            raise ScheduleError(
                f"residency interval reversed: [{t_start}, {t_last}]"
            )
        video = self._catalog[video_id]
        srate = self._topo.srate(location)
        g = gamma_coefficient(t_start, t_last, video.playback)
        return srate * video.size * g * ((t_last - t_start) + 0.5 * video.playback)
