"""The cost model Ψ (paper Sec. 2.2, Eqs. 1-4).

``Ψ(S) = Σ Ψ_C(c_i) + Σ Ψ_D(d_i)`` maps a service schedule to money:

* **Storage** (Eqs. 2-3, unified via the Eq. 7 coefficient):

      Ψ_C(c) = srate(loc) * size * gamma * ((t_f - t_s) + P/2)

  with ``gamma = 1`` for long residencies (``t_f - t_s >= P``) and
  ``gamma = (t_f - t_s)/P`` for short ones.  This is exactly the integral of
  the Eq. 6 space profile, so storage cost == charged space-time.

* **Network** (Eq. 4): the amortized bandwidth volume of a delivery is
  ``P_i * B_i`` bytes; on a per-hop basis the transfer costs
  ``P*B * Σ_hop nrate(hop)``, on an end-to-end basis ``P*B * nrate(src,dst)``.

Charging rates are *inherent to each resource entity* (each storage node,
each link), which is why the model reads them from the topology rather than
taking global constants.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.core.spacefunc import gamma_coefficient
from repro.errors import ScheduleError
from repro.topology.graph import ChargingBasis, Topology
from repro.topology.routing import Router


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of the memoized cost-evaluation cache.

    Instances are immutable snapshots; subtract two snapshots to get the
    activity between them, add several to aggregate across workers.
    """

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.hits + other.hits, self.misses + other.misses)

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.hits - other.hits, self.misses - other.misses)


@dataclass(frozen=True)
class CacheStatsDetail:
    """Per-cache breakdown of the memoization counters.

    ``psi_c`` covers the Eq. 2/3 storage-cost cache, ``psi_d`` the
    per-route network-rate cache.  Lookup *totals* per cache are
    deterministic for a seeded batch (they count Ψ evaluations); the
    hit/miss split depends on cache temperature and worker layout.
    """

    psi_c: CacheStats = CacheStats()
    psi_d: CacheStats = CacheStats()

    @property
    def combined(self) -> CacheStats:
        return self.psi_c + self.psi_d

    def __add__(self, other: "CacheStatsDetail") -> "CacheStatsDetail":
        return CacheStatsDetail(self.psi_c + other.psi_c, self.psi_d + other.psi_d)

    def __sub__(self, other: "CacheStatsDetail") -> "CacheStatsDetail":
        return CacheStatsDetail(self.psi_c - other.psi_c, self.psi_d - other.psi_d)


def record_cache_metrics(metrics, detail: CacheStatsDetail, *, phase: str) -> None:
    """Fold cache counters into a metrics registry under a phase label.

    Ψ *evaluation* totals (``hits + misses`` per cache) are deterministic
    for a seeded batch -- the greedy performs the same pricing sequence on
    every backend -- so they register as comparable counters; the
    hit/miss split depends on cache temperature and worker layout and is
    flagged ``deterministic=False``.
    """
    if not metrics.enabled:
        return
    for cache, stats in (("psi_c", detail.psi_c), ("psi_d", detail.psi_d)):
        metrics.counter(
            "vor_psi_evaluations_total",
            help="Ψ cost-term evaluations (memoization-cache lookups)",
            cache=cache,
            phase=phase,
        ).inc(stats.lookups)
        metrics.counter(
            "vor_cost_cache_hits_total",
            help="Cost-evaluation cache hits",
            deterministic=False,
            cache=cache,
            phase=phase,
        ).inc(stats.hits)
        metrics.counter(
            "vor_cost_cache_misses_total",
            help="Cost-evaluation cache misses",
            deterministic=False,
            cache=cache,
            phase=phase,
        ).inc(stats.misses)


@dataclass(frozen=True)
class CostBreakdown:
    """Total schedule cost split by resource type (all in $)."""

    storage: float
    network: float

    @property
    def total(self) -> float:
        return self.storage + self.network

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(self.storage + other.storage, self.network + other.network)


class CostModel:
    """Evaluates Ψ over schedules against a fixed topology + catalog.

    Args:
        topology: Priced delivery infrastructure.
        catalog: Schedulable videos.
        cache: Enable the memoized cost-evaluation cache (on by default).
            Ψ_C values are keyed on ``(srate, size, span, P)`` -- the full
            set of inputs Eq. 2/3 depends on -- and per-route Ψ_D rates on
            the route's node tuple, so cached evaluation is exactly equal to
            uncached evaluation.  Greedy placement and SORP victim
            rescheduling reprice the same residency intervals and routes
            millions of times; the cache turns those into dict lookups.
        cache_limit: Entry count at which a cache is wiped and restarted
            (bounds memory; correctness is unaffected).
        replicas: Optional :class:`~repro.replication.ReplicaMap` naming the
            home warehouses of each video.  Pricing is unaffected -- the map
            rides on the model so every scheduler built over it (Phase-1
            greedy, SORP's rejective greedy, contingency re-solves, thread
            worker views, pickled process-pool workers) restricts warehouse
            candidates to the same homes.  ``None`` means every warehouse
            holds every video (the single-warehouse paper model).

    The cache is transparent to subclasses: :meth:`network_multiplier` is
    applied *outside* the cached route rate, so time-of-day tariffs stay
    exact.  Instances may be shared across threads -- dict reads/writes are
    atomic under the GIL and entries are immutable once stored.  The
    hit/miss counters would undercount under concurrent mutation, which is
    why the thread-backend Phase-1 engine gives each shard its own
    :meth:`worker_view` (shared caches, private counters): every backend
    reports exact per-shard statistics.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        cache: bool = True,
        cache_limit: int = 1 << 18,
        replicas=None,
    ):
        if cache_limit < 1:
            raise ScheduleError(f"cache_limit must be >= 1, got {cache_limit}")
        self._topo = topology
        self._catalog = catalog
        self._replicas = replicas
        self._router = Router(topology)
        self._cache_enabled = bool(cache)
        self._cache_limit = cache_limit
        #: (srate, size, playback, span) -> Ψ_C
        self._psi_c_cache: dict[tuple[float, float, float, float], float] = {}
        #: route node tuple -> effective $/byte rate (before tariff)
        self._psi_d_cache: dict[tuple[str, ...], float] = {}
        # Plain ints, one pair per cache: the Ψ_C path runs millions of
        # times per solve, so the observability layer reads these as a
        # view instead of putting registry calls on the hot path.
        self._c_hits = 0
        self._c_misses = 0
        self._d_hits = 0
        self._d_misses = 0

    @property
    def topology(self) -> Topology:
        return self._topo

    @property
    def catalog(self) -> VideoCatalog:
        return self._catalog

    @property
    def router(self) -> Router:
        return self._router

    @property
    def replicas(self):
        """The :class:`~repro.replication.ReplicaMap`, or ``None``."""
        return self._replicas

    def __getstate__(self) -> dict:
        # Pickled models (shipped to process-pool workers) start with cold
        # caches: memoized values are pure recomputables and the counters
        # belong to the sending process.
        state = self.__dict__.copy()
        state["_psi_c_cache"] = {}
        state["_psi_d_cache"] = {}
        state["_c_hits"] = 0
        state["_c_misses"] = 0
        state["_d_hits"] = 0
        state["_d_misses"] = 0
        return state

    def with_replicas(self, replicas) -> "CostModel":
        """A clone of this model carrying a different replica map.

        Pricing is placement-independent (the map only restricts which
        warehouses are *candidates*), so the memoized Ψ_C/Ψ_D caches stay
        shared with the original; counters start fresh.  Subclasses (e.g.
        diurnal tariffs) are preserved by the shallow copy.  This is how
        the horizon layer swaps replica maps between cycles without
        rebuilding the model.
        """
        clone = copy.copy(self)
        clone._replicas = replicas
        clone._c_hits = 0
        clone._c_misses = 0
        clone._d_hits = 0
        clone._d_misses = 0
        return clone

    def worker_view(self) -> "CostModel":
        """A clone sharing this model's memoized caches with fresh counters.

        Thread-backend shards each solve through their own view, so
        per-shard hit/miss activity is attributable exactly (the shared
        counters would otherwise interleave); cached *values* stay
        shared, preserving the warm-cache win.  Subclasses (e.g. diurnal
        tariffs) are preserved by the shallow copy.
        """
        view = copy.copy(self)
        view._c_hits = 0
        view._c_misses = 0
        view._d_hits = 0
        view._d_misses = 0
        return view

    # -- cache bookkeeping ---------------------------------------------------

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    @property
    def cache_stats(self) -> CacheStats:
        """Combined hit/miss counters since the last reset (both caches)."""
        return CacheStats(
            self._c_hits + self._d_hits, self._c_misses + self._d_misses
        )

    @property
    def cache_stats_detail(self) -> CacheStatsDetail:
        """Per-cache (Ψ_C vs Ψ_D) hit/miss snapshot since the last reset."""
        return CacheStatsDetail(
            psi_c=CacheStats(self._c_hits, self._c_misses),
            psi_d=CacheStats(self._d_hits, self._d_misses),
        )

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss counters (cached values are kept)."""
        self._c_hits = 0
        self._c_misses = 0
        self._d_hits = 0
        self._d_misses = 0

    def clear_cache(self) -> None:
        """Drop every memoized value (counters are kept)."""
        self._psi_c_cache.clear()
        self._psi_d_cache.clear()

    def _psi_c(self, srate: float, size: float, playback: float, span: float) -> float:
        # NB: the product keeps the historical operand order (and therefore
        # bit-identical floats); `charged_space_time` is the same quantity
        # modulo association and is what the invariant tests check against.
        if not self._cache_enabled:
            g = gamma_coefficient(0.0, span, playback)
            return srate * size * g * (span + 0.5 * playback)
        key = (srate, size, playback, span)
        value = self._psi_c_cache.get(key)
        if value is not None:
            self._c_hits += 1
            return value
        self._c_misses += 1
        g = gamma_coefficient(0.0, span, playback)
        value = srate * size * g * (span + 0.5 * playback)
        if len(self._psi_c_cache) >= self._cache_limit:
            self._psi_c_cache.clear()
        self._psi_c_cache[key] = value
        return value

    def _route_rate(self, route: tuple[str, ...]) -> float:
        """Effective $/byte rate of a concrete route (tariff applied later)."""
        if self._cache_enabled:
            value = self._psi_d_cache.get(route)
            if value is not None:
                self._d_hits += 1
                return value
            self._d_misses += 1
        if (
            self._topo.charging_basis is ChargingBasis.END_TO_END
            and (explicit := self._topo.pair_rate(route[0], route[-1])) is not None
        ):
            value = explicit
        else:
            value = math.fsum(
                self._topo.edge(a, b).nrate for a, b in zip(route, route[1:])
            )
        if self._cache_enabled:
            if len(self._psi_d_cache) >= self._cache_limit:
                self._psi_d_cache.clear()
            self._psi_d_cache[route] = value
        return value

    # -- storage: Ψ_C -------------------------------------------------------

    def residency_cost(self, c: ResidencyInfo) -> float:
        """Ψ_C(c) per Eqs. 2-3 (unified with the Eq. 7 gamma)."""
        video = self._catalog[c.video_id]
        srate = self._topo.srate(c.location)
        return self._psi_c(srate, video.size, video.playback, c.span)

    # -- network: Ψ_D -------------------------------------------------------

    def network_multiplier(self, start_time: float) -> float:
        """Time-of-day factor applied to network charges.

        The base model charges flat rates (multiplier 1.0).  Subclasses --
        e.g. :class:`repro.extensions.pricing.DiurnalCostModel` -- override
        this to make transfers cheaper off-peak; both Ψ_D evaluation *and*
        the greedy's candidate pricing consult it, so schedules are optimized
        under the same tariff they are billed under.
        """
        del start_time
        return 1.0

    def delivery_cost(self, d: DeliveryInfo) -> float:
        """Ψ_D(d) per Eq. 4 on the delivery's concrete route."""
        video = self._catalog[d.video_id]
        volume = video.network_volume
        if len(d.route) == 1:
            return 0.0  # served from the user's own local storage
        multiplier = self.network_multiplier(d.start_time)
        return volume * self._route_rate(d.route) * multiplier

    # -- aggregates ----------------------------------------------------------

    def file_cost(self, fs: FileSchedule) -> CostBreakdown:
        """Ψ(S_i): cost of one video's schedule, split by resource."""
        storage = math.fsum(self.residency_cost(c) for c in fs.residencies)
        network = math.fsum(self.delivery_cost(d) for d in fs.deliveries)
        return CostBreakdown(storage, network)

    def schedule_cost(self, schedule: Schedule) -> CostBreakdown:
        """Ψ(S) = Σ_i Ψ(S_i) (Eq. 1)."""
        total = CostBreakdown(0.0, 0.0)
        for fs in schedule:
            total = total + self.file_cost(fs)
        return total

    def total(self, schedule: Schedule) -> float:
        """Scalar Ψ(S)."""
        return self.schedule_cost(schedule).total

    # -- convenience for the schedulers --------------------------------------

    def transfer_rate(self, src: str, dst: str) -> float:
        """Cheapest effective $/byte rate between two nodes."""
        return self._router.rate(src, dst)

    def residency_cost_for(
        self, video_id: str, location: str, t_start: float, t_last: float
    ) -> float:
        """Ψ_C of a hypothetical residency, used for incremental pricing."""
        if t_last < t_start:
            raise ScheduleError(
                f"residency interval reversed: [{t_start}, {t_last}]"
            )
        video = self._catalog[video_id]
        srate = self._topo.srate(location)
        return self._psi_c(srate, video.size, video.playback, t_last - t_start)
