"""Parallel Phase-1 execution engine.

Individual Video Scheduling (paper Sec. 3.2) is embarrassingly parallel:
``IVSP_solve`` partitions the cycle's requests into per-video sets ``R_i``
and computes each file's schedule independently.  Each ``S_i`` is a pure
function of ``(video, sorted(R_i), seed residencies)`` against a fixed
topology + catalog, so the shards can run on any worker pool and the merged
result is **bit-identical** to the serial loop:

* shards are formed in the deterministic ``RequestBatch.by_video()`` order
  (first-request order) and merged back in that same order;
* within a shard the greedy performs exactly the serial sequence of
  floating-point operations;
* the memoized cost cache (:class:`repro.core.costmodel.CostModel`) stores
  exactly the values the uncached expressions produce, so warm or cold
  caches cannot change a single bit of any schedule.

Three backends are provided:

``serial``
    The plain loop; the default and the reference semantics.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing one scheduler
    and one cost model.  Router and cost-cache dictionaries are safe to
    share under the GIL (reads/writes are atomic, entries immutable).  Wins
    when a GIL-releasing cost model or free-threaded build is in play;
    otherwise it mostly demonstrates determinism.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; the cost model is
    shipped to each worker once via the pool initializer and shards return
    pickled :class:`~repro.core.schedule.FileSchedule` objects plus their
    worker-side cache statistics.  This is the backend that scales Phase 1
    across cores.

Phase 2 (overflow resolution) stays serial: it is an inherently sequential
victim-selection loop over the *merged* schedule.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.catalog.video import VideoFile
from repro.core.costmodel import CacheStats, CostModel
from repro.core.individual import IndividualScheduler
from repro.core.schedule import FileSchedule, ResidencyInfo, Schedule
from repro.errors import ScheduleError
from repro.workload.requests import Request, RequestBatch

BACKENDS = ("serial", "thread", "process")

#: One unit of Phase-1 work: a video, its chronological requests, and the
#: carryover residencies seeding its greedy (empty outside rolling cycles).
Shard = list[tuple[VideoFile, tuple[Request, ...], tuple[ResidencyInfo, ...]]]


@dataclass(frozen=True)
class ParallelConfig:
    """How Phase 1 fans out.

    Attributes:
        backend: ``"serial"``, ``"thread"`` or ``"process"``.
        workers: Pool size; ``None`` uses ``os.cpu_count()``.
        min_videos: Batches with fewer distinct videos than this run the
            serial loop regardless of backend (pool spin-up costs more than
            it saves on tiny batches).
        chunks_per_worker: Shards are contiguous video runs; creating a few
            per worker balances load when per-video request counts are
            skewed (Zipf workloads) without drowning the pool in tasks.
    """

    backend: str = "serial"
    workers: int | None = None
    min_videos: int = 2
    chunks_per_worker: int = 4

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ScheduleError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {self.workers}")
        if self.min_videos < 0:
            raise ScheduleError(f"min_videos must be >= 0, got {self.min_videos}")
        if self.chunks_per_worker < 1:
            raise ScheduleError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )

    def resolved_workers(self) -> int:
        """The concrete pool size this config asks for."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1


@dataclass(frozen=True)
class Phase1Result:
    """Outcome of one Phase-1 fan-out."""

    schedule: Schedule
    #: Cost-cache activity attributable to this run.  For the process
    #: backend this aggregates the workers' counters (the caller's model
    #: never sees their lookups); serial/thread runs hit the caller's model
    #: directly so the same activity also shows up in its own counters.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    backend: str = "serial"
    workers: int = 1


def make_shards(
    work: list[tuple[VideoFile, tuple[Request, ...], tuple[ResidencyInfo, ...]]],
    n_shards: int,
) -> list[Shard]:
    """Split the per-video work list into ``n_shards`` contiguous runs.

    Deterministic: depends only on the input order and ``n_shards``.  Sizes
    differ by at most one (the first ``len(work) % n_shards`` shards get the
    extra item), and no shard is empty.
    """
    if n_shards < 1:
        raise ScheduleError(f"n_shards must be >= 1, got {n_shards}")
    n = len(work)
    if n == 0:
        return []
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    shards: list[Shard] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(work[start : start + size])
        start += size
    return shards


# -- process-backend worker plumbing ----------------------------------------
#
# Worker processes build their scheduler once (pool initializer) and keep it
# in a module global; shards then ship only the per-video payload.

_WORKER: dict[str, object] = {}


def _worker_init(cost_model: CostModel, deposit_scope: str) -> None:
    cost_model.reset_cache_stats()
    _WORKER["cost_model"] = cost_model
    _WORKER["scheduler"] = IndividualScheduler(
        cost_model, deposit_scope=deposit_scope
    )


def _worker_solve(shard: Shard) -> tuple[list[FileSchedule], CacheStats]:
    cost_model: CostModel = _WORKER["cost_model"]  # type: ignore[assignment]
    scheduler: IndividualScheduler = _WORKER["scheduler"]  # type: ignore[assignment]
    before = cost_model.cache_stats
    out = [
        scheduler.schedule_file(video, list(requests), initial_residencies=seed)
        for video, requests, seed in shard
    ]
    return out, cost_model.cache_stats - before


class ParallelIndividualScheduler:
    """Fan ``IVSP_solve`` out across a worker pool (or run it serially).

    Args:
        cost_model: Pricing + topology + catalog; shared by every shard (the
            process backend ships a pickled copy to each worker once).
        config: Backend/worker selection; ``None`` means serial.
        deposit_scope: Forwarded to :class:`IndividualScheduler`.

    The engine is stateless between runs and safe to reuse across batches;
    pools are created per run and torn down before it returns.
    """

    def __init__(
        self,
        cost_model: CostModel,
        config: ParallelConfig | None = None,
        *,
        deposit_scope: str = "route",
    ):
        self._cm = cost_model
        self._config = config if config is not None else ParallelConfig()
        self._deposit_scope = deposit_scope
        self._serial = IndividualScheduler(cost_model, deposit_scope=deposit_scope)

    @property
    def config(self) -> ParallelConfig:
        return self._config

    def run(
        self,
        batch: RequestBatch,
        catalog: VideoCatalog | None = None,
        *,
        seeds: dict[str, tuple[ResidencyInfo, ...]] | None = None,
    ) -> Phase1Result:
        """Solve Phase 1 for ``batch`` and merge deterministically.

        Args:
            batch: The cycle's requests.
            catalog: Video lookup; defaults to the cost model's catalog.
            seeds: Optional carryover residencies per video id (rolling
                cycles); missing ids seed empty.
        """
        catalog = catalog if catalog is not None else self._cm.catalog
        seeds = seeds or {}
        work = [
            (catalog[video_id], tuple(requests), seeds.get(video_id, ()))
            for video_id, requests in batch.by_video().items()
        ]
        cfg = self._config
        workers = cfg.resolved_workers()
        if cfg.backend == "serial" or len(work) < max(cfg.min_videos, 2):
            return Phase1Result(self._run_serial(work), backend="serial")
        shards = make_shards(work, workers * cfg.chunks_per_worker)
        if cfg.backend == "thread":
            schedule = self._run_threads(shards, workers)
            return Phase1Result(schedule, backend="thread", workers=workers)
        schedule, worker_stats = self._run_processes(shards, workers)
        return Phase1Result(
            schedule, cache_stats=worker_stats, backend="process", workers=workers
        )

    # -- backends ------------------------------------------------------------

    def _run_serial(self, work: Shard) -> Schedule:
        schedule = Schedule()
        for video, requests, seed in work:
            schedule.set_file(
                self._serial.schedule_file(
                    video, list(requests), initial_residencies=seed
                )
            )
        return schedule

    def _run_threads(self, shards: list[Shard], workers: int) -> Schedule:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(self._solve_shard_local, shards))
        return _merge(shards, results)

    def _solve_shard_local(self, shard: Shard) -> list[FileSchedule]:
        return [
            self._serial.schedule_file(
                video, list(requests), initial_residencies=seed
            )
            for video, requests, seed in shard
        ]

    def _run_processes(
        self, shards: list[Shard], workers: int
    ) -> tuple[Schedule, CacheStats]:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(self._cm, self._deposit_scope),
        ) as pool:
            outcomes = list(pool.map(_worker_solve, shards))
        results = [files for files, _ in outcomes]
        stats = CacheStats()
        for _, shard_stats in outcomes:
            stats = stats + shard_stats
        return _merge(shards, results), stats


def _merge(shards: list[Shard], results: list[list[FileSchedule]]) -> Schedule:
    """Reassemble per-shard outputs in the original by-video order."""
    schedule = Schedule()
    for shard, files in zip(shards, results):
        if len(shard) != len(files):  # pragma: no cover - defensive
            raise ScheduleError(
                f"shard returned {len(files)} schedules for {len(shard)} videos"
            )
        for fs in files:
            schedule.set_file(fs)
    return schedule
