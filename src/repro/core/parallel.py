"""Parallel Phase-1 execution engine.

Individual Video Scheduling (paper Sec. 3.2) is embarrassingly parallel:
``IVSP_solve`` partitions the cycle's requests into per-video sets ``R_i``
and computes each file's schedule independently.  Each ``S_i`` is a pure
function of ``(video, sorted(R_i), seed residencies)`` against a fixed
topology + catalog, so the shards can run on any worker pool and the merged
result is **bit-identical** to the serial loop:

* shards are formed in the deterministic ``RequestBatch.by_video()`` order
  (first-request order) and merged back in that same order;
* within a shard the greedy performs exactly the serial sequence of
  floating-point operations;
* the memoized cost cache (:class:`repro.core.costmodel.CostModel`) stores
  exactly the values the uncached expressions produce, so warm or cold
  caches cannot change a single bit of any schedule.

Three backends are provided:

``serial``
    The plain loop; the default and the reference semantics.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Each shard solves
    through its own :meth:`~repro.core.costmodel.CostModel.worker_view`
    (shared memoization dictionaries, private hit/miss counters), so
    per-shard cache statistics are exact rather than interleaved.  Wins
    when a GIL-releasing cost model or free-threaded build is in play;
    otherwise it mostly demonstrates determinism.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; the cost model is
    shipped to each worker once via the pool initializer and shards return
    pickled :class:`~repro.core.schedule.FileSchedule` objects plus their
    worker-side cache statistics, metrics registry, and trace spans.  This
    is the backend that scales Phase 1 across cores.

Observability: the engine wraps every run in an ``ivsp`` span, each
per-video solve records an ``ivsp.video`` span (see
:mod:`repro.core.individual`), and worker-side metrics registries merge
back in deterministic shard order -- exactly like worker ``CacheStats``
always have.  With the default :data:`repro.obs.NULL_OBS` nothing is
recorded and schedules stay bit-identical.

Phase 2 (overflow resolution) stays serial: it is an inherently sequential
victim-selection loop over the *merged* schedule.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.catalog.video import VideoFile
from repro.core.costmodel import (
    CacheStats,
    CacheStatsDetail,
    CostModel,
    record_cache_metrics,
)
from repro.core.individual import IndividualScheduler
from repro.core.schedule import FileSchedule, ResidencyInfo, Schedule
from repro.errors import ScheduleError
from repro.obs import MetricsRegistry, NULL_OBS, Observability, SpanRecord
from repro.obs.events import JournalEvent
from repro.workload.requests import Request, RequestBatch

_log = logging.getLogger(__name__)

BACKENDS = ("serial", "thread", "process")

#: One unit of Phase-1 work: a video, its chronological requests, and the
#: carryover residencies seeding its greedy (empty outside rolling cycles).
Shard = list[tuple[VideoFile, tuple[Request, ...], tuple[ResidencyInfo, ...]]]


@dataclass(frozen=True)
class ParallelConfig:
    """How Phase 1 fans out.

    Attributes:
        backend: ``"serial"``, ``"thread"`` or ``"process"``.
        workers: Pool size; ``None`` uses ``os.cpu_count()``.
        min_videos: Batches with fewer distinct videos than this run the
            serial loop regardless of backend (pool spin-up costs more than
            it saves on tiny batches).
        chunks_per_worker: Shards are contiguous video runs; creating a few
            per worker balances load when per-video request counts are
            skewed (Zipf workloads) without drowning the pool in tasks.
    """

    backend: str = "serial"
    workers: int | None = None
    min_videos: int = 2
    chunks_per_worker: int = 4

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ScheduleError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {self.workers}")
        if self.min_videos < 0:
            raise ScheduleError(f"min_videos must be >= 0, got {self.min_videos}")
        if self.chunks_per_worker < 1:
            raise ScheduleError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )

    def resolved_workers(self) -> int:
        """The concrete pool size this config asks for."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1


@dataclass(frozen=True)
class Phase1Result:
    """Outcome of one Phase-1 fan-out."""

    schedule: Schedule
    #: Cost-cache activity attributable to this run, whichever backend ran
    #: it: the caller-model delta for serial runs, the exact sum of
    #: per-shard worker counters for thread/process runs.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    backend: str = "serial"
    workers: int = 1
    #: Per-cache (Ψ_C vs Ψ_D) breakdown of :attr:`cache_stats`.
    detail: CacheStatsDetail = field(default_factory=CacheStatsDetail)
    #: Per-shard combined hit/miss counters in shard order (one entry for
    #: the whole batch on the serial path), so parallel runs report
    #: per-worker breakdowns rather than just totals.
    shard_stats: tuple[CacheStats, ...] = ()


def make_shards(
    work: list[tuple[VideoFile, tuple[Request, ...], tuple[ResidencyInfo, ...]]],
    n_shards: int,
) -> list[Shard]:
    """Split the per-video work list into ``n_shards`` contiguous runs.

    Deterministic: depends only on the input order and ``n_shards``.  Sizes
    differ by at most one (the first ``len(work) % n_shards`` shards get the
    extra item), and no shard is empty.
    """
    if n_shards < 1:
        raise ScheduleError(f"n_shards must be >= 1, got {n_shards}")
    n = len(work)
    if n == 0:
        return []
    n_shards = min(n_shards, n)
    base, extra = divmod(n, n_shards)
    shards: list[Shard] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(work[start : start + size])
        start += size
    return shards


# -- process-backend worker plumbing ----------------------------------------
#
# Worker processes receive the cost model once (pool initializer) and keep
# it in a module global; shards then ship only the per-video payload and
# return their schedules plus worker-side telemetry.

_WORKER: dict[str, object] = {}


def _worker_init(
    cost_model: CostModel,
    deposit_scope: str,
    obs_enabled: bool,
    journal_enabled: bool = False,
) -> None:
    cost_model.reset_cache_stats()
    _WORKER["cost_model"] = cost_model
    _WORKER["deposit_scope"] = deposit_scope
    _WORKER["obs_enabled"] = obs_enabled
    _WORKER["journal_enabled"] = journal_enabled


def _worker_solve(
    shard: Shard,
) -> tuple[
    list[FileSchedule],
    CacheStatsDetail,
    MetricsRegistry | None,
    tuple[SpanRecord, ...],
    tuple[JournalEvent, ...],
]:
    cost_model: CostModel = _WORKER["cost_model"]  # type: ignore[assignment]
    child = (
        Observability.on(journal=bool(_WORKER.get("journal_enabled")))
        if _WORKER["obs_enabled"]
        else NULL_OBS
    )
    scheduler = IndividualScheduler(
        cost_model,
        deposit_scope=_WORKER["deposit_scope"],  # type: ignore[arg-type]
        obs=child,
    )
    before = cost_model.cache_stats_detail
    out = [
        scheduler.schedule_file(video, list(requests), initial_residencies=seed)
        for video, requests, seed in shard
    ]
    detail = cost_model.cache_stats_detail - before
    registry = child.metrics if child.enabled else None
    return (  # type: ignore[return-value]
        out,
        detail,
        registry,
        child.tracer.records,
        child.journal.events,
    )


class ParallelIndividualScheduler:
    """Fan ``IVSP_solve`` out across a worker pool (or run it serially).

    Args:
        cost_model: Pricing + topology + catalog; shared by every shard (the
            process backend ships a pickled copy to each worker once).
        config: Backend/worker selection; ``None`` means serial.
        deposit_scope: Forwarded to :class:`IndividualScheduler`.
        obs: Observability handle; worker-side metrics and spans merge into
            it in deterministic shard order.  Defaults to the inert
            :data:`repro.obs.NULL_OBS`.

    The engine is stateless between runs and safe to reuse across batches;
    pools are created per run and torn down before it returns.
    """

    def __init__(
        self,
        cost_model: CostModel,
        config: ParallelConfig | None = None,
        *,
        deposit_scope: str = "route",
        obs: Observability | None = None,
    ):
        self._cm = cost_model
        self._config = config if config is not None else ParallelConfig()
        self._deposit_scope = deposit_scope
        self._obs = obs if obs is not None else NULL_OBS
        self._serial = IndividualScheduler(
            cost_model, deposit_scope=deposit_scope, obs=self._obs
        )

    @property
    def config(self) -> ParallelConfig:
        return self._config

    def run(
        self,
        batch: RequestBatch,
        catalog: VideoCatalog | None = None,
        *,
        seeds: dict[str, tuple[ResidencyInfo, ...]] | None = None,
    ) -> Phase1Result:
        """Solve Phase 1 for ``batch`` and merge deterministically.

        Args:
            batch: The cycle's requests.
            catalog: Video lookup; defaults to the cost model's catalog.
            seeds: Optional carryover residencies per video id (rolling
                cycles); missing ids seed empty.
        """
        catalog = catalog if catalog is not None else self._cm.catalog
        seeds = seeds or {}
        work = [
            (catalog[video_id], tuple(requests), seeds.get(video_id, ()))
            for video_id, requests in batch.by_video().items()
        ]
        cfg = self._config
        workers = cfg.resolved_workers()
        with self._obs.tracer.span(
            "ivsp", videos=len(work), requests=len(batch)
        ) as span:
            if cfg.backend == "serial" or len(work) < max(cfg.min_videos, 2):
                before = self._cm.cache_stats_detail
                schedule = self._run_serial(work)
                detail = self._cm.cache_stats_detail - before
                result = Phase1Result(
                    schedule,
                    cache_stats=detail.combined,
                    backend="serial",
                    detail=detail,
                    shard_stats=(detail.combined,) if work else (),
                )
                span.set(backend="serial", shards=len(result.shard_stats))
            else:
                shards = make_shards(work, workers * cfg.chunks_per_worker)
                _log.debug(
                    "phase-1 fan-out: %d videos over %d %s shard(s), %d workers",
                    len(work), len(shards), cfg.backend, workers,
                )
                if cfg.backend == "thread":
                    schedule, detail, shard_stats = self._run_threads(
                        shards, workers
                    )
                else:
                    schedule, detail, shard_stats = self._run_processes(
                        shards, workers
                    )
                result = Phase1Result(
                    schedule,
                    cache_stats=detail.combined,
                    backend=cfg.backend,
                    workers=workers,
                    detail=detail,
                    shard_stats=shard_stats,
                )
                span.set(backend=cfg.backend, shards=len(shards))
        metrics = self._obs.metrics
        if metrics.enabled:
            record_cache_metrics(metrics, result.detail, phase="ivsp")
            metrics.counter(
                "vor_phase1_runs_total",
                help="Phase-1 fan-outs by executing backend",
                deterministic=False,
                backend=result.backend,
            ).inc()
            metrics.counter(
                "vor_phase1_shards_total",
                help="Phase-1 work shards by executing backend",
                deterministic=False,
                backend=result.backend,
            ).inc(len(result.shard_stats))
        return result

    # -- backends ------------------------------------------------------------

    def _run_serial(self, work: Shard) -> Schedule:
        schedule = Schedule()
        for video, requests, seed in work:
            schedule.set_file(
                self._serial.schedule_file(
                    video, list(requests), initial_residencies=seed
                )
            )
        return schedule

    def _run_threads(
        self, shards: list[Shard], workers: int
    ) -> tuple[Schedule, CacheStatsDetail, tuple[CacheStats, ...]]:
        # One cost-model view + observability child per shard: shared
        # memoization caches, private counters/spans, so per-shard stats
        # are exact and merge order is the deterministic shard order.
        views = [self._cm.worker_view() for _ in shards]
        children = [self._obs.child() for _ in shards]
        schedulers = [
            IndividualScheduler(
                view, deposit_scope=self._deposit_scope, obs=child
            )
            for view, child in zip(views, children)
        ]

        def solve(indexed: tuple[int, Shard]) -> list[FileSchedule]:
            i, shard = indexed
            return [
                schedulers[i].schedule_file(
                    video, list(requests), initial_residencies=seed
                )
                for video, requests, seed in shard
            ]

        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(solve, enumerate(shards)))
        details = [view.cache_stats_detail for view in views]
        for child in children:
            self._obs.absorb(child, parent="ivsp")
        total = CacheStatsDetail()
        for d in details:
            total = total + d
        return (
            _merge(shards, results),
            total,
            tuple(d.combined for d in details),
        )

    def _run_processes(
        self, shards: list[Shard], workers: int
    ) -> tuple[Schedule, CacheStatsDetail, tuple[CacheStats, ...]]:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(
                self._cm,
                self._deposit_scope,
                self._obs.enabled,
                self._obs.journal.enabled,
            ),
        ) as pool:
            outcomes = list(pool.map(_worker_solve, shards))
        results = [files for files, _, _, _, _ in outcomes]
        total = CacheStatsDetail()
        shard_stats = []
        for _, detail, registry, spans, events in outcomes:
            total = total + detail
            shard_stats.append(detail.combined)
            if registry is not None:
                self._obs.metrics.merge(registry)
            self._obs.tracer.absorb(spans, parent="ivsp")
            self._obs.journal.absorb(events)
        return _merge(shards, results), total, tuple(shard_stats)


def _merge(shards: list[Shard], results: list[list[FileSchedule]]) -> Schedule:
    """Reassemble per-shard outputs in the original by-video order."""
    schedule = Schedule()
    for shard, files in zip(shards, results):
        if len(shard) != len(files):  # pragma: no cover - defensive
            raise ScheduleError(
                f"shard returned {len(files)} schedules for {len(shard)} videos"
            )
        for fs in files:
            schedule.set_file(fs)
    return schedule
