"""Storage overflow detection (paper Sec. 4.1).

When the independently computed per-file schedules are integrated, an
intermediate storage can be over-committed during some time intervals.  An
overflow ``OF_{Δt, IS_j}`` is identified by its location and the maximal
interval during which the summed reserved space (Eq. 6 profiles of all
residencies at ``IS_j``) exceeds the storage's capacity.
``OverflowSet(IS_j, Δt)`` is the set of residencies involved -- those whose
profile is positive somewhere inside the interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.core.schedule import ResidencyInfo, Schedule
from repro.core.spacefunc import UsageTimeline
from repro.topology.graph import Topology


@dataclass(frozen=True)
class OverflowSituation:
    """One ``OF_{Δt, IS_j}`` with its overflow set.

    Attributes:
        location: The over-committed storage ``IS_j``.
        interval: Maximal ``(t_start, t_end)`` with usage > capacity.
        members: Residencies occupying space inside the interval
            (``OverflowSet(IS_j, Δt)``).
        peak_usage: Maximum summed reserved space during the interval.
        capacity: The storage's capacity (for excess reporting).
        excess_spacetime: Integral of ``usage - capacity`` over the interval.
    """

    location: str
    interval: tuple[float, float]
    members: tuple[ResidencyInfo, ...]
    peak_usage: float
    capacity: float
    excess_spacetime: float

    @property
    def duration(self) -> float:
        return self.interval[1] - self.interval[0]

    @property
    def peak_excess(self) -> float:
        return self.peak_usage - self.capacity

    def journal_attrs(self) -> dict:
        """Attribute dict for an ``overflowed`` journal event."""
        return {
            "location": self.location,
            "interval": self.interval,
            "members": len(self.members),
            "videos": tuple(sorted({c.video_id for c in self.members})),
            "peak_usage": self.peak_usage,
            "capacity": self.capacity,
            "excess": self.excess_spacetime,
        }


def storage_usage(
    schedule: Schedule, catalog: VideoCatalog, location: str
) -> UsageTimeline:
    """Summed reserved-space timeline of all residencies at ``location``."""
    profiles = [
        c.profile(catalog[c.video_id]) for c in schedule.residencies_at(location)
    ]
    return UsageTimeline(profiles)


def detect_overflows(
    schedule: Schedule,
    catalog: VideoCatalog,
    topology: Topology,
    *,
    background=None,
) -> list[OverflowSituation]:
    """All storage overflow situations in an integrated schedule.

    Returns one :class:`OverflowSituation` per maximal violation interval per
    storage, ordered by (location, interval start).

    ``background`` is an optional ``{location: [SpaceProfile, ...]}`` of
    space committed outside this schedule (e.g. residency tails carried over
    from the previous scheduling cycle).  Background usage counts toward
    capacity but is never part of an overflow set -- only the schedule's own
    residencies can be victimized.
    """
    overflows: list[OverflowSituation] = []
    residencies_by_loc: dict[str, list[ResidencyInfo]] = {}
    for c in schedule.residencies:
        residencies_by_loc.setdefault(c.location, []).append(c)
    background = background or {}
    for spec in topology.storages:
        residencies = residencies_by_loc.get(spec.name)
        if not residencies:
            continue
        profiles = [c.profile(catalog[c.video_id]) for c in residencies]
        profiles.extend(background.get(spec.name, ()))
        timeline = UsageTimeline(profiles)
        if timeline.peak <= spec.capacity:
            continue
        for (t0, t1) in timeline.intervals_above(spec.capacity):
            members = tuple(
                c
                for c in residencies
                if c.profile(catalog[c.video_id]).positive_in(t0, t1)
            )
            overflows.append(
                OverflowSituation(
                    location=spec.name,
                    interval=(t0, t1),
                    members=members,
                    peak_usage=timeline.max_over(t0, t1),
                    capacity=spec.capacity,
                    excess_spacetime=_excess_between(timeline, spec.capacity, t0, t1),
                )
            )
    overflows.sort(key=lambda o: (o.location, o.interval))
    return overflows


def total_excess(schedule: Schedule, catalog: VideoCatalog, topology: Topology) -> float:
    """Summed over-capacity space-time across all storages.

    SORP's monotone progress measure: zero iff the schedule is feasible.
    """
    total = 0.0
    for spec in topology.storages:
        timeline = storage_usage(schedule, catalog, spec.name)
        total += timeline.integral_above(spec.capacity)
    return total


def _excess_between(
    timeline: UsageTimeline, capacity: float, t0: float, t1: float
) -> float:
    """Excess space-time restricted to ``[t0, t1]``.

    The violation intervals already bound where usage exceeds capacity, so
    integrating the global excess function restricted to the interval equals
    integrating within it.
    """
    # Reuse integral_above on a window by clipping: build from the window's
    # contribution only.  UsageTimeline has no native windowed integral of the
    # excess, but the global integral_above over a maximal violation interval
    # is additive across disjoint intervals; compute via trapezoid on the
    # window grid.
    if timeline.is_empty or t1 <= t0:
        return 0.0
    grid = [t0] + [float(t) for t in timeline.grid if t0 < t < t1] + [t1]
    total = 0.0
    for a, b in zip(grid, grid[1:]):
        ya = max(timeline.value(a) - capacity, 0.0)
        yb = max(timeline.value_left(b) - capacity, 0.0)
        total += 0.5 * (ya + yb) * (b - a)
    return total
