"""Phase 2: Storage Overflow Resolution (paper Sec. 4.3, Table 3).

``SORP_solve`` iterates until the integrated schedule is capacity-feasible:
detect every overflow situation, price the rescheduling of every member
residency's file with the rejective greedy, pick the member with the largest
*heat* as the victim, commit its new file schedule, and re-detect.

Termination: the rejective greedy (a) never lets the victim occupy the
overflowing ``(Δt, IS_j)`` and (b) only places residencies that fit in the
currently available space, so each commit strictly reduces the total
over-capacity space-time and never creates a new overflow.  A generous
iteration cap guards against pathological numerical edge cases.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

from repro.core.costmodel import CacheStats, CostModel, record_cache_metrics
from repro.core.heat import HeatMetric, compute_heat
from repro.core.overflow import OverflowSituation, detect_overflows
from repro.core.rejective import RejectiveGreedyScheduler
from repro.core.schedule import FileSchedule, Schedule
from repro.errors import OverflowResolutionError
from repro.obs import DOLLAR_BUCKETS, NULL_OBS, Observability
from repro.workload.requests import RequestBatch

_log = logging.getLogger(__name__)


@dataclass
class VictimRecord:
    """One committed reschedule: who was evicted from where, at what cost."""

    video_id: str
    location: str
    interval: tuple[float, float]
    heat: float
    overhead_cost: float


@dataclass
class ResolutionStats:
    """Summary of one SORP run (feeds the Sec. 5.5 statistics)."""

    iterations: int = 0
    initial_overflows: int = 0
    victims: list[VictimRecord] = field(default_factory=list)
    phase1_cost: float = 0.0
    resolved_cost: float = 0.0
    #: Cost-cache activity during resolution.  Excluded from equality so
    #: that determinism checks compare the *decisions*, not the cache
    #: temperature they were computed under.
    cache_stats: CacheStats = field(default_factory=CacheStats, compare=False)

    @property
    def had_overflow(self) -> bool:
        return self.initial_overflows > 0

    @property
    def cost_increase(self) -> float:
        """Absolute cost added by overflow resolution."""
        return self.resolved_cost - self.phase1_cost

    @property
    def cost_increase_ratio(self) -> float:
        """``(Ψ(S_SORP) - Ψ(S)) / Ψ(S)`` as reported in Sec. 5.5."""
        if self.phase1_cost == 0.0:
            return 0.0
        return self.cost_increase / self.phase1_cost


def resolve_overflows(
    schedule: Schedule,
    batch: RequestBatch,
    cost_model: CostModel,
    *,
    metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
    max_iterations: int | None = None,
    background=None,
    committed=None,
    obs: Observability | None = None,
) -> tuple[Schedule, ResolutionStats]:
    """Run ``SORP_solve`` on an integrated Phase-1 schedule.

    Args:
        schedule: The integrated per-file schedules (not mutated).
        batch: The cycle's requests (needed to rebuild victims' schedules).
        cost_model: Pricing + topology + catalog.
        metric: Victim-selection heat metric (the paper's best default is
            method 4, ``ΔS / overhead``).
        max_iterations: Safety cap; defaults to ``10 * #residencies + 100``.
        background: Optional ``{location: [SpaceProfile, ...]}`` of space
            committed outside this schedule (rolling cycles); counts toward
            capacity, never victimized.
        committed: Optional ``{video_id: (ResidencyInfo, ...)}`` of carryover
            residencies a victim rebuild must retain (rolling cycles).
        obs: Observability handle; when live, the run records a ``sorp``
            span, one ``sorp.round`` span per iteration, ``overflow``
            spans around each detection sweep, and victim/iteration
            counters.  Defaults to the inert :data:`repro.obs.NULL_OBS`.

    Returns:
        ``(feasible_schedule, stats)``.  The input schedule is left intact.

    Raises:
        OverflowResolutionError: If the cap is hit (should not occur; see
            the termination argument in the module docstring).
    """
    catalog = cost_model.catalog
    topology = cost_model.topology
    obs = obs if obs is not None else NULL_OBS
    working = schedule.copy()
    cache_base = cost_model.cache_stats_detail
    stats = ResolutionStats(phase1_cost=cost_model.total(working))
    cap = (
        max_iterations
        if max_iterations is not None
        else 10 * max(len(working.residencies), 1) + 100
    )
    rejective = RejectiveGreedyScheduler(cost_model)
    requests_by_video = batch.by_video()
    committed = committed or {}

    with obs.tracer.span("sorp", residencies=len(working.residencies)) as sorp_span:
        with obs.tracer.span("overflow") as detect_span:
            overflows = detect_overflows(
                working, catalog, topology, background=background
            )
            detect_span.set(overflows=len(overflows))
        stats.initial_overflows = len(overflows)
        if obs.journal.enabled:
            for of in overflows:
                obs.journal.emit("overflowed", **of.journal_attrs())
        if overflows:
            _log.debug(
                "SORP: %d initial overflow situation(s) to resolve",
                len(overflows),
            )

        while overflows:
            stats.iterations += 1
            if stats.iterations > cap:
                raise OverflowResolutionError(
                    f"storage overflow unresolved after {cap} iterations "
                    f"({len(overflows)} overflow(s) remain)"
                )
            with obs.tracer.span(
                "sorp.round", iteration=stats.iterations, overflows=len(overflows)
            ) as round_span:
                victim = _select_victim(
                    overflows,
                    working,
                    cost_model,
                    rejective,
                    requests_by_video,
                    metric,
                    background,
                    committed,
                )
                if victim is None:
                    raise OverflowResolutionError(
                        "no reschedulable member in any overflow set"
                    )
                heat, overhead, overflow, new_fs = victim
                working.set_file(new_fs)
                stats.victims.append(
                    VictimRecord(
                        video_id=new_fs.video_id,
                        location=overflow.location,
                        interval=overflow.interval,
                        heat=heat,
                        overhead_cost=overhead,
                    )
                )
                round_span.set(
                    victim=new_fs.video_id, location=overflow.location
                )
                obs.journal.emit(
                    "sorp-placed",
                    video_id=new_fs.video_id,
                    location=overflow.location,
                    interval=overflow.interval,
                    heat=heat,
                    overhead=overhead,
                )
                with obs.tracer.span("overflow") as detect_span:
                    overflows = detect_overflows(
                        working, catalog, topology, background=background
                    )
                    detect_span.set(overflows=len(overflows))

        stats.resolved_cost = cost_model.total(working)
        detail = cost_model.cache_stats_detail - cache_base
        stats.cache_stats = detail.combined
        sorp_span.set(iterations=stats.iterations, victims=len(stats.victims))

    metrics = obs.metrics
    if metrics.enabled:
        record_cache_metrics(metrics, detail, phase="sorp")
        metrics.counter(
            "vor_sorp_iterations_total",
            help="SORP victim-selection rounds",
        ).inc(stats.iterations)
        metrics.counter(
            "vor_overflow_situations_total",
            help="Overflow situations detected on the integrated schedule",
        ).inc(stats.initial_overflows)
        overhead_hist = metrics.histogram(
            "vor_sorp_victim_overhead_dollars",
            boundaries=DOLLAR_BUCKETS,
            help="Cost overhead per committed SORP victim reschedule",
        )
        for record in stats.victims:
            overhead_hist.observe(record.overhead_cost)
    if stats.iterations:
        _log.info(
            "SORP resolved %d overflow(s) in %d round(s), cost +%.2f%%",
            stats.initial_overflows,
            stats.iterations,
            100 * stats.cost_increase_ratio,
        )
    return working, stats


def _select_victim(
    overflows: list[OverflowSituation],
    working: Schedule,
    cost_model: CostModel,
    rejective: RejectiveGreedyScheduler,
    requests_by_video: dict,
    metric: HeatMetric,
    background,
    committed: dict,
) -> tuple[float, float, OverflowSituation, FileSchedule] | None:
    """Price every (overflow, member) reschedule and return the hottest.

    Ties break toward the lower overhead, then lexicographic video id, so
    runs are fully deterministic.
    """
    catalog = cost_model.catalog
    best_key: tuple[float, float, str] | None = None
    best: tuple[float, float, OverflowSituation, FileSchedule] | None = None
    # the incumbent file cost is per-video, not per-(overflow, member):
    # evaluate it once per candidate video in this selection round
    old_costs: dict[str, float] = {}
    for of in overflows:
        for c in of.members:
            video = catalog[c.video_id]
            requests = requests_by_video.get(c.video_id)
            if not requests:
                continue  # e.g. a pure-carryover file: cannot be victimized
            seeds = committed.get(c.video_id, ())
            if any(
                s.location == c.location
                and s.t_start == c.t_start
                and s.t_last >= c.t_last
                for s in seeds
            ):
                continue  # this residency IS the committed carryover itself
            new_fs = rejective.reschedule(
                video,
                requests,
                working,
                forbidden=[(of.location, of.interval)],
                background=background,
                initial_residencies=tuple(seeds),
            )
            old_cost = old_costs.get(c.video_id)
            if old_cost is None:
                old_cost = cost_model.file_cost(working.file(c.video_id)).total
                old_costs[c.video_id] = old_cost
            new_cost = cost_model.file_cost(new_fs).total
            overhead = new_cost - old_cost
            heat = compute_heat(metric, c, video, of, overhead)
            if math.isnan(heat):  # pragma: no cover - defensive
                continue
            key = (heat, -overhead, c.video_id)
            if best_key is None or _key_greater(key, best_key):
                best_key = key
                best = (heat, overhead, of, new_fs)
    return best


def _key_greater(a: tuple[float, float, str], b: tuple[float, float, str]) -> bool:
    """Lexicographic 'greater' with the video-id component compared *less*.

    Heat and negated overhead are maximized; the id tie-break prefers the
    lexicographically smallest id for determinism.
    """
    if a[0] != b[0]:
        return a[0] > b[0]
    if a[1] != b[1]:
        return a[1] > b[1]
    return a[2] < b[2]
