"""Heat metrics for victim selection (paper Sec. 4.3, Eqs. 8-11).

Rescheduling a file ``id_i`` out of an overflow ``OF_{Δt, IS_j}`` has a
*cost* -- the overhead ``Ψ(S_i^new) - Ψ(S_i)`` -- and a *benefit* -- how much
it improves the overflow.  *Heat* combines them; the file with the largest
heat is rescheduled first.  Four metrics are compared in the paper:

=======  ==========================  =================================
Method   Formula                     Interpretation
=======  ==========================  =================================
1        ``χ``            (Eq. 8)    length of the improved period
2        ``χ / overhead`` (Eq. 9)    improved time per dollar
3        ``ΔS``           (Eq. 10)   freed space-time (Eq. 5 integral)
4        ``ΔS / overhead``(Eq. 11)   freed space-time per dollar
=======  ==========================  =================================

with ``χ = min(t_f^OF, t_f^c + P_i) - max(t_s^OF, t_s^c)`` and ``ΔS`` the
integral of the residency's Eq. 6 profile over the overlapped overflow
window.  The paper reports methods 2 and 4 winning in 98 % of cases, with 4
best on average (Table 5).

A reschedule whose overhead is non-positive (the rejective greedy found a
*cheaper* schedule, possible because Phase 1 is heuristic) gets infinite
heat under the per-cost metrics: it is a free improvement.
"""

from __future__ import annotations

import enum
import math

from repro.catalog.video import VideoFile
from repro.core.overflow import OverflowSituation
from repro.core.schedule import ResidencyInfo
from repro.core.spacefunc import delta_space
from repro.errors import ScheduleError

#: Overheads below this (in $) count as "free" rescheduling.
_FREE_OVERHEAD = 1e-12


class HeatMetric(enum.Enum):
    """The four victim-selection criteria of Sec. 4.3."""

    TIME = 1  # Eq. 8
    TIME_PER_COST = 2  # Eq. 9
    SPACE_TIME = 3  # Eq. 10
    SPACE_TIME_PER_COST = 4  # Eq. 11


def improved_period(
    residency: ResidencyInfo,
    video: VideoFile,
    overflow: OverflowSituation,
) -> float:
    """``χ`` (Eq. 8): length of the overflow period a reschedule improves."""
    if residency.video_id != video.video_id:
        raise ScheduleError("residency/video mismatch in improved_period")
    t_s, t_f = overflow.interval
    lo = max(t_s, residency.t_start)
    hi = min(t_f, residency.t_last + video.playback)
    return max(hi - lo, 0.0)


def space_time_improvement(
    residency: ResidencyInfo,
    video: VideoFile,
    overflow: OverflowSituation,
) -> float:
    """``ΔS`` (Eq. 5): freed amortized space-time inside the overflow."""
    if residency.video_id != video.video_id:
        raise ScheduleError("residency/video mismatch in space_time_improvement")
    profile = residency.profile(video)
    t_s, t_f = overflow.interval
    return delta_space(profile, t_s, t_f)


def compute_heat(
    metric: HeatMetric,
    residency: ResidencyInfo,
    video: VideoFile,
    overflow: OverflowSituation,
    overhead_cost: float,
) -> float:
    """Heat of rescheduling ``residency``'s file w.r.t. ``overflow``.

    Args:
        metric: Which of the four criteria to apply.
        residency: The member residency ``c_i`` under consideration.
        video: Its video (for playback length / size).
        overflow: The overflow situation being resolved.
        overhead_cost: ``Ψ(S_i^new(Δt, IS_j)) - Ψ(S_i)``.

    Returns:
        The heat value; larger is better.  ``+inf`` when a per-cost metric
        meets a non-positive overhead (free improvement).
    """
    if metric is HeatMetric.TIME:
        return improved_period(residency, video, overflow)
    if metric is HeatMetric.SPACE_TIME:
        return space_time_improvement(residency, video, overflow)
    if metric is HeatMetric.TIME_PER_COST:
        benefit = improved_period(residency, video, overflow)
    elif metric is HeatMetric.SPACE_TIME_PER_COST:
        benefit = space_time_improvement(residency, video, overflow)
    else:  # pragma: no cover - exhaustive enum
        raise ScheduleError(f"unknown heat metric {metric!r}")
    if overhead_cost <= _FREE_OVERHEAD:
        return math.inf
    return benefit / overhead_cost
