"""Replica placement: which warehouses hold a permanent copy of each video.

The paper's VOR model keeps every title at one video warehouse; scaling and
survivability both call for *replicated* warehouses (cf. Viennot et al.,
*Scalable Distributed Video-on-Demand*).  A :class:`ReplicaMap` assigns each
video its set of **home warehouses** -- the nodes the Phase-1 greedy may
serve it from for the flat Eq. 4 transfer price.  Schedulers treat a missing
map (``replicas=None``) as "every warehouse holds everything", which on a
single-warehouse topology is exactly the paper's model.

Two placement policies ship with the map:

* :meth:`ReplicaMap.full_copy` -- every video homed at every warehouse, the
  simplest survivable configuration;
* :meth:`ReplicaMap.heat_placement` -- heat-driven placement: hot titles
  (by request count) are replicated widely, cold ones live at the
  ``degree`` warehouses cheapest to reach from their requesters.  Seeded
  and deterministic, so placements replay bit-identically.

Maps are plain data: they serialize to JSON (format-versioned like
:class:`~repro.faults.plan.FaultPlan`), reload to an equal object, and
survive pickling into process-pool workers unchanged.
"""

from __future__ import annotations

import json
import math
import pathlib
import random
from collections.abc import Iterable, Mapping

from repro.catalog.catalog import VideoCatalog
from repro.errors import ReplicationError
from repro.topology.graph import Topology
from repro.topology.routing import Router
from repro.workload.requests import RequestBatch

_FORMAT_VERSION = 1


class ReplicaMap:
    """Immutable assignment of each video to its home-warehouse set.

    Args:
        homes: Mapping of video id to an iterable of warehouse names.  Home
            sets are deduplicated and kept in sorted order, so two maps with
            the same assignments compare equal regardless of construction
            order.  Empty home sets are allowed (they arise when every home
            of a video fails, see :meth:`restricted_to`) but are rejected by
            :meth:`validate` on healthy topologies.
        name: Optional human-readable label carried through serialization.
        seed: The seed a generating policy drew from, if any.
    """

    def __init__(
        self,
        homes: Mapping[str, Iterable[str]],
        *,
        name: str = "",
        seed: int | None = None,
    ):
        table: dict[str, tuple[str, ...]] = {}
        for video_id, names in homes.items():
            if not isinstance(video_id, str) or not video_id:
                raise ReplicationError(f"invalid video id {video_id!r}")
            home_list = tuple(sorted(set(names)))
            if any(not isinstance(h, str) or not h for h in home_list):
                raise ReplicationError(
                    f"invalid home set {home_list!r} for video {video_id!r}"
                )
            table[video_id] = home_list
        self._homes = table
        self.name = name
        self.seed = seed

    # -- mapping access ------------------------------------------------------

    def homes(self, video_id: str) -> tuple[str, ...]:
        """Home warehouses of ``video_id`` (sorted; may be empty after
        :meth:`restricted_to`).  Raises on videos the map does not cover."""
        try:
            return self._homes[video_id]
        except KeyError:
            raise ReplicationError(
                f"no replica assignment for video {video_id!r}"
            ) from None

    def degree(self, video_id: str) -> int:
        return len(self.homes(video_id))

    @property
    def video_ids(self) -> list[str]:
        return sorted(self._homes)

    @property
    def warehouses(self) -> frozenset[str]:
        """Every warehouse referenced by some home set."""
        return frozenset(h for hs in self._homes.values() for h in hs)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._homes

    def __len__(self) -> int:
        return len(self._homes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ReplicaMap):
            return NotImplemented
        return self._homes == other._homes

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._homes.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        degrees = sorted(len(h) for h in self._homes.values())
        span = f"{degrees[0]}-{degrees[-1]}" if degrees else "0"
        return f"ReplicaMap({len(self)} videos, degree {span})"

    # -- derivation ----------------------------------------------------------

    def restricted_to(self, surviving: Iterable[str]) -> "ReplicaMap":
        """The map with every home outside ``surviving`` removed.

        Used by contingency re-scheduling: after a warehouse loss the
        surviving replica set is exactly this map restricted to the masked
        topology's nodes.  Videos whose every home failed keep an *empty*
        home set -- their requests are unservable and must be classified
        lost before scheduling.
        """
        alive = frozenset(surviving)
        return ReplicaMap(
            {
                video_id: tuple(h for h in hs if h in alive)
                for video_id, hs in self._homes.items()
            },
            name=self.name,
            seed=self.seed,
        )

    def validate(self, topology: Topology, catalog: VideoCatalog | None = None) -> None:
        """Raise :class:`~repro.errors.ReplicationError` on a bad placement.

        Checks that every home names a warehouse of ``topology`` and every
        video keeps at least one home; with ``catalog`` the map must cover
        exactly the catalog's videos.
        """
        warehouse_names = {w.name for w in topology.warehouses}
        for video_id, hs in sorted(self._homes.items()):
            if not hs:
                raise ReplicationError(
                    f"video {video_id!r} has no home warehouse"
                )
            for h in hs:
                if h not in topology:
                    raise ReplicationError(
                        f"video {video_id!r} homed at unknown node {h!r}"
                    )
                if h not in warehouse_names:
                    raise ReplicationError(
                        f"video {video_id!r} homed at {h!r}, which is not a "
                        "warehouse"
                    )
        if catalog is not None:
            missing = sorted(set(catalog.ids) - set(self._homes))
            if missing:
                raise ReplicationError(
                    f"replica map misses catalog video(s): {missing[:5]}"
                )
            extra = sorted(set(self._homes) - set(catalog.ids))
            if extra:
                raise ReplicationError(
                    f"replica map names unknown video(s): {extra[:5]}"
                )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        doc = {
            "format_version": _FORMAT_VERSION,
            "name": self.name,
            "homes": {v: list(hs) for v, hs in sorted(self._homes.items())},
        }
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicaMap":
        version = data.get("format_version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise ReplicationError(
                f"unsupported replica-map format version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        homes = data.get("homes")
        if not isinstance(homes, dict):
            raise ReplicationError("malformed replica map document: no homes")
        seed = data.get("seed")
        return cls(
            homes,
            name=str(data.get("name", "")),
            seed=int(seed) if seed is not None else None,
        )

    def save(self, path) -> None:
        """Write the map as pretty-printed JSON."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "ReplicaMap":
        """Read a map written by :meth:`save` (raises on malformed input)."""
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReplicationError(f"cannot read replica map {path}: {exc}") from exc
        return cls.from_dict(doc)

    # -- placement policies --------------------------------------------------

    @classmethod
    def full_copy(cls, topology: Topology, catalog: VideoCatalog) -> "ReplicaMap":
        """Every video homed at every warehouse (maximal survivability)."""
        warehouses = tuple(sorted(w.name for w in topology.warehouses))
        if not warehouses:
            raise ReplicationError("topology has no warehouse to replicate to")
        return cls(
            {video.video_id: warehouses for video in catalog},
            name="full-copy",
        )

    @classmethod
    def heat_placement(
        cls,
        topology: Topology,
        catalog: VideoCatalog,
        batch: RequestBatch | None = None,
        *,
        degree: int = 1,
        hot_fraction: float = 0.25,
        hot_degree: int | None = None,
        seed: int = 0,
    ) -> "ReplicaMap":
        """Heat-driven placement: replicate hot titles widely, cold narrowly.

        Videos are ranked by request count in ``batch`` (sorted-id
        tie-break); the top ``hot_fraction`` get ``hot_degree`` homes
        (default: every warehouse), the rest ``degree``.  A requested
        video's homes are the warehouses with the cheapest mean route rate
        to its requesters' local storages; unrequested videos are assigned
        round-robin from a seeded offset, so the same arguments always
        yield an equal map.
        """
        warehouses = sorted(w.name for w in topology.warehouses)
        if not warehouses:
            raise ReplicationError("topology has no warehouse to replicate to")
        if degree < 1:
            raise ReplicationError(f"degree must be >= 1, got {degree}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ReplicationError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}"
            )
        hot_k = len(warehouses) if hot_degree is None else hot_degree
        if hot_k < 1:
            raise ReplicationError(f"hot_degree must be >= 1, got {hot_degree}")
        degree = min(degree, len(warehouses))
        hot_k = min(hot_k, len(warehouses))

        by_video: dict[str, list] = batch.by_video() if batch is not None else {}
        ids = sorted(v.video_id for v in catalog)
        ranked = sorted(ids, key=lambda v: (-len(by_video.get(v, ())), v))
        n_hot = math.ceil(hot_fraction * len(ranked)) if ranked else 0
        hot = set(ranked[:n_hot])

        router = Router(topology)
        rng = random.Random(seed)
        homes: dict[str, tuple[str, ...]] = {}
        for video_id in ids:
            k = hot_k if video_id in hot else degree
            requesters = by_video.get(video_id)
            if requesters:
                destinations = sorted({r.local_storage for r in requesters})
                ordered = sorted(
                    warehouses,
                    key=lambda w: (
                        math.fsum(
                            router.route(w, dst).rate for dst in destinations
                        )
                        / len(destinations),
                        w,
                    ),
                )
            else:
                offset = rng.randrange(len(warehouses))
                ordered = (
                    warehouses[offset:] + warehouses[:offset]
                )
            homes[video_id] = tuple(ordered[:k])
        return cls(homes, name=f"heat-degree{degree}", seed=seed)


__all__ = ["ReplicaMap"]
