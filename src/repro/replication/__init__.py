"""Replica placement for multi-warehouse VOR (see :mod:`.replica`)."""

from repro.replication.replica import ReplicaMap

__all__ = ["ReplicaMap"]
