"""Per-user cost allocation ("how much does the user have to pay?").

The paper's introduction singles out pricing -- "Development of optimal
pricing model, how much user has to pay for the service?, suddenly draws
wide attention" -- and its cost model prices the *schedule*; this module
closes the loop by allocating schedule cost to the users it serves:

* each delivery's network cost is billed to the user it serves;
* each residency's storage cost is split **evenly among the services taken
  from that cache** (its ``service_list``) -- the users who actually caused
  the file to stay resident;
* a residency nobody consumed (committed carryover, pruned candidates)
  falls into an ``overhead`` bucket the operator absorbs or amortizes.

The allocation is *exact*: the sum of all invoices plus the overhead bucket
equals Ψ(S) to floating-point accuracy, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import CostModel
from repro.core.schedule import Schedule
from repro.errors import ScheduleError


@dataclass
class Invoice:
    """One user's bill for a scheduling cycle."""

    user_id: str
    network: float = 0.0
    storage: float = 0.0
    services: int = 0

    @property
    def total(self) -> float:
        return self.network + self.storage


@dataclass
class BillingStatement:
    """All invoices for one schedule, plus the unallocated overhead."""

    invoices: dict[str, Invoice] = field(default_factory=dict)
    overhead: float = 0.0  # storage cost with no consuming service

    @property
    def billed_total(self) -> float:
        return sum(inv.total for inv in self.invoices.values())

    @property
    def grand_total(self) -> float:
        """Billed total + operator-absorbed overhead == Ψ(S)."""
        return self.billed_total + self.overhead

    def invoice(self, user_id: str) -> Invoice:
        try:
            return self.invoices[user_id]
        except KeyError:
            raise ScheduleError(f"no invoice for user {user_id!r}") from None

    def top_payers(self, n: int = 5) -> list[Invoice]:
        return sorted(
            self.invoices.values(), key=lambda i: i.total, reverse=True
        )[:n]


def allocate_costs(schedule: Schedule, cost_model: CostModel) -> BillingStatement:
    """Allocate Ψ(S) to the users the schedule serves.

    Returns a :class:`BillingStatement` whose ``grand_total`` equals
    ``cost_model.total(schedule)``.
    """
    statement = BillingStatement()

    def inv(user_id: str) -> Invoice:
        existing = statement.invoices.get(user_id)
        if existing is None:
            existing = Invoice(user_id)
            statement.invoices[user_id] = existing
        return existing

    for fs in schedule:
        for d in fs.deliveries:
            invoice = inv(d.request.user_id)
            invoice.network += cost_model.delivery_cost(d)
            invoice.services += 1
        for c in fs.residencies:
            cost = cost_model.residency_cost(c)
            if not c.service_list:
                statement.overhead += cost
                continue
            share = cost / len(c.service_list)
            for user_id in c.service_list:
                inv(user_id).storage += share
    return statement
