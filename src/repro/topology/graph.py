"""Topology model: video warehouse + intermediate storages + priced links.

Nodes are identified by string names.  Each node is either a *warehouse*
(permanent, free archive of every video -- ``srate(VW) = 0`` per the paper) or
an *intermediate storage* with a storage charging rate ``srate`` in
``$/(byte*s)`` and a capacity in bytes.  Undirected edges carry a network
charging rate ``nrate`` in ``$/byte`` and an optional bandwidth capacity in
bytes/s (used by the bandwidth-constraint extension; ``inf`` means
unconstrained, which matches the base paper).

The paper allows network charging on a *per-hop* or an *end-to-end* basis
(Eq. 4).  :class:`Topology` supports both through :class:`ChargingBasis` plus
an optional explicit end-to-end rate table; when no explicit pair rate is
given, the end-to-end rate defaults to the cheapest per-hop path cost, which
makes the two bases coincide on the default experiments.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import TopologyError


class NodeKind(enum.Enum):
    """Role of a node in the delivery infrastructure."""

    WAREHOUSE = "warehouse"
    STORAGE = "storage"


class ChargingBasis(enum.Enum):
    """How network transfer cost is assessed (paper Eq. 4)."""

    PER_HOP = "per_hop"
    END_TO_END = "end_to_end"


@dataclass(frozen=True)
class NodeSpec:
    """Immutable description of one node.

    Attributes:
        name: Unique node identifier.
        kind: Warehouse or intermediate storage.
        srate: Storage charging rate in ``$/(byte*s)``.  Always 0 for
            warehouses (videos reside there permanently for free).
        capacity: Usable cache capacity in bytes.  ``inf`` for warehouses.
    """

    name: str
    kind: NodeKind
    srate: float = 0.0
    capacity: float = math.inf

    @property
    def is_warehouse(self) -> bool:
        return self.kind is NodeKind.WAREHOUSE

    @property
    def is_storage(self) -> bool:
        return self.kind is NodeKind.STORAGE


@dataclass(frozen=True)
class Edge:
    """Undirected priced link between two nodes.

    Attributes:
        a, b: Endpoint node names (stored in sorted order).
        nrate: Network charging rate in ``$/byte`` for traffic on this link.
        bandwidth: Link bandwidth capacity in bytes/s (``inf`` = unlimited).
    """

    a: str
    b: str
    nrate: float
    bandwidth: float = math.inf

    @property
    def key(self) -> tuple[str, str]:
        return (self.a, self.b)

    def other(self, node: str) -> str:
        """Return the endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"node {node!r} is not an endpoint of edge {self.key}")


def edge_key(a: str, b: str) -> tuple[str, str]:
    """Canonical (sorted) key for the undirected edge ``{a, b}``."""
    return (a, b) if a <= b else (b, a)


@dataclass
class Topology:
    """Mutable builder + queryable model of the delivery infrastructure.

    A topology is assembled with :meth:`add_warehouse`, :meth:`add_storage`
    and :meth:`add_edge`; afterwards it behaves as an immutable-by-convention
    graph that routers and schedulers query.  All mutation methods validate
    eagerly and raise :class:`~repro.errors.TopologyError` on misuse.
    """

    charging_basis: ChargingBasis = ChargingBasis.PER_HOP
    _nodes: dict[str, NodeSpec] = field(default_factory=dict)
    _edges: dict[tuple[str, str], Edge] = field(default_factory=dict)
    _adjacency: dict[str, list[str]] = field(default_factory=dict)
    _pair_rates: dict[tuple[str, str], float] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_warehouse(self, name: str) -> NodeSpec:
        """Add a video warehouse node (free, infinite storage)."""
        return self._add_node(NodeSpec(name, NodeKind.WAREHOUSE, 0.0, math.inf))

    def add_storage(self, name: str, *, srate: float, capacity: float = math.inf) -> NodeSpec:
        """Add an intermediate storage with rate ``srate`` and ``capacity``."""
        if srate < 0:
            raise TopologyError(f"srate must be >= 0, got {srate}")
        if capacity <= 0:
            raise TopologyError(f"capacity must be > 0, got {capacity}")
        return self._add_node(NodeSpec(name, NodeKind.STORAGE, srate, capacity))

    def _add_node(self, spec: NodeSpec) -> NodeSpec:
        if spec.name in self._nodes:
            raise TopologyError(f"duplicate node {spec.name!r}")
        self._nodes[spec.name] = spec
        self._adjacency[spec.name] = []
        return spec

    def add_edge(self, a: str, b: str, *, nrate: float, bandwidth: float = math.inf) -> Edge:
        """Add an undirected link with charging rate ``nrate`` ($/byte)."""
        if a == b:
            raise TopologyError(f"self-loop on {a!r}")
        for n in (a, b):
            if n not in self._nodes:
                raise TopologyError(f"unknown node {n!r}")
        if nrate < 0:
            raise TopologyError(f"nrate must be >= 0, got {nrate}")
        if bandwidth <= 0:
            raise TopologyError(f"bandwidth must be > 0, got {bandwidth}")
        key = edge_key(a, b)
        if key in self._edges:
            raise TopologyError(f"duplicate edge {key}")
        edge = Edge(key[0], key[1], nrate, bandwidth)
        self._edges[key] = edge
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return edge

    def set_pair_rate(self, a: str, b: str, nrate: float) -> None:
        """Set an explicit end-to-end charging rate for the pair ``{a, b}``.

        Only consulted when :attr:`charging_basis` is ``END_TO_END``.
        """
        for n in (a, b):
            if n not in self._nodes:
                raise TopologyError(f"unknown node {n!r}")
        if nrate < 0:
            raise TopologyError(f"nrate must be >= 0, got {nrate}")
        self._pair_rates[edge_key(a, b)] = nrate

    # -- queries ----------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    @property
    def nodes(self) -> list[NodeSpec]:
        return list(self._nodes.values())

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def warehouses(self) -> list[NodeSpec]:
        return [n for n in self._nodes.values() if n.is_warehouse]

    @property
    def storages(self) -> list[NodeSpec]:
        return [n for n in self._nodes.values() if n.is_storage]

    @property
    def warehouse(self) -> NodeSpec:
        """The unique warehouse; raises if there is not exactly one."""
        ws = self.warehouses
        if len(ws) != 1:
            raise TopologyError(f"expected exactly one warehouse, found {len(ws)}")
        return ws[0]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> NodeSpec:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def neighbors(self, name: str) -> list[str]:
        if name not in self._adjacency:
            raise TopologyError(f"unknown node {name!r}")
        return list(self._adjacency[name])

    def edge(self, a: str, b: str) -> Edge:
        try:
            return self._edges[edge_key(a, b)]
        except KeyError:
            raise TopologyError(f"no edge between {a!r} and {b!r}") from None

    def has_edge(self, a: str, b: str) -> bool:
        return edge_key(a, b) in self._edges

    def pair_rate(self, a: str, b: str) -> float | None:
        """Explicit end-to-end rate for ``{a, b}``, or ``None`` if unset."""
        return self._pair_rates.get(edge_key(a, b))

    def srate(self, name: str) -> float:
        return self.node(name).srate

    def capacity(self, name: str) -> float:
        return self.node(name).capacity

    def with_srate(self, srate: float) -> "Topology":
        """Copy of this topology with every storage's rate set to ``srate``.

        Used by the experiment sweeps, which vary a single global storage
        charging rate (paper Sec. 5).
        """
        out = Topology(charging_basis=self.charging_basis)
        for spec in self._nodes.values():
            if spec.is_warehouse:
                out.add_warehouse(spec.name)
            else:
                out.add_storage(spec.name, srate=srate, capacity=spec.capacity)
        for e in self._edges.values():
            out.add_edge(e.a, e.b, nrate=e.nrate, bandwidth=e.bandwidth)
        out._pair_rates.update(self._pair_rates)
        return out

    def with_nrate(self, nrate: float) -> "Topology":
        """Copy of this topology with every edge's rate set to ``nrate``."""
        out = Topology(charging_basis=self.charging_basis)
        for spec in self._nodes.values():
            if spec.is_warehouse:
                out.add_warehouse(spec.name)
            else:
                out.add_storage(spec.name, srate=spec.srate, capacity=spec.capacity)
        for e in self._edges.values():
            out.add_edge(e.a, e.b, nrate=nrate, bandwidth=e.bandwidth)
        return out

    def with_capacity(self, capacity: float) -> "Topology":
        """Copy of this topology with every storage's capacity set."""
        out = Topology(charging_basis=self.charging_basis)
        for spec in self._nodes.values():
            if spec.is_warehouse:
                out.add_warehouse(spec.name)
            else:
                out.add_storage(spec.name, srate=spec.srate, capacity=capacity)
        for e in self._edges.values():
            out.add_edge(e.a, e.b, nrate=e.nrate, bandwidth=e.bandwidth)
        out._pair_rates.update(self._pair_rates)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({len(self.warehouses)} warehouse(s), "
            f"{len(self.storages)} storage(s), {len(self._edges)} edge(s))"
        )
