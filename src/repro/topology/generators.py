"""Deterministic topology builders.

:func:`paper_topology` reconstructs the experimental layout of the paper's
Fig. 4 -- one video warehouse plus 19 intermediate storages.  The printed
figure is not legible enough to recover the exact wiring, so we use a
documented metro-style layout with the same node counts: the warehouse feeds
four regional hubs joined in a ring, and each hub serves a small neighborhood
cluster.  The paper's experiments sweep a single *network charging rate* and a
single *storage charging rate* applied uniformly, so only the rough shape
(multi-hop, ~2 average hops from the warehouse) matters for reproducing the
result shapes.

:func:`worked_example_topology` builds the tiny two-storage chain of the
paper's Fig. 2, used by the worked-example tests that check Ψ(S1) = $259.20
and Ψ(S2) = $138.975 exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import Topology
from repro import units


#: Fixed wiring of the 20-node experimental topology (see module docstring).
PAPER_TOPOLOGY_EDGES: tuple[tuple[str, str], ...] = (
    # warehouse to regional hubs
    ("VW", "IS1"),
    ("VW", "IS2"),
    ("VW", "IS3"),
    ("VW", "IS4"),
    # hub ring
    ("IS1", "IS2"),
    ("IS2", "IS3"),
    ("IS3", "IS4"),
    ("IS4", "IS1"),
    # cluster behind IS1
    ("IS1", "IS5"),
    ("IS1", "IS6"),
    ("IS5", "IS7"),
    ("IS6", "IS7"),
    # cluster behind IS2
    ("IS2", "IS8"),
    ("IS2", "IS9"),
    ("IS8", "IS10"),
    ("IS9", "IS11"),
    ("IS10", "IS11"),
    # cluster behind IS3
    ("IS3", "IS12"),
    ("IS3", "IS13"),
    ("IS12", "IS14"),
    ("IS13", "IS15"),
    ("IS14", "IS15"),
    # cluster behind IS4
    ("IS4", "IS16"),
    ("IS4", "IS17"),
    ("IS16", "IS18"),
    ("IS17", "IS19"),
    ("IS18", "IS19"),
)

#: Number of intermediate storages in the paper topology.
PAPER_STORAGE_COUNT = 19


def paper_topology(
    *,
    nrate: float,
    srate: float,
    capacity: float,
    nrate_jitter: float = 0.0,
    seed: int | None = None,
) -> Topology:
    """The 20-node experimental topology (paper Fig. 4).

    Args:
        nrate: Per-link network charging rate, $/byte (uniform, as in the
            paper's single "Network Charging Rate" sweep parameter).
        srate: Per-storage charging rate, $/(byte*s) (uniform).
        capacity: Per-storage capacity in bytes ("Intermediate Storage Size").
        nrate_jitter: Optional relative jitter applied per edge (e.g. 0.1
            multiplies each link rate by Uniform(0.9, 1.1)); 0 keeps all links
            identical like the paper.
        seed: RNG seed, required when ``nrate_jitter > 0``.
    """
    if nrate_jitter < 0 or nrate_jitter >= 1:
        raise TopologyError(f"nrate_jitter must be in [0, 1), got {nrate_jitter}")
    rng = np.random.default_rng(seed)
    topo = Topology()
    topo.add_warehouse("VW")
    for i in range(1, PAPER_STORAGE_COUNT + 1):
        topo.add_storage(f"IS{i}", srate=srate, capacity=capacity)
    for a, b in PAPER_TOPOLOGY_EDGES:
        rate = nrate
        if nrate_jitter:
            rate *= 1.0 + nrate_jitter * (2.0 * rng.random() - 1.0)
        topo.add_edge(a, b, nrate=rate)
    return topo


def worked_example_topology() -> Topology:
    """The Fig. 2 layout: ``VW -- IS1 -- IS2`` with the paper's link rates.

    Link rates are 0.2 and 0.1 cents per (Mbps*second); IS1/IS2 charge
    $1.00/(GB*hour), which together with the 90 min / 2.5 GB / 6 Mbps video
    reproduces the paper's Ψ(S1) = $259.20 and Ψ(S2) = $138.975 exactly.
    """
    topo = Topology()
    topo.add_warehouse("VW")
    srate = units.per_gb_hour(1.0)
    topo.add_storage("IS1", srate=srate, capacity=units.gb(10.0))
    topo.add_storage("IS2", srate=srate, capacity=units.gb(10.0))
    topo.add_edge("VW", "IS1", nrate=units.per_mbps_second(0.002, units.mbps(6)))
    topo.add_edge("IS1", "IS2", nrate=units.per_mbps_second(0.001, units.mbps(6)))
    return topo


def star_topology(
    n_storages: int,
    *,
    nrate: float,
    srate: float,
    capacity: float,
) -> Topology:
    """Warehouse at the hub, each storage one hop away."""
    _check_count(n_storages)
    topo = Topology()
    topo.add_warehouse("VW")
    for i in range(1, n_storages + 1):
        name = f"IS{i}"
        topo.add_storage(name, srate=srate, capacity=capacity)
        topo.add_edge("VW", name, nrate=nrate)
    return topo


def chain_topology(
    n_storages: int,
    *,
    nrate: float,
    srate: float,
    capacity: float,
) -> Topology:
    """Linear chain ``VW -- IS1 -- IS2 -- ... -- ISn``.

    The worst case for direct delivery (cost grows with distance from the
    warehouse), so the configuration where intermediate caching helps most.
    """
    _check_count(n_storages)
    topo = Topology()
    topo.add_warehouse("VW")
    prev = "VW"
    for i in range(1, n_storages + 1):
        name = f"IS{i}"
        topo.add_storage(name, srate=srate, capacity=capacity)
        topo.add_edge(prev, name, nrate=nrate)
        prev = name
    return topo


def ring_topology(
    n_storages: int,
    *,
    nrate: float,
    srate: float,
    capacity: float,
) -> Topology:
    """Warehouse and storages on a single ring."""
    _check_count(n_storages)
    topo = Topology()
    names = ["VW"] + [f"IS{i}" for i in range(1, n_storages + 1)]
    topo.add_warehouse("VW")
    for name in names[1:]:
        topo.add_storage(name, srate=srate, capacity=capacity)
    for a, b in zip(names, names[1:]):
        topo.add_edge(a, b, nrate=nrate)
    if len(names) > 2:
        topo.add_edge(names[-1], names[0], nrate=nrate)
    return topo


def tree_topology(
    n_storages: int,
    *,
    nrate: float,
    srate: float,
    capacity: float,
    fanout: int = 2,
) -> Topology:
    """Complete ``fanout``-ary distribution tree rooted at the warehouse."""
    _check_count(n_storages)
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    topo = Topology()
    topo.add_warehouse("VW")
    names = ["VW"] + [f"IS{i}" for i in range(1, n_storages + 1)]
    for name in names[1:]:
        topo.add_storage(name, srate=srate, capacity=capacity)
    for idx in range(1, len(names)):
        parent = names[(idx - 1) // fanout]
        topo.add_edge(parent, names[idx], nrate=nrate)
    return topo


def random_topology(
    n_storages: int,
    *,
    nrate: float,
    srate: float,
    capacity: float,
    extra_edge_prob: float = 0.15,
    nrate_jitter: float = 0.0,
    seed: int = 0,
) -> Topology:
    """Connected random topology: random spanning tree + extra random links.

    Built by attaching each new node to a uniformly random earlier node
    (random recursive tree) and then adding each remaining pair as an edge
    with probability ``extra_edge_prob``.  Deterministic for a given seed.
    """
    _check_count(n_storages)
    if not (0.0 <= extra_edge_prob <= 1.0):
        raise TopologyError(f"extra_edge_prob must be in [0, 1], got {extra_edge_prob}")
    if nrate_jitter < 0 or nrate_jitter >= 1:
        raise TopologyError(f"nrate_jitter must be in [0, 1), got {nrate_jitter}")
    rng = np.random.default_rng(seed)
    topo = Topology()
    names = ["VW"] + [f"IS{i}" for i in range(1, n_storages + 1)]
    topo.add_warehouse("VW")
    for name in names[1:]:
        topo.add_storage(name, srate=srate, capacity=capacity)

    def rate() -> float:
        if nrate_jitter:
            return nrate * (1.0 + nrate_jitter * (2.0 * rng.random() - 1.0))
        return nrate

    for idx in range(1, len(names)):
        parent = names[int(rng.integers(0, idx))]
        topo.add_edge(parent, names[idx], nrate=rate())
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if topo.has_edge(names[i], names[j]):
                continue
            if rng.random() < extra_edge_prob:
                topo.add_edge(names[i], names[j], nrate=rate())
    return topo


def _check_count(n_storages: int) -> None:
    if n_storages < 1:
        raise TopologyError(f"need at least one storage, got {n_storages}")
    if not math.isfinite(n_storages):  # pragma: no cover - defensive
        raise TopologyError("n_storages must be finite")
