"""Network/storage topology substrate.

The paper's environment (Fig. 1 / Fig. 4) is a single *video warehouse* (VW)
plus a set of *intermediate storages* (IS), one per user neighborhood, joined
by a priced high-speed network.  This subpackage provides:

* :class:`~repro.topology.graph.Topology` -- the node/edge model with per-edge
  network charging rates (``nrate``) and per-storage charging rates/capacities
  (``srate``, capacity),
* :class:`~repro.topology.routing.Router` -- cheapest-path routing and
  all-pairs cost queries over a topology,
* :mod:`~repro.topology.generators` -- deterministic topology builders,
  including the paper's 20-node experimental layout.
"""

from repro.topology.graph import ChargingBasis, Edge, NodeKind, NodeSpec, Topology
from repro.topology.routing import Route, Router
from repro.topology.generators import (
    chain_topology,
    paper_topology,
    random_topology,
    ring_topology,
    star_topology,
    tree_topology,
    worked_example_topology,
)
from repro.topology.validation import validate_topology

__all__ = [
    "ChargingBasis",
    "Edge",
    "NodeKind",
    "NodeSpec",
    "Topology",
    "Route",
    "Router",
    "chain_topology",
    "paper_topology",
    "random_topology",
    "ring_topology",
    "star_topology",
    "tree_topology",
    "worked_example_topology",
    "validate_topology",
]
