"""Cheapest-path routing over a priced topology.

The scheduler charges a network transfer at ``size * sum(nrate(hop))`` along
its route (per-hop basis) or ``size * nrate(src, dst)`` (end-to-end basis),
see Eq. 4.  Either way it always wants the *cheapest* route, so the router's
core primitive is Dijkstra over edge ``nrate`` weights.  Routes and transfer
rates are memoised: topologies are static for the lifetime of a scheduling
cycle and the greedy scheduler issues many repeated queries.

The router also exposes Yen's k-cheapest-paths, used by the bandwidth
extension to divert streams around saturated links.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import RoutingError
from repro.topology.graph import ChargingBasis, Topology, edge_key


@dataclass(frozen=True)
class Route:
    """A concrete path through the topology plus its transfer pricing.

    Attributes:
        nodes: Node names from source to destination (inclusive).  A
            zero-length route (``src == dst``) has a single node.
        hop_cost: Sum of per-hop ``nrate`` over the route's edges, $/byte.
        rate: The effective charging rate applied to transfers on this route,
            $/byte.  Equals ``hop_cost`` under per-hop charging; may differ
            under end-to-end charging with an explicit pair rate.
    """

    nodes: tuple[str, ...]
    hop_cost: float
    rate: float

    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Canonical edge keys along the route."""
        return [edge_key(a, b) for a, b in zip(self.nodes, self.nodes[1:])]

    def transfer_cost(self, size_bytes: float) -> float:
        """Cost of moving ``size_bytes`` along this route (Eq. 4)."""
        return size_bytes * self.rate


class Router:
    """Memoising cheapest-path router for a fixed topology."""

    def __init__(self, topology: Topology):
        self._topo = topology
        #: Dijkstra results per source: {src: ({node: cost}, {node: prev})}
        self._sssp: dict[str, tuple[dict[str, float], dict[str, str | None]]] = {}
        self._routes: dict[tuple[str, str], Route] = {}

    @property
    def topology(self) -> Topology:
        return self._topo

    # -- single-source shortest paths --------------------------------------

    def _dijkstra(self, src: str) -> tuple[dict[str, float], dict[str, str | None]]:
        if src in self._sssp:
            return self._sssp[src]
        if src not in self._topo:
            raise RoutingError(f"unknown source node {src!r}")
        dist: dict[str, float] = {src: 0.0}
        prev: dict[str, str | None] = {src: None}
        # Tie-break on hop count so equal-cost routes prefer fewer hops,
        # keeping the chosen routes deterministic and physically sensible.
        hopcnt: dict[str, int] = {src: 0}
        heap: list[tuple[float, int, str]] = [(0.0, 0, src)]
        done: set[str] = set()
        while heap:
            d, h, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v in self._topo.neighbors(u):
                w = self._topo.edge(u, v).nrate
                nd, nh = d + w, h + 1
                if (
                    v not in dist
                    or nd < dist[v] - 1e-15
                    or (abs(nd - dist[v]) <= 1e-15 and nh < hopcnt[v])
                ):
                    dist[v] = nd
                    hopcnt[v] = nh
                    prev[v] = u
                    heapq.heappush(heap, (nd, nh, v))
        self._sssp[src] = (dist, prev)
        return dist, prev

    # -- public queries -----------------------------------------------------

    def route(self, src: str, dst: str) -> Route:
        """Cheapest route from ``src`` to ``dst``.

        Raises :class:`~repro.errors.RoutingError` when the nodes are
        disconnected.
        """
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        if dst not in self._topo:
            raise RoutingError(f"unknown destination node {dst!r}")
        dist, prev = self._dijkstra(src)
        if dst not in dist:
            raise RoutingError(f"no route from {src!r} to {dst!r}")
        path: list[str] = []
        cur: str | None = dst
        while cur is not None:
            path.append(cur)
            cur = prev[cur]
        path.reverse()
        hop_cost = dist[dst]
        rate = self._effective_rate(src, dst, hop_cost)
        route = Route(tuple(path), hop_cost, rate)
        self._routes[key] = route
        return route

    def _effective_rate(self, src: str, dst: str, hop_cost: float) -> float:
        if self._topo.charging_basis is ChargingBasis.END_TO_END:
            explicit = self._topo.pair_rate(src, dst)
            if explicit is not None:
                return explicit
        return hop_cost

    def rate(self, src: str, dst: str) -> float:
        """Effective transfer charging rate ($/byte) from ``src`` to ``dst``."""
        return self.route(src, dst).rate

    def transfer_cost(self, src: str, dst: str, size_bytes: float) -> float:
        """Cost of shipping ``size_bytes`` from ``src`` to ``dst`` (Eq. 4)."""
        return self.route(src, dst).transfer_cost(size_bytes)

    def reachable(self, src: str) -> set[str]:
        """All nodes reachable from ``src`` (including ``src`` itself)."""
        dist, _ = self._dijkstra(src)
        return set(dist)

    def all_rates_from(self, src: str) -> dict[str, float]:
        """Per-hop path costs from ``src`` to every reachable node."""
        dist, _ = self._dijkstra(src)
        return dict(dist)

    # -- k-cheapest paths (Yen) ---------------------------------------------

    def k_cheapest_routes(self, src: str, dst: str, k: int) -> list[Route]:
        """Up to ``k`` loop-free cheapest routes, ascending by hop cost.

        Implements Yen's algorithm on top of restricted Dijkstra runs.  Used
        by the bandwidth-constraint extension to find alternates when the
        cheapest route's links are saturated.
        """
        if k < 1:
            raise RoutingError(f"k must be >= 1, got {k}")
        first = self.route(src, dst)
        paths: list[Route] = [first]
        candidates: list[tuple[float, tuple[str, ...]]] = []
        seen: set[tuple[str, ...]] = {first.nodes}
        while len(paths) < k:
            prev_path = paths[-1].nodes
            for i in range(len(prev_path) - 1):
                spur = prev_path[i]
                root = prev_path[: i + 1]
                banned_edges: set[tuple[str, str]] = set()
                for p in paths:
                    if p.nodes[: i + 1] == root and len(p.nodes) > i + 1:
                        banned_edges.add(edge_key(p.nodes[i], p.nodes[i + 1]))
                banned_nodes = set(root[:-1])
                tail = self._restricted_dijkstra(spur, dst, banned_nodes, banned_edges)
                if tail is None:
                    continue
                full = root[:-1] + tail
                if full in seen:
                    continue
                seen.add(full)
                cost = self._path_cost(full)
                heapq.heappush(candidates, (cost, full))
            if not candidates:
                break
            cost, nodes = heapq.heappop(candidates)
            paths.append(Route(nodes, cost, self._effective_rate(src, dst, cost)))
        return paths

    def _restricted_dijkstra(
        self,
        src: str,
        dst: str,
        banned_nodes: set[str],
        banned_edges: set[tuple[str, str]],
    ) -> tuple[str, ...] | None:
        dist: dict[str, float] = {src: 0.0}
        prev: dict[str, str | None] = {src: None}
        heap: list[tuple[float, str]] = [(0.0, src)]
        done: set[str] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u == dst:
                path: list[str] = []
                cur: str | None = dst
                while cur is not None:
                    path.append(cur)
                    cur = prev[cur]
                path.reverse()
                return tuple(path)
            if u in done:
                continue
            done.add(u)
            for v in self._topo.neighbors(u):
                if v in banned_nodes or edge_key(u, v) in banned_edges:
                    continue
                nd = d + self._topo.edge(u, v).nrate
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        return None

    def _path_cost(self, nodes: tuple[str, ...]) -> float:
        return math.fsum(
            self._topo.edge(a, b).nrate for a, b in zip(nodes, nodes[1:])
        )
