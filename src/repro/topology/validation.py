"""Structural validation of topologies before scheduling.

The scheduler assumes (a) there is at least one warehouse, (b) every storage
is reachable from some warehouse, and (c) all rates are finite and
non-negative.  :func:`validate_topology` checks these up front so scheduling
failures surface as clear configuration errors rather than mid-run routing
exceptions.
"""

from __future__ import annotations

import math

from repro.errors import TopologyError
from repro.topology.graph import Topology
from repro.topology.routing import Router


def validate_topology(topology: Topology, *, replicas=None) -> None:
    """Raise :class:`~repro.errors.TopologyError` if ``topology`` is unusable.

    Checks:
        * at least one warehouse and at least one storage node exist;
        * every node is reachable from every warehouse (single component --
          this is the multi-root guarantee replica-aware scheduling relies
          on: any home warehouse can serve any neighborhood);
        * all edge rates, storage rates and capacities are finite;
        * no storage has non-positive capacity.

    With ``replicas`` (a :class:`~repro.replication.ReplicaMap`) the
    placement is validated against the topology too: every home must name a
    warehouse and every video must keep at least one home (raises
    :class:`~repro.errors.ReplicationError` otherwise).
    """
    warehouses = topology.warehouses
    if not warehouses:
        raise TopologyError("topology has no warehouse")
    if not topology.storages:
        raise TopologyError("topology has no intermediate storage")

    for edge in topology.edges:
        if not math.isfinite(edge.nrate):
            raise TopologyError(f"edge {edge.key} has non-finite nrate {edge.nrate}")

    for spec in topology.storages:
        if not math.isfinite(spec.srate):
            raise TopologyError(f"storage {spec.name!r} has non-finite srate")
        if spec.capacity <= 0:
            raise TopologyError(f"storage {spec.name!r} has non-positive capacity")

    router = Router(topology)
    all_nodes = set(topology.node_names)
    for wh in warehouses:
        reachable = router.reachable(wh.name)
        missing = all_nodes - reachable
        if missing:
            raise TopologyError(
                f"nodes unreachable from warehouse {wh.name!r}: {sorted(missing)}"
            )

    if replicas is not None:
        replicas.validate(topology)
