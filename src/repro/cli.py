"""Command-line interface: reproduce any paper figure/table from a shell.

Usage::

    vor-repro worked-example
    vor-repro fig5 [--quick] [--seed N]
    vor-repro fig6 | fig7 | fig8 | fig9
    vor-repro table5 [--quick]
    vor-repro gap
    vor-repro ablations | contention
    vor-repro all [--quick]
    vor-repro report [--quick] [--out DIR]
    vor-repro run-env ENV.json     # schedule an environment file from disk
    vor-repro simulate ENV.json    # schedule + replay + feasibility verdict
    vor-repro run-faults ENV.json --scenario f.json   # fault drill + recovery
    vor-repro run-online ENV.json --feed f.jsonl      # online amendment loop
    vor-repro run-horizon ENV.json --cycles 3         # multi-cycle horizon
    vor-repro run-gateway ENV.json --request-feed r.jsonl  # admission gateway

``--quick`` swaps the Table 4 configuration for the scaled-down variant
(same shapes, ~20x faster).  Every command prints the reproduced table and
an ASCII rendition of the figure.

``run-env`` and ``simulate`` validate the solved schedule end-to-end; any
:class:`~repro.sim.validate.Violation` is printed and the process exits
non-zero.  ``run-faults`` injects a fault scenario (``--scenario`` JSON, or
seeded generation via ``--seed``/``--scenario-out``), prints the
degraded-mode damage and the contingency recovery, optionally writes the
machine-readable report (``--report-out``), and exits non-zero when the
patched schedule fails validation on the fault-masked topology.
``--kinds warehouse_loss`` drills a full warehouse outage; with
``--replicas full`` (or ``heat:K``, or a replica-map JSON path) on a
multi-warehouse environment the recovery re-solves every impacted request
from the surviving homes.

``run-online`` replays a fault feed (``--feed`` JSONL, or seeded
generation via ``--seed``/``--feed-events``/``--feed-out``) through the
:class:`~repro.online.OnlineAmendmentLoop`: debounced batches amend the
closed cycle incrementally (``--masking windowed`` by default), transient
failures retry with seeded backoff (``--max-retries``, ``--deadline``),
and repeated failures open a circuit breaker (``--breaker-threshold``,
``--breaker-cooldown``) that degrades to conservative whole-cycle masking
and sheds pending reservations (``--shed``, ``--cycle-fraction``).
``--inject-failures 0:2,3:1`` injects deterministic transient failures for
drills; ``--online-report-out`` writes the machine-readable run report.
The process exits non-zero when the loop ends without a valid schedule.

``run-horizon`` chains several day-cycles through the
:class:`~repro.horizon.HorizonOrchestrator`: each cycle draws a seeded
workload whose Zipf heat drifts by ``--churn`` between cycles, the
between-cycle :class:`~repro.horizon.MigrationPlanner` re-homes replicas
when the projected Ψ saving beats the priced staging transfer (disable
with ``--no-migrate``), and an optional ``--feed`` is split across cycle
boundaries so a fault window straddling two cycles is amended into both.
``--horizon-report-out`` writes the replay-invariant horizon report
(byte-identical across backends and reruns); the process exits non-zero
when any cycle ends infeasible.

``run-gateway`` replays a booking feed (``--request-feed`` JSONL, or
seeded generation via ``--seed``/``--request-feed-out``) through the
:class:`~repro.gateway.ReservationGateway`: every arriving reservation
is pre-screened, quoted an incremental price (cheapest-copy Ψ_D vs.
residency-extension Ψ_C), and run through the ``--policy`` admission
chain (``accept-all``, ``headroom[:F]``, ``price-ceiling:X``,
``rate-limit:RATE:BURST``, comma-chained).  ``--max-batch`` and
``--queue-depth`` bound the solver-bound batch and the carryover queue;
overload sheds the lowest-priority bookings.  ``--seals`` splits the
feed into that many sealed cycles; ``--gateway-report-out`` writes the
replay-invariant gateway report (byte-identical across backends and
reruns).  The process exits non-zero when a sealed cycle is infeasible.

Observability: ``run-env --metrics-out metrics.json --trace-out trace.jsonl``
schedules an environment with a live :class:`repro.obs.Observability` handle
and writes the metric snapshot (JSON, or Prometheus text for a ``.prom``
path) and the span log.  ``--journal-out journal.jsonl`` additionally
records the request-lifecycle audit journal (deterministic wide events;
see :mod:`repro.obs.events`) and ``--explain REQUEST_ID`` prints one
request's timeline.  ``--profile {cprofile,tracemalloc}`` wraps any
command and writes a top-N hotspot artifact to ``--profile-out``.
``--log-level`` tunes the stderr logging of every ``repro.*`` module
(default ``info``).

SLOs: ``run-online`` evaluates the run against an SLO policy (``--slo
policy.json``, or the built-in default), prints the per-SLO burn rates,
and embeds the indicators in ``--online-report-out``;
``vor-repro slo-check report.json`` re-gates that report and exits
non-zero on any breach.  ``vor-repro report --telemetry metrics.json
[--journal journal.jsonl]`` renders a terminal dashboard (phase wall
time, critical path, metric series, journal event mix) from previously
written artifacts.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro.obs import configure_logging

from repro.experiments import (
    ExperimentRunner,
    ablation_bandwidth,
    ablation_deposit_scope,
    ablation_heat_metrics,
    contention_sweep,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    optimality_gap,
    paper_config,
    quick_config,
    table5,
    worked_example,
)

_FIGURES = {
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}

_log = logging.getLogger(__name__)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vor-repro",
        description=(
            "Reproduce the evaluation of Won & Srivastava, 'Distributed "
            "Service Paradigm for Remote Video Retrieval Request' (HPDC'97)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURES)
        + [
            "table5",
            "gap",
            "ablations",
            "contention",
            "worked-example",
            "all",
            "report",
            "run-env",
            "simulate",
            "run-faults",
            "run-online",
            "run-horizon",
            "run-gateway",
            "slo-check",
        ],
        help="which paper artifact to reproduce ('report' writes all of "
        "them to --out, or renders a terminal dashboard with --telemetry; "
        "'run-env'/'simulate'/'run-faults'/'run-online'/'run-horizon'/"
        "'run-gateway' schedule an environment JSON; 'slo-check' gates an "
        "online report JSON)",
    )
    parser.add_argument(
        "env_file",
        nargs="?",
        default=None,
        help="environment JSON for the 'run-env'/'simulate'/'run-faults'/"
        "'run-online'/'run-horizon'/'run-gateway' commands, or the online "
        "report JSON for 'slo-check'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the scaled-down configuration (fast, same shapes)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default 1)"
    )
    parser.add_argument(
        "--out",
        default="repro-report",
        help="output directory for the 'report' command (default ./repro-report)",
    )
    parser.add_argument(
        "--phase1-backend",
        choices=["serial", "thread", "process"],
        default="serial",
        help="Phase-1 execution backend for 'run-env' (default serial; "
        "results are bit-identical across backends)",
    )
    parser.add_argument(
        "--phase1-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool size for --phase1-backend thread/process "
        "(default: CPU count)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error", "critical"],
        default="info",
        help="stderr logging verbosity for repro.* modules (default info)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metric snapshot for 'run-env' "
        "(.json for a JSON telemetry bundle, .prom/.txt for Prometheus "
        "text exposition)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span records as JSON Lines for 'run-env'",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="PATH",
        help="fault-plan JSON for 'run-faults' (omit to generate a seeded "
        "scenario from --seed)",
    )
    parser.add_argument(
        "--scenario-out",
        default=None,
        metavar="PATH",
        help="write the (possibly generated) fault plan as JSON",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write the degraded-mode + recovery report as JSON for "
        "'run-faults'",
    )
    parser.add_argument(
        "--n-faults",
        type=int,
        default=3,
        metavar="N",
        help="faults to draw when generating a scenario (default 3)",
    )
    parser.add_argument(
        "--kinds",
        default=None,
        metavar="KIND[,KIND...]",
        help="restrict generated fault kinds for 'run-faults' (comma-"
        "separated FaultKind values, e.g. 'warehouse_loss,link_down'; "
        "default: every kind except warehouse_loss)",
    )
    parser.add_argument(
        "--feed",
        default=None,
        metavar="PATH",
        help="fault-feed JSONL for 'run-online' (omit to generate a "
        "seeded feed from --seed)",
    )
    parser.add_argument(
        "--feed-events",
        type=int,
        default=4,
        metavar="N",
        help="events to draw when generating a feed (default 4)",
    )
    parser.add_argument(
        "--feed-out",
        default=None,
        metavar="PATH",
        help="write the (possibly generated) fault feed as JSONL",
    )
    parser.add_argument(
        "--debounce",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="batch feed events arriving within this many virtual seconds "
        "of each other (default 0: one batch per arrival instant)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per amendment attempt; overruns are "
        "retried as transient failures (default: no deadline)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="retry attempts per amendment batch (default 3)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive failed batches that open the circuit breaker "
        "(default 3)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="virtual seconds the breaker stays open before a half-open "
        "probe (default 0)",
    )
    parser.add_argument(
        "--shed",
        type=int,
        default=1,
        metavar="N",
        help="pending reservations shed per degraded batch (default 1)",
    )
    parser.add_argument(
        "--masking",
        choices=["cycle", "windowed"],
        default="windowed",
        help="recovery stance for normal online operation (default "
        "windowed; degraded batches always fall back to cycle)",
    )
    parser.add_argument(
        "--cycle-fraction",
        type=float,
        default=1.0,
        metavar="F",
        help="close the cycle at start + F * span of the workload; "
        "later reservations stay pending and are sheddable in degraded "
        "mode (default 1.0: schedule everything)",
    )
    parser.add_argument(
        "--inject-failures",
        default=None,
        metavar="SPEC",
        help="deterministic transient-failure injection for 'run-online', "
        "e.g. '0:2,3:1' fails batch 0 twice and batch 3 once",
    )
    parser.add_argument(
        "--online-report-out",
        default=None,
        metavar="PATH",
        help="write the online run report as JSON for 'run-online'",
    )
    parser.add_argument(
        "--replicas",
        default=None,
        metavar="SPEC",
        help="replica placement for the environment commands: 'full' "
        "(every video at every warehouse), 'heat' or 'heat:K' (heat-driven "
        "placement with degree K), or a replica-map JSON path",
    )
    parser.add_argument(
        "--journal-out",
        default=None,
        metavar="PATH",
        help="record the request-lifecycle audit journal during an "
        "environment command and write it as JSON Lines (deterministic: "
        "identical runs produce byte-identical files)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="REQUEST_ID",
        help="print the journal timeline of one request after an "
        "environment command (implies journal recording), e.g. "
        "'user01/video0003@5400->IS2'",
    )
    parser.add_argument(
        "--slo",
        default=None,
        metavar="PATH",
        help="SLO policy JSON for 'run-online'/'slo-check' (default: the "
        "built-in policy)",
    )
    parser.add_argument(
        "--profile",
        choices=["cprofile", "tracemalloc"],
        default=None,
        help="profile the command and write a top-N hotspot artifact "
        "(--profile-out)",
    )
    parser.add_argument(
        "--profile-out",
        default="profile.json",
        metavar="PATH",
        help="hotspot artifact path for --profile (default profile.json)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="for 'report': render a terminal dashboard from a "
        "--metrics-out JSON telemetry bundle instead of regenerating the "
        "paper artifacts",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="for 'report': include a --journal-out JSONL in the dashboard "
        "(event mix; timelines via --explain)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=3,
        metavar="N",
        help="cycles in the 'run-horizon' horizon (default 3)",
    )
    parser.add_argument(
        "--cycle-length",
        type=float,
        default=86400.0,
        metavar="SECONDS",
        help="virtual length of each horizon cycle (default 86400: one day)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.5,
        metavar="F",
        help="fraction of popularity ranks reassigned between horizon "
        "cycles (default 0.5)",
    )
    parser.add_argument(
        "--users",
        type=int,
        default=4,
        metavar="N",
        help="users per neighborhood in each generated horizon cycle "
        "(default 4)",
    )
    parser.add_argument(
        "--no-migrate",
        action="store_true",
        help="freeze the initial replica map for the whole horizon "
        "(skip the between-cycle migration planner)",
    )
    parser.add_argument(
        "--degree",
        type=int,
        default=1,
        metavar="K",
        help="replica degree for the migration planner's candidate "
        "placement, and for the default heat placement when --replicas "
        "is omitted (default 1)",
    )
    parser.add_argument(
        "--staging-window",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="tape-drive budget window for accepted migrations; 0 "
        "disables the budget (default 3600)",
    )
    parser.add_argument(
        "--horizon-report-out",
        default=None,
        metavar="PATH",
        help="write the horizon report as JSON for 'run-horizon' "
        "(replay-invariant: identical runs produce byte-identical files)",
    )
    parser.add_argument(
        "--horizon-report",
        default=None,
        metavar="PATH",
        help="for 'report': include a --horizon-report-out JSON in the "
        "dashboard (per-cycle Ψ trajectory, migrations, resumes)",
    )
    parser.add_argument(
        "--request-feed",
        default=None,
        metavar="PATH",
        help="booking-feed JSONL for 'run-gateway' (omit to generate a "
        "seeded feed from --seed)",
    )
    parser.add_argument(
        "--request-feed-out",
        default=None,
        metavar="PATH",
        help="write the (possibly generated) booking feed as JSONL",
    )
    parser.add_argument(
        "--policy",
        default="accept-all",
        metavar="SPEC",
        help="admission policy chain for 'run-gateway': comma-chained "
        "'accept-all', 'headroom[:FRACTION]', 'price-ceiling:DOLLARS', "
        "'rate-limit:RATE:BURST' (default accept-all)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=0,
        metavar="N",
        help="solver-bound batch depth per gateway cycle; 0 = unbounded "
        "(default 0)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=0,
        metavar="N",
        help="bounded pending queue behind a full gateway batch; 0 "
        "disables queueing, overflow sheds (default 0)",
    )
    parser.add_argument(
        "--seals",
        type=int,
        default=1,
        metavar="N",
        help="sealed cycles for 'run-gateway': the booking span is split "
        "into N cycles, the last boundary covers every showing (default 1)",
    )
    parser.add_argument(
        "--gateway-report-out",
        default=None,
        metavar="PATH",
        help="write the gateway run report as JSON for 'run-gateway' "
        "(replay-invariant: identical runs produce byte-identical files)",
    )
    parser.add_argument(
        "--gateway-report",
        default=None,
        metavar="PATH",
        help="for 'report': include a --gateway-report-out JSON in the "
        "dashboard (per-cycle intake counters, quote reconciliation)",
    )
    return parser


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    cfg = quick_config() if args.quick else paper_config()
    cfg = cfg.but(workload_seed=args.seed)
    return ExperimentRunner(cfg)


def _run_one(name: str, args: argparse.Namespace) -> None:
    t0 = time.perf_counter()
    if name == "worked-example":
        print(worked_example().as_table())
    elif name in _FIGURES:
        runner = _runner(args)
        print(_FIGURES[name](runner).render())
    elif name == "table5":
        runner = _runner(args)
        print(table5(runner).as_table())
    elif name == "gap":
        print(optimality_gap().as_table())
    elif name == "contention":
        cfg = quick_config(n_files=150) if args.quick else paper_config()
        users = (4, 10, 24) if args.quick else (5, 10, 20, 40)
        print(contention_sweep(cfg, users_axis=users).as_table())
    elif name == "ablations":
        runner = _runner(args)
        for ablation in (
            ablation_deposit_scope,
            ablation_heat_metrics,
            ablation_bandwidth,
        ):
            print(ablation(runner).as_table())
            print()
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name!r}")
    _log.info("%s completed in %.1fs", name, time.perf_counter() - t0)


def _write_report(args: argparse.Namespace) -> None:
    """Regenerate every artifact and write it under ``--out``."""
    import pathlib

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    runner = _runner(args)
    artifacts: dict[str, str] = {
        "worked_example": worked_example().as_table(),
    }
    for name, fn in _FIGURES.items():
        artifacts[name] = fn(runner).render()
    artifacts["table5"] = table5(runner).as_table()
    artifacts["optimality_gap"] = optimality_gap().as_table()
    for ablation in (
        ablation_deposit_scope,
        ablation_heat_metrics,
        ablation_bandwidth,
    ):
        result = ablation(runner)
        key = "ablation_" + ablation.__name__.removeprefix("ablation_")
        artifacts[key] = result.as_table()
    for name, text in artifacts.items():
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        _log.info("wrote %s", path)
    index = out / "INDEX.txt"
    index.write_text(
        "\n".join(f"{k}.txt" for k in artifacts) + "\n"
    )
    _log.info("wrote %s", index)


def _parse_replicas(spec, topology, catalog, batch, *, seed: int):
    """Build the :class:`~repro.replication.ReplicaMap` a --replicas asks for."""
    from repro.errors import ReplicationError
    from repro.replication import ReplicaMap

    if spec is None:
        return None
    try:
        if spec == "full":
            return ReplicaMap.full_copy(topology, catalog)
        if spec == "heat" or spec.startswith("heat:"):
            degree = 1
            if spec.startswith("heat:"):
                try:
                    degree = int(spec.split(":", 1)[1])
                except ValueError:
                    raise SystemExit(
                        f"invalid --replicas degree in {spec!r}"
                    ) from None
            return ReplicaMap.heat_placement(
                topology, catalog, batch, degree=degree, seed=seed
            )
        return ReplicaMap.load(spec)
    except ReplicationError as exc:
        raise SystemExit(f"invalid --replicas {spec!r}: {exc}") from exc


def _parse_kinds(spec):
    """Comma-separated FaultKind values -> tuple, or None for the default."""
    from repro.faults.plan import FaultKind

    if spec is None:
        return None
    kinds = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            kinds.append(FaultKind(token))
        except ValueError:
            valid = ", ".join(k.value for k in FaultKind)
            raise SystemExit(
                f"unknown fault kind {token!r} (valid: {valid})"
            ) from None
    if not kinds:
        raise SystemExit("--kinds names no fault kind")
    return tuple(kinds)


def _solve_environment(args: argparse.Namespace, command: str):
    """Load an environment file and solve it: shared by the env commands."""
    from repro.core.parallel import ParallelConfig
    from repro.core.scheduler import VideoScheduler
    from repro.errors import ScheduleError
    from repro.io import load_environment
    from repro.obs import NULL_OBS, Observability

    if not args.env_file:
        raise SystemExit(f"{command} requires an environment JSON path")
    topology, catalog, batch = load_environment(args.env_file)
    if batch is None:
        raise SystemExit(
            f"{args.env_file} contains no 'requests' section to schedule"
        )
    try:
        parallel = ParallelConfig(
            backend=args.phase1_backend, workers=args.phase1_workers
        )
    except ScheduleError as exc:
        raise SystemExit(f"invalid phase-1 options: {exc}") from exc
    replicas = _parse_replicas(
        getattr(args, "replicas", None), topology, catalog, batch,
        seed=args.seed,
    )
    want_journal = bool(args.journal_out or args.explain)
    want_telemetry = bool(args.metrics_out or args.trace_out or want_journal)
    obs = (
        Observability.on(journal=want_journal) if want_telemetry else NULL_OBS
    )
    scheduler = VideoScheduler(
        topology, catalog, parallel=parallel, obs=obs, replicas=replicas
    )
    result = scheduler.solve(batch)
    return topology, catalog, batch, scheduler, result, obs, want_telemetry


def _print_violations(violations) -> None:
    print(f"INFEASIBLE: {len(violations)} violation(s)")
    for v in violations:
        print(f"  {v}")


def _write_telemetry(args: argparse.Namespace, obs) -> None:
    from repro.obs import write_journal_jsonl, write_metrics, write_trace_jsonl

    if args.metrics_out:
        write_metrics(args.metrics_out, obs)
        _log.info("wrote metrics snapshot to %s", args.metrics_out)
    if args.trace_out:
        write_trace_jsonl(args.trace_out, obs.tracer.records)
        _log.info(
            "wrote %d span record(s) to %s",
            len(obs.tracer.records),
            args.trace_out,
        )
    if args.journal_out:
        write_journal_jsonl(args.journal_out, obs.journal)
        _log.info(
            "wrote %d journal event(s) to %s",
            len(obs.journal),
            args.journal_out,
        )
    if args.explain:
        print(obs.journal.format_timeline(args.explain))


def _run_environment(args: argparse.Namespace) -> int:
    """Schedule an environment file from disk and print the outcome.

    Returns a non-zero exit code (printing every
    :class:`~repro.sim.validate.Violation`) when the solved schedule fails
    end-to-end validation.
    """
    from repro.analysis import format_table
    from repro.baselines import network_only_cost
    from repro.core.costmodel import CostModel
    from repro.obs import NULL_OBS
    from repro.sim.engine import SimulationEngine
    from repro.sim.validate import validate_schedule

    topology, catalog, batch, scheduler, result, obs, want_telemetry = (
        _solve_environment(args, "run-env")
    )
    if want_telemetry:
        # replay the schedule so the snapshot carries the simulate span
        # and the per-resource peak gauges
        SimulationEngine(scheduler.cost_model, obs=obs).run(result.schedule)
    cm = CostModel(topology, catalog)
    _write_telemetry(args, obs)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["requests", len(batch)],
                ["deliveries", len(result.schedule.deliveries)],
                ["residencies", len(result.schedule.residencies)],
                ["network cost ($)", result.cost.network],
                ["storage cost ($)", result.cost.storage],
                ["total cost ($)", result.total_cost],
                ["network-only baseline ($)", network_only_cost(batch, cm)],
                ["overflow fixes", result.resolution.iterations],
                ["phase-1 backend", args.phase1_backend],
                [
                    "cost-cache hit rate",
                    f"{100 * result.cache_hit_rate:.1f} % "
                    f"({result.cache_stats.hits}/{result.cache_stats.lookups})",
                ],
            ],
            title=f"schedule for {args.env_file}",
        )
    )
    violations = validate_schedule(result.schedule, batch, scheduler.cost_model)
    if violations:
        _print_violations(violations)
        return 1
    return 0


def _simulate_environment(args: argparse.Namespace) -> int:
    """Schedule, replay, and judge an environment file.

    Prints the replay's event/peak statistics and the feasibility verdict;
    exits non-zero with every violation listed when the schedule is
    infeasible.
    """
    from repro.analysis import format_table
    from repro.sim.engine import SimulationEngine
    from repro.sim.validate import validate_schedule

    _, _, batch, scheduler, result, obs, _ = _solve_environment(
        args, "simulate"
    )
    report = SimulationEngine(scheduler.cost_model, obs=obs).run(
        result.schedule
    )
    _write_telemetry(args, obs)
    t0, t1 = report.makespan
    peak_storage = max(
        (load.reserved_peak for load in report.storages.values()), default=0.0
    )
    peak_link = max((load.peak for load in report.links.values()), default=0.0)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["requests", len(batch)],
                ["events replayed", len(report.trace)],
                ["streams", report.n_streams],
                ["residencies", report.n_residencies],
                ["makespan (s)", t1 - t0],
                ["peak reserved storage (bytes)", peak_storage],
                ["peak link bandwidth (B/s)", peak_link],
                ["total cost ($)", result.total_cost],
            ],
            title=f"simulation of {args.env_file}",
        )
    )
    violations = validate_schedule(result.schedule, batch, scheduler.cost_model)
    if violations:
        _print_violations(violations)
        return 1
    print("feasible: no violations")
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    """Fault drill: inject a scenario, report damage, recover, re-validate.

    Returns non-zero when the patched schedule fails validation on the
    fault-masked topology (the recovery contract), printing the violations.
    """
    import json
    import pathlib

    from repro.analysis import format_table
    from repro.core.costmodel import CostModel
    from repro.core.parallel import ParallelConfig
    from repro.faults.contingency import ContingencyScheduler
    from repro.faults.inject import masked_topology
    from repro.faults.plan import FaultPlan
    from repro.faults.report import build_degraded_report
    from repro.sim.validate import validate_schedule
    from repro.workload.requests import RequestBatch

    topology, catalog, batch, scheduler, result, obs, _ = _solve_environment(
        args, "run-faults"
    )
    if args.scenario:
        plan = FaultPlan.load(args.scenario)
        _log.info("loaded %d fault(s) from %s", len(plan), args.scenario)
    else:
        t0, t1 = batch.span
        tail = max(v.playback for v in catalog)
        plan = FaultPlan.generate(
            topology,
            seed=args.seed,
            horizon=(t0, t1 + tail),
            n_faults=args.n_faults,
            kinds=_parse_kinds(args.kinds),
        )
        _log.info("generated %d fault(s) from seed %d", len(plan), args.seed)
    if args.scenario_out:
        plan.save(args.scenario_out)
        _log.info("wrote fault scenario to %s", args.scenario_out)

    degraded = build_degraded_report(
        result.schedule, scheduler.cost_model, plan, obs=obs
    )
    recovery = ContingencyScheduler(
        scheduler.cost_model,
        parallel=ParallelConfig(
            backend=args.phase1_backend, workers=args.phase1_workers
        ),
        obs=obs,
    ).recover(result.schedule, plan, batch=batch)
    _write_telemetry(args, obs)

    print(
        format_table(
            ["quantity", "value"],
            [
                ["faults injected", len(plan)],
                ["requests", len(batch)],
                ["requests dropped (degraded)", degraded.requests_dropped],
                ["requests late (degraded)", degraded.requests_late],
                ["stranded residencies", len(degraded.stranded)],
                ["impacted videos", recovery.videos_resolved],
                ["requests saved", recovery.requests_saved],
                ["requests lost", recovery.requests_lost],
                ["psi before ($)", recovery.cost_before.total],
                ["psi after ($)", recovery.cost_after.total],
                ["psi delta ($)", recovery.cost_delta],
                [
                    "recovery overflow fixes",
                    0
                    if recovery.resolution is None
                    else recovery.resolution.iterations,
                ],
                ["phase-1 backend", args.phase1_backend],
            ],
            title=f"fault drill for {args.env_file} [{plan.name or 'scenario'}]",
        )
    )

    from repro.errors import FaultError

    replicas = scheduler.cost_model.replicas
    try:
        masked = masked_topology(topology, plan)
        masked_cm = CostModel(
            masked,
            catalog,
            replicas=(
                replicas.restricted_to(masked.node_names)
                if replicas is not None
                else None
            ),
        )
    except FaultError:
        # total warehouse loss: the patched schedule holds only unimpacted
        # files, which the healthy model can judge
        masked_cm = scheduler.cost_model
    lost = set(recovery.lost)
    surviving = RequestBatch(r for r in batch if r not in lost)
    violations = validate_schedule(recovery.schedule, surviving, masked_cm)
    if args.report_out:
        doc = {
            "environment": str(args.env_file),
            "degraded": degraded.to_json_dict(),
            "recovery": recovery.to_json_dict(),
            "patched_violations": [
                {"kind": v.kind, "message": v.message} for v in violations
            ],
        }
        pathlib.Path(args.report_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        _log.info("wrote fault report to %s", args.report_out)
    if violations:
        _print_violations(violations)
        return 1
    print("recovery feasible: patched schedule valid on masked topology")
    return 0


def _run_online(args: argparse.Namespace) -> int:
    """Online drill: replay a fault feed through the amendment loop.

    Loads the environment into a :class:`~repro.service.VORService`,
    closes the cycle, then drives
    :class:`~repro.online.OnlineAmendmentLoop` with the feed (loaded from
    ``--feed`` JSONL or generated from ``--seed``).  Exits non-zero when
    the loop ends without a valid schedule.  Malformed or unreadable
    feeds exit non-zero with a one-line diagnostic.
    """
    import json
    import pathlib

    from repro.analysis import format_table
    from repro.core.parallel import ParallelConfig
    from repro.errors import FaultError, ReproError, ScheduleError
    from repro.faults.feed import FaultFeed
    from repro.io import load_environment
    from repro.obs import NULL_OBS, Observability
    from repro.online import (
        OnlineAmendmentLoop,
        OnlineLoopConfig,
        OnlineError,
        TransientFailureInjector,
    )
    from repro.service import VORService

    if not args.env_file:
        raise SystemExit("run-online requires an environment JSON path")
    topology, catalog, batch = load_environment(args.env_file)
    if batch is None:
        raise SystemExit(
            f"{args.env_file} contains no 'requests' section to schedule"
        )
    try:
        parallel = ParallelConfig(
            backend=args.phase1_backend, workers=args.phase1_workers
        )
    except ScheduleError as exc:
        raise SystemExit(f"invalid phase-1 options: {exc}") from exc
    replicas = _parse_replicas(
        args.replicas, topology, catalog, batch, seed=args.seed
    )
    want_journal = bool(args.journal_out or args.explain)
    want_telemetry = bool(args.metrics_out or args.trace_out or want_journal)
    obs = (
        Observability.on(journal=want_journal) if want_telemetry else NULL_OBS
    )

    t0, t1 = batch.span
    tail = max(v.playback for v in catalog)
    if args.feed:
        try:
            feed = FaultFeed.load(args.feed)
        except FaultError as exc:
            raise SystemExit(f"invalid --feed: {exc}") from exc
        _log.info("loaded %d event(s) from %s", len(feed), args.feed)
    else:
        feed = FaultFeed.generate(
            topology,
            seed=args.seed,
            horizon=(t0, t1 + tail),
            n_events=args.feed_events,
            kinds=_parse_kinds(args.kinds),
        )
        _log.info(
            "generated %d event(s) from seed %d", len(feed), args.seed
        )
    if args.feed_out:
        feed.save(args.feed_out)
        _log.info("wrote fault feed to %s", args.feed_out)
    try:
        config = OnlineLoopConfig(
            debounce=args.debounce,
            deadline=args.deadline,
            max_retries=args.max_retries,
            seed=args.seed,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            shed_per_degraded_batch=args.shed,
            masking=args.masking,
        )
        injector = (
            TransientFailureInjector.parse(args.inject_failures)
            if args.inject_failures
            else None
        )
    except (OnlineError, ScheduleError) as exc:
        raise SystemExit(f"invalid online options: {exc}") from exc

    service = VORService(
        topology,
        catalog,
        lead_time=0.0,
        parallel=parallel,
        obs=obs,
        replicas=replicas,
    )
    for r in batch:
        service.reserve(
            r.user_id, r.video_id, r.start_time,
            local_storage=r.local_storage, now=0.0,
        )
    if not 0.0 < args.cycle_fraction <= 1.0:
        raise SystemExit(
            f"--cycle-fraction must be in (0, 1], got {args.cycle_fraction}"
        )
    cycle_end = t0 + args.cycle_fraction * (t1 - t0)
    report = service.close_cycle(cycle_end=cycle_end)
    if not report.feasible:
        _print_violations(report.violations)
        return 1

    loop = OnlineAmendmentLoop(
        service, config, obs=obs, failure_injector=injector
    )
    try:
        run = loop.run(feed, report)
    except ReproError as exc:
        raise SystemExit(f"online run failed: {exc}") from exc

    print(
        format_table(
            ["quantity", "value"],
            [
                ["feed events", run.events_total],
                ["amendment batches", run.batches_total],
                ["batches amended", run.amended],
                ["degraded batches", run.degraded_batches],
                ["retries", run.retries_total],
                ["deadline misses", run.deadline_misses],
                ["failures injected", run.failures_injected],
                ["reservations shed", run.shed_total],
                ["breaker state", loop.breaker.state],
                ["masking", config.masking],
                ["phase-1 backend", args.phase1_backend],
            ],
            title=f"online drill for {args.env_file} [{feed.name or 'feed'}]",
        )
    )
    print(run.summary())

    from repro.obs.slo import SLOError, SLOPolicy, online_indicators

    try:
        policy = SLOPolicy.load(args.slo) if args.slo else SLOPolicy.default()
    except SLOError as exc:
        raise SystemExit(f"invalid --slo: {exc}") from exc
    indicators = online_indicators(run, reservations=len(batch))
    slo_report = policy.evaluate(indicators)
    slo_report.record(obs.metrics)
    print(slo_report.format_report())
    _write_telemetry(args, obs)

    if args.online_report_out:
        doc = {
            "environment": str(args.env_file),
            "feed": feed.name,
            "seed": feed.seed,
            "alive": run.alive,
            "final_feasible": (
                run.final.feasible if run.final is not None else False
            ),
            "deadline_misses": run.deadline_misses,
            "deterministic": run.deterministic_dict(),
            "slo": {
                "indicators": indicators,
                "policy": policy.to_dict(),
                "evaluation": slo_report.to_dict(),
            },
        }
        pathlib.Path(args.online_report_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        _log.info("wrote online report to %s", args.online_report_out)
    if run.final is None or not run.final.feasible:
        print("online run ended without a valid schedule")
        return 1
    print("online run alive: final schedule valid")
    return 0


def _run_horizon(args: argparse.Namespace) -> int:
    """Multi-cycle drill: chained cycles, migration, boundary fault feeds.

    Loads the environment's topology and catalog (any ``requests``
    section is ignored -- the horizon generates one drifting batch per
    cycle from ``--seed``), runs the
    :class:`~repro.horizon.HorizonOrchestrator`, prints the per-cycle
    table and summary, and exits non-zero when any cycle ends
    infeasible.
    """
    import json
    import pathlib

    from repro.analysis import format_table
    from repro.core.parallel import ParallelConfig
    from repro.errors import FaultError, ReproError, ScheduleError
    from repro.faults.feed import FaultFeed
    from repro.horizon import (
        HorizonConfig,
        HorizonOrchestrator,
        MigrationConfig,
        generate_drifting_cycles,
    )
    from repro.io import load_environment
    from repro.obs import NULL_OBS, Observability
    from repro.online import OnlineLoopConfig

    if not args.env_file:
        raise SystemExit("run-horizon requires an environment JSON path")
    topology, catalog, batch = load_environment(args.env_file)
    if batch is not None:
        _log.info(
            "ignoring the environment's %d-request batch: run-horizon "
            "generates one drifting batch per cycle from --seed",
            len(batch),
        )
    try:
        parallel = ParallelConfig(
            backend=args.phase1_backend, workers=args.phase1_workers
        )
    except ScheduleError as exc:
        raise SystemExit(f"invalid phase-1 options: {exc}") from exc
    if args.cycles < 1:
        raise SystemExit(f"--cycles must be >= 1, got {args.cycles}")
    if args.cycle_length <= 0:
        raise SystemExit(
            f"--cycle-length must be positive, got {args.cycle_length}"
        )
    cycles = generate_drifting_cycles(
        topology,
        catalog,
        cycles=args.cycles,
        cycle_length=args.cycle_length,
        seed=args.seed,
        churn=args.churn,
        users_per_neighborhood=args.users,
    )
    replicas = _parse_replicas(
        args.replicas, topology, catalog, cycles[0][0], seed=args.seed
    )
    if replicas is None and not args.no_migrate:
        # migration needs explicit homes to move; default to the same
        # heat placement --replicas heat:K would build
        replicas = _parse_replicas(
            f"heat:{args.degree}", topology, catalog, cycles[0][0],
            seed=args.seed,
        )
    feed = None
    if args.feed:
        try:
            feed = FaultFeed.load(args.feed)
        except FaultError as exc:
            raise SystemExit(f"invalid --feed: {exc}") from exc
        _log.info("loaded %d event(s) from %s", len(feed), args.feed)
    if args.feed_out and feed is not None:
        feed.save(args.feed_out)
        _log.info("wrote fault feed to %s", args.feed_out)

    want_journal = bool(args.journal_out or args.explain)
    want_telemetry = bool(args.metrics_out or args.trace_out or want_journal)
    obs = (
        Observability.on(journal=want_journal) if want_telemetry else NULL_OBS
    )
    migration = (
        None
        if args.no_migrate
        else MigrationConfig(
            degree=args.degree,
            seed=args.seed,
            staging_window=args.staging_window or None,
        )
    )
    config = HorizonConfig(
        migration=migration,
        online=OnlineLoopConfig(
            debounce=args.debounce, masking=args.masking, seed=args.seed
        ),
    )
    try:
        orchestrator = HorizonOrchestrator(
            topology,
            catalog,
            replicas=replicas,
            parallel=parallel,
            obs=obs,
            config=config,
        )
        report = orchestrator.run(cycles, feed=feed)
    except ReproError as exc:
        raise SystemExit(f"horizon run failed: {exc}") from exc

    rows = [
        [
            c.index,
            c.requests,
            c.psi_net,
            c.fault_events,
            c.carried_events,
            c.resumed,
            c.restarted,
            "yes" if c.feasible else "NO",
        ]
        for c in report.cycles
    ]
    print(
        format_table(
            [
                "cycle", "requests", "psi net ($)", "fault events",
                "carried", "resumed", "restarted", "feasible",
            ],
            rows,
            title=f"horizon for {args.env_file} "
            f"[{args.cycles} cycle(s), seed {args.seed}, "
            f"{'frozen' if args.no_migrate else 'migrating'}]",
        )
    )
    print(report.summary())
    _write_telemetry(args, obs)

    if args.horizon_report_out:
        doc = {
            "environment": str(args.env_file),
            "seed": args.seed,
            "cycles_requested": args.cycles,
            "cycle_length": args.cycle_length,
            "churn": args.churn,
            "migration": not args.no_migrate,
            "feed": feed.name if feed is not None else None,
            "deterministic": report.deterministic_dict(),
        }
        pathlib.Path(args.horizon_report_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        _log.info("wrote horizon report to %s", args.horizon_report_out)
    if not report.feasible:
        print("horizon ended with an infeasible cycle")
        return 1
    print("horizon feasible: every cycle valid")
    return 0


def _run_gateway(args: argparse.Namespace) -> int:
    """Admission drill: replay a booking feed through the gateway.

    Loads the environment's topology and catalog (any ``requests``
    section is ignored -- the bookings come from the feed), builds the
    ``--policy`` admission chain and the backpressure envelope, and seals
    ``--seals`` cycles into a :class:`~repro.service.VORService`.  Exits
    non-zero when a sealed cycle is infeasible.  Malformed feeds and
    policy specs exit non-zero with a one-line diagnostic.
    """
    import json
    import pathlib

    from repro.analysis import format_table
    from repro.core.parallel import ParallelConfig
    from repro.errors import GatewayError, ReproError, ScheduleError
    from repro.gateway import (
        GatewayConfig,
        RequestFeed,
        ReservationGateway,
        build_policy,
    )
    from repro.io import load_environment
    from repro.obs import NULL_OBS, Observability
    from repro.service import VORService

    if not args.env_file:
        raise SystemExit("run-gateway requires an environment JSON path")
    topology, catalog, _ = load_environment(args.env_file)
    try:
        parallel = ParallelConfig(
            backend=args.phase1_backend, workers=args.phase1_workers
        )
    except ScheduleError as exc:
        raise SystemExit(f"invalid phase-1 options: {exc}") from exc

    if args.request_feed:
        try:
            feed = RequestFeed.load(args.request_feed)
        except GatewayError as exc:
            raise SystemExit(f"invalid --request-feed: {exc}") from exc
        _log.info(
            "loaded %d booking(s) from %s", len(feed), args.request_feed
        )
    else:
        feed = RequestFeed.generate(
            topology,
            catalog,
            seed=args.seed,
            users_per_neighborhood=args.users,
        )
        _log.info(
            "generated %d booking(s) from seed %d", len(feed), args.seed
        )
    if not feed:
        raise SystemExit("request feed is empty: nothing to gate")
    if args.request_feed_out:
        feed.save(args.request_feed_out)
        _log.info("wrote request feed to %s", args.request_feed_out)

    replicas = _parse_replicas(
        args.replicas, topology, catalog, feed.batch(), seed=args.seed
    )
    want_journal = bool(args.journal_out or args.explain)
    want_telemetry = bool(args.metrics_out or args.trace_out or want_journal)
    obs = (
        Observability.on(journal=want_journal) if want_telemetry else NULL_OBS
    )

    try:
        policy = build_policy(args.policy, topology=topology, catalog=catalog)
        config = GatewayConfig(
            max_batch=args.max_batch, queue_depth=args.queue_depth
        )
    except GatewayError as exc:
        raise SystemExit(f"invalid gateway options: {exc}") from exc
    if args.seals < 1:
        raise SystemExit(f"--seals must be >= 1, got {args.seals}")

    service = VORService(
        topology, catalog, parallel=parallel, obs=obs, replicas=replicas
    )
    gateway = ReservationGateway(service, policy=policy, config=config)

    # Intermediate boundaries split the booking span; the last one covers
    # every showing so the final seal leaves nothing due.
    a0, a1 = feed.span
    last = max(a1, feed.showing_span[1])
    boundaries = [
        a0 + (i + 1) / args.seals * (a1 - a0) for i in range(args.seals - 1)
    ]
    boundaries.append(last)

    try:
        run = gateway.run(feed, boundaries)
    except ReproError as exc:
        raise SystemExit(f"gateway run failed: {exc}") from exc

    rows = [
        [
            c.index,
            c.offered,
            c.admitted,
            c.promoted,
            c.rejected_total,
            c.queued,
            c.shed,
            c.quote_total,
            c.realized_total,
            "yes" if c.feasible else "NO",
        ]
        for c in run.cycles
    ]
    print(
        format_table(
            [
                "cycle", "offered", "admitted", "promoted", "rejected",
                "queued", "shed", "quoted ($)", "realized ($)", "feasible",
            ],
            rows,
            title=f"gateway for {args.env_file} "
            f"[{feed.name or 'feed'}, policy {args.policy}]",
        )
    )
    print(run.summary())

    from repro.obs.slo import SLOError, SLOPolicy, gateway_indicators

    try:
        slo_policy = (
            SLOPolicy.load(args.slo) if args.slo
            else SLOPolicy.gateway_default()
        )
    except SLOError as exc:
        raise SystemExit(f"invalid --slo: {exc}") from exc
    indicators = gateway_indicators(run)
    slo_report = slo_policy.evaluate(indicators)
    slo_report.record(obs.metrics)
    print(slo_report.format_report())
    _write_telemetry(args, obs)

    if args.gateway_report_out:
        doc = {
            "environment": str(args.env_file),
            "seed": feed.seed,
            "policy": args.policy,
            "max_batch": args.max_batch,
            "queue_depth": args.queue_depth,
            "seals": args.seals,
            "slo": {
                "indicators": indicators,
                "policy": slo_policy.to_dict(),
                "evaluation": slo_report.to_dict(),
            },
            **run.to_json_dict(),
        }
        pathlib.Path(args.gateway_report_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        _log.info("wrote gateway report to %s", args.gateway_report_out)
    if not run.feasible:
        print("gateway run ended with an infeasible cycle")
        return 1
    print("gateway run feasible: every sealed cycle valid")
    return 0


def _slo_check(args: argparse.Namespace) -> int:
    """Gate an online report JSON against an SLO policy (non-zero on breach).

    Reads the ``slo.indicators`` section that ``run-online
    --online-report-out`` embeds, re-evaluates it against ``--slo`` (or
    the built-in default policy), prints the verdict, and exits 1 when
    any SLO is breached.
    """
    import json
    import pathlib

    from repro.obs.slo import SLOError, SLOPolicy

    if not args.env_file:
        raise SystemExit("slo-check requires an online report JSON path")
    try:
        doc = json.loads(pathlib.Path(args.env_file).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read {args.env_file}: {exc}") from exc
    indicators = (doc.get("slo") or {}).get("indicators")
    if not isinstance(indicators, dict):
        raise SystemExit(
            f"{args.env_file} has no 'slo.indicators' section (write one "
            "with 'run-online --online-report-out')"
        )
    try:
        policy = SLOPolicy.load(args.slo) if args.slo else SLOPolicy.default()
    except SLOError as exc:
        raise SystemExit(f"invalid --slo: {exc}") from exc
    report = policy.evaluate(indicators)
    print(report.format_report())
    if not report.ok:
        for r in report.breaches:
            _log.error(
                "SLO %s breached: %s %s %g, measured %g",
                r.spec.name, r.spec.indicator, r.spec.op, r.spec.objective,
                r.value,
            )
        return 1
    return 0


def _report_dashboard(args: argparse.Namespace) -> int:
    """Terminal dashboard over run artifacts (``report --telemetry ...``).

    Renders phase wall-time totals, the stitched critical path, the
    deterministic metric families, and (with ``--journal``) the event mix
    and per-request timelines from a journal JSONL.
    """
    import json
    import pathlib

    from repro.analysis import ascii_chart, format_table
    from repro.analysis.series import Series
    from repro.obs import (
        JournalError,
        SpanRecord,
        format_critical_paths,
        load_journal_jsonl,
    )

    doc = {}
    if args.telemetry:
        try:
            doc = json.loads(pathlib.Path(args.telemetry).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(
                f"cannot read --telemetry {args.telemetry}: {exc}"
            ) from exc

    phases = doc.get("phases") or {}
    if phases:
        rows = [
            [name, agg["count"], agg["total_seconds"], agg["max_seconds"]]
            for name, agg in phases.items()
        ]
        print(
            format_table(
                ["phase", "spans", "total s", "max s"],
                rows,
                title=f"phase wall time [{args.telemetry}]",
                float_fmt="{:.4f}",
            )
        )
        busiest = sorted(
            phases.items(), key=lambda kv: -kv[1]["total_seconds"]
        )[:8]
        if len(busiest) > 1:
            print()
            print(
                ascii_chart(
                    [
                        Series(
                            "total seconds",
                            x=tuple(float(i) for i in range(len(busiest))),
                            y=tuple(v["total_seconds"] for _, v in busiest),
                        )
                    ],
                    title="wall time by phase (ranked): "
                    + ", ".join(f"{i}={k}" for i, (k, _) in enumerate(busiest)),
                )
            )

    spans = doc.get("spans") or []
    if spans:
        records = [
            SpanRecord(
                name=s["name"],
                start=s["start"],
                duration=s["duration"],
                parent=s.get("parent"),
                attrs=tuple(sorted((s.get("attrs") or {}).items())),
                span_id=s.get("span_id", 0),
                parent_id=s.get("parent_id", 0),
            )
            for s in spans
        ]
        print()
        print(format_critical_paths(records, limit=3))

    metrics = doc.get("metrics") or {}
    if metrics:
        rows = []
        for name in sorted(metrics):
            fam = metrics[name]
            for child in fam.get("values", []):
                labels = child.get("labels") or {}
                label_txt = ",".join(f"{k}={v}" for k, v in labels.items())
                value = child.get("value")
                if value is None:
                    value = child.get("count", "")
                rows.append([name, label_txt, value])
        print()
        print(
            format_table(
                ["metric", "labels", "value"],
                rows[:40],
                title=f"metrics ({len(metrics)} families, "
                f"top {min(40, len(rows))} series)",
            )
        )

    if args.horizon_report:
        try:
            hdoc = json.loads(pathlib.Path(args.horizon_report).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(
                f"cannot read --horizon-report {args.horizon_report}: {exc}"
            ) from exc
        det = hdoc.get("deterministic") or {}
        cycles = det.get("cycles") or []
        if cycles:
            print()
            print(
                format_table(
                    [
                        "cycle", "requests", "psi net ($)", "fault events",
                        "resumed", "restarted", "feasible",
                    ],
                    [
                        [
                            c.get("index"),
                            c.get("requests"),
                            c.get("psi_net"),
                            c.get("fault_events"),
                            c.get("resumed"),
                            c.get("restarted"),
                            "yes" if c.get("feasible") else "NO",
                        ]
                        for c in cycles
                    ],
                    title=f"horizon cycles [{args.horizon_report}]",
                )
            )
        print()
        print(
            format_table(
                ["quantity", "value"],
                [
                    ["cycles run", len(cycles)],
                    ["migrations accepted", det.get("migrations_accepted")],
                    ["migrations rejected", det.get("migrations_rejected")],
                    ["staging cost ($)", det.get("staging_cost")],
                    ["streams resumed", det.get("resumed")],
                    ["streams restarted", det.get("restarted")],
                    ["resume credit ($)", det.get("resume_credit")],
                    ["horizon total psi ($)", det.get("total_psi")],
                ],
                title="horizon summary",
            )
        )
        trajectory = det.get("psi_trajectory") or []
        if len(trajectory) > 1:
            print()
            print(
                ascii_chart(
                    [
                        Series(
                            "psi net ($)",
                            x=tuple(float(i) for i in range(len(trajectory))),
                            y=tuple(float(p) for p in trajectory),
                        )
                    ],
                    title="per-cycle net psi trajectory",
                )
            )

    if args.gateway_report:
        try:
            gdoc = json.loads(pathlib.Path(args.gateway_report).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(
                f"cannot read --gateway-report {args.gateway_report}: {exc}"
            ) from exc
        det = gdoc.get("deterministic") or {}
        gcycles = det.get("cycles") or []
        if gcycles:
            print()
            print(
                format_table(
                    [
                        "cycle", "offered", "admitted", "rejected",
                        "queued", "shed", "quote error", "feasible",
                    ],
                    [
                        [
                            c.get("index"),
                            c.get("offered"),
                            c.get("admitted"),
                            sum((c.get("rejected") or {}).values()),
                            c.get("queued"),
                            c.get("shed"),
                            c.get("quote_error"),
                            "yes" if c.get("feasible") else "NO",
                        ]
                        for c in gcycles
                    ],
                    title=f"gateway cycles [{args.gateway_report}]",
                )
            )
        rejected = det.get("rejected") or {}
        print()
        print(
            format_table(
                ["quantity", "value"],
                [
                    ["cycles sealed", len(gcycles)],
                    ["bookings offered", det.get("offered")],
                    ["bookings admitted", det.get("admitted")],
                    ["bookings shed", det.get("shed")],
                    ["admission ratio", det.get("admission_ratio")],
                    ["shed rate", det.get("shed_rate")],
                    ["worst quote error", det.get("quote_error")],
                    ["unconsumed bookings", det.get("unconsumed")],
                    *[
                        [f"rejected[{reason}]", n]
                        for reason, n in sorted(rejected.items())
                    ],
                ],
                title="gateway summary",
            )
        )

    if args.journal:
        try:
            journal = load_journal_jsonl(args.journal)
        except JournalError as exc:
            raise SystemExit(f"cannot load --journal: {exc}") from exc
        except OSError as exc:
            raise SystemExit(
                f"cannot read --journal {args.journal}: {exc}"
            ) from exc
        print()
        print(
            format_table(
                ["event", "count"],
                [[k, v] for k, v in journal.counts().items()],
                title=f"journal event mix [{args.journal}] "
                f"({len(journal)} events, "
                f"{len(journal.request_ids())} requests)",
            )
        )
        if args.explain:
            print()
            print(journal.format_timeline(args.explain))
    return 0


def _start_profile(args: argparse.Namespace):
    """Arm --profile; returns opaque state for :func:`_finish_profile`."""
    if not args.profile:
        return None
    if args.profile == "cprofile":
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        return ("cprofile", profiler)
    import tracemalloc

    tracemalloc.start()
    return ("tracemalloc", None)


def _finish_profile(args: argparse.Namespace, state) -> None:
    """Write the top-N hotspot artifact (stable schema, sorted output)."""
    if state is None:
        return
    import json
    import pathlib

    kind, profiler = state
    if kind == "cprofile":
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler)
        rows = [
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": ncalls,
                "tottime": tottime,
                "cumtime": cumtime,
            }
            for (filename, line, name), (
                _cc, ncalls, tottime, cumtime, _callers,
            ) in stats.stats.items()
        ]
        rows.sort(key=lambda r: (-r["cumtime"], -r["tottime"], r["function"]))
        doc = {"profiler": "cprofile", "top": rows[:25]}
    else:
        import tracemalloc

        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        rows = [
            {
                "location": f"{stat.traceback[0].filename}:"
                f"{stat.traceback[0].lineno}",
                "size_bytes": stat.size,
                "count": stat.count,
            }
            for stat in snapshot.statistics("lineno")[:25]
        ]
        doc = {"profiler": "tracemalloc", "top": rows}
    pathlib.Path(args.profile_out).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    _log.info("wrote %s hotspot profile to %s", kind, args.profile_out)


def _dispatch(args: argparse.Namespace) -> int:
    if args.experiment == "all":
        for name in ["worked-example", *sorted(_FIGURES), "table5", "gap", "ablations"]:
            print("=" * 78)
            _run_one(name, args)
            print()
    elif args.experiment == "report":
        if args.telemetry or args.horizon_report or args.gateway_report or args.journal:
            return _report_dashboard(args)
        _write_report(args)
    elif args.experiment == "run-env":
        return _run_environment(args)
    elif args.experiment == "simulate":
        return _simulate_environment(args)
    elif args.experiment == "run-faults":
        return _run_faults(args)
    elif args.experiment == "run-online":
        return _run_online(args)
    elif args.experiment == "run-horizon":
        return _run_horizon(args)
    elif args.experiment == "run-gateway":
        return _run_gateway(args)
    elif args.experiment == "slo-check":
        return _slo_check(args)
    else:
        _run_one(args.experiment, args)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(args.log_level)
    profile_state = _start_profile(args)
    try:
        return _dispatch(args)
    finally:
        _finish_profile(args, profile_state)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
