"""Command-line interface: reproduce any paper figure/table from a shell.

Usage::

    vor-repro worked-example
    vor-repro fig5 [--quick] [--seed N]
    vor-repro fig6 | fig7 | fig8 | fig9
    vor-repro table5 [--quick]
    vor-repro gap
    vor-repro ablations | contention
    vor-repro all [--quick]
    vor-repro report [--quick] [--out DIR]
    vor-repro run-env ENV.json     # schedule an environment file from disk

``--quick`` swaps the Table 4 configuration for the scaled-down variant
(same shapes, ~20x faster).  Every command prints the reproduced table and
an ASCII rendition of the figure.

Observability: ``run-env --metrics-out metrics.json --trace-out trace.jsonl``
schedules an environment with a live :class:`repro.obs.Observability` handle
and writes the metric snapshot (JSON, or Prometheus text for a ``.prom``
path) and the span log.  ``--log-level`` tunes the stderr logging of every
``repro.*`` module (default ``info``).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro.obs import configure_logging

from repro.experiments import (
    ExperimentRunner,
    ablation_bandwidth,
    ablation_deposit_scope,
    ablation_heat_metrics,
    contention_sweep,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    optimality_gap,
    paper_config,
    quick_config,
    table5,
    worked_example,
)

_FIGURES = {
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}

_log = logging.getLogger(__name__)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vor-repro",
        description=(
            "Reproduce the evaluation of Won & Srivastava, 'Distributed "
            "Service Paradigm for Remote Video Retrieval Request' (HPDC'97)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURES)
        + [
            "table5",
            "gap",
            "ablations",
            "contention",
            "worked-example",
            "all",
            "report",
            "run-env",
        ],
        help="which paper artifact to reproduce ('report' writes all of "
        "them to --out; 'run-env' schedules an environment JSON)",
    )
    parser.add_argument(
        "env_file",
        nargs="?",
        default=None,
        help="environment JSON for the 'run-env' command",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the scaled-down configuration (fast, same shapes)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default 1)"
    )
    parser.add_argument(
        "--out",
        default="repro-report",
        help="output directory for the 'report' command (default ./repro-report)",
    )
    parser.add_argument(
        "--phase1-backend",
        choices=["serial", "thread", "process"],
        default="serial",
        help="Phase-1 execution backend for 'run-env' (default serial; "
        "results are bit-identical across backends)",
    )
    parser.add_argument(
        "--phase1-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool size for --phase1-backend thread/process "
        "(default: CPU count)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error", "critical"],
        default="info",
        help="stderr logging verbosity for repro.* modules (default info)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metric snapshot for 'run-env' "
        "(.json for a JSON telemetry bundle, .prom/.txt for Prometheus "
        "text exposition)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span records as JSON Lines for 'run-env'",
    )
    return parser


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    cfg = quick_config() if args.quick else paper_config()
    cfg = cfg.but(workload_seed=args.seed)
    return ExperimentRunner(cfg)


def _run_one(name: str, args: argparse.Namespace) -> None:
    t0 = time.perf_counter()
    if name == "worked-example":
        print(worked_example().as_table())
    elif name in _FIGURES:
        runner = _runner(args)
        print(_FIGURES[name](runner).render())
    elif name == "table5":
        runner = _runner(args)
        print(table5(runner).as_table())
    elif name == "gap":
        print(optimality_gap().as_table())
    elif name == "contention":
        cfg = quick_config(n_files=150) if args.quick else paper_config()
        users = (4, 10, 24) if args.quick else (5, 10, 20, 40)
        print(contention_sweep(cfg, users_axis=users).as_table())
    elif name == "ablations":
        runner = _runner(args)
        for ablation in (
            ablation_deposit_scope,
            ablation_heat_metrics,
            ablation_bandwidth,
        ):
            print(ablation(runner).as_table())
            print()
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name!r}")
    _log.info("%s completed in %.1fs", name, time.perf_counter() - t0)


def _write_report(args: argparse.Namespace) -> None:
    """Regenerate every artifact and write it under ``--out``."""
    import pathlib

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    runner = _runner(args)
    artifacts: dict[str, str] = {
        "worked_example": worked_example().as_table(),
    }
    for name, fn in _FIGURES.items():
        artifacts[name] = fn(runner).render()
    artifacts["table5"] = table5(runner).as_table()
    artifacts["optimality_gap"] = optimality_gap().as_table()
    for ablation in (
        ablation_deposit_scope,
        ablation_heat_metrics,
        ablation_bandwidth,
    ):
        result = ablation(runner)
        key = "ablation_" + ablation.__name__.removeprefix("ablation_")
        artifacts[key] = result.as_table()
    for name, text in artifacts.items():
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        _log.info("wrote %s", path)
    index = out / "INDEX.txt"
    index.write_text(
        "\n".join(f"{k}.txt" for k in artifacts) + "\n"
    )
    _log.info("wrote %s", index)


def _run_environment(args: argparse.Namespace) -> None:
    """Schedule an environment file from disk and print the outcome."""
    from repro.analysis import format_table
    from repro.baselines import network_only_cost
    from repro.core.costmodel import CostModel
    from repro.core.parallel import ParallelConfig
    from repro.core.scheduler import VideoScheduler
    from repro.errors import ScheduleError
    from repro.io import load_environment
    from repro.obs import NULL_OBS, Observability, write_metrics, write_trace_jsonl
    from repro.sim.engine import SimulationEngine

    if not args.env_file:
        raise SystemExit("run-env requires an environment JSON path")
    topology, catalog, batch = load_environment(args.env_file)
    if batch is None:
        raise SystemExit(
            f"{args.env_file} contains no 'requests' section to schedule"
        )
    try:
        parallel = ParallelConfig(
            backend=args.phase1_backend, workers=args.phase1_workers
        )
    except ScheduleError as exc:
        raise SystemExit(f"invalid phase-1 options: {exc}") from exc
    want_telemetry = args.metrics_out or args.trace_out
    obs = Observability.on() if want_telemetry else NULL_OBS
    scheduler = VideoScheduler(topology, catalog, parallel=parallel, obs=obs)
    result = scheduler.solve(batch)
    if want_telemetry:
        # replay the schedule so the snapshot carries the simulate span
        # and the per-resource peak gauges
        SimulationEngine(scheduler.cost_model, obs=obs).run(result.schedule)
    cm = CostModel(topology, catalog)
    if args.metrics_out:
        write_metrics(args.metrics_out, obs)
        _log.info("wrote metrics snapshot to %s", args.metrics_out)
    if args.trace_out:
        write_trace_jsonl(args.trace_out, obs.tracer.records)
        _log.info(
            "wrote %d span record(s) to %s",
            len(obs.tracer.records),
            args.trace_out,
        )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["requests", len(batch)],
                ["deliveries", len(result.schedule.deliveries)],
                ["residencies", len(result.schedule.residencies)],
                ["network cost ($)", result.cost.network],
                ["storage cost ($)", result.cost.storage],
                ["total cost ($)", result.total_cost],
                ["network-only baseline ($)", network_only_cost(batch, cm)],
                ["overflow fixes", result.resolution.iterations],
                ["phase-1 backend", args.phase1_backend],
                [
                    "cost-cache hit rate",
                    f"{100 * result.cache_hit_rate:.1f} % "
                    f"({result.cache_stats.hits}/{result.cache_stats.lookups})",
                ],
            ],
            title=f"schedule for {args.env_file}",
        )
    )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(args.log_level)
    if args.experiment == "all":
        for name in ["worked-example", *sorted(_FIGURES), "table5", "gap", "ablations"]:
            print("=" * 78)
            _run_one(name, args)
            print()
    elif args.experiment == "report":
        _write_report(args)
    elif args.experiment == "run-env":
        _run_environment(args)
    else:
        _run_one(args.experiment, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
