"""Discrete-event execution and validation of service schedules.

The scheduler emits a *plan*; this subpackage provides the substrate that
actually "runs" it under the paper's fluid-flow semantics (blocks travel at
playback rate; a block at fraction ``x`` of the file arrives at route nodes
at ``t_start + x*P`` and is dropped once the chronologically-last service has
consumed it):

* :mod:`repro.sim.events`  -- time-ordered event queue primitives,
* :mod:`repro.sim.fluid`   -- physical (fluid) cache-occupancy profiles,
* :mod:`repro.sim.engine`  -- the event-driven engine producing an execution
  trace and per-resource peaks,
* :mod:`repro.sim.validate` -- feasibility checks: request coverage,
  causality, storage capacity, link bandwidth.

A notable modelling fact surfaced here: for *short* residencies the paper's
Eq. 6 reserved-space function is slightly optimistic against fluid physics
during the drain phase (the fill is still in flight when the last service
begins).  The engine reports both curves; see
:func:`repro.sim.fluid.fluid_occupancy_profile`.
"""

from repro.sim.events import Event, EventKind, EventQueue, kind_priority
from repro.sim.fluid import fluid_occupancy_profile
from repro.sim.engine import SimulationEngine, SimulationReport
from repro.sim.validate import (
    Violation,
    assert_valid,
    fault_violations,
    validate_schedule,
)

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "kind_priority",
    "fluid_occupancy_profile",
    "SimulationEngine",
    "SimulationReport",
    "Violation",
    "assert_valid",
    "fault_violations",
    "validate_schedule",
]
