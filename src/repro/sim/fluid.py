"""Physical (fluid-flow) cache-occupancy profiles.

Under the paper's block model, a cache filling from a stream that started at
``t_s`` holds, at time ``t``, the blocks that have *arrived*
(fraction ``min(1, (t - t_s)/P)``) minus the blocks the chronologically-last
service (starting at ``t_f``) has already *consumed*
(fraction ``max(0, (t - t_f)/P)``):

    occ(t) = size * ( min(1, (t-t_s)/P) - max(0, (t-t_f)/P) )

clamped at 0 outside ``[t_s, t_f + P]``.  This is piecewise linear with
breakpoints at ``t_s``, ``t_s + P``, ``t_f`` and ``t_f + P``.

Relation to the paper's Eq. 6 *reserved* profile: for long residencies
(``t_f - t_s >= P``) the curves agree on the plateau and the drain (the fluid
curve merely ramps up over ``[t_s, t_s+P]`` where Eq. 6 conservatively
reserves the full size immediately).  For **short** residencies, fluid
occupancy stays at the peak ``gamma*size`` until ``t_s + P`` (the fill is
still arriving) while Eq. 6 starts its linear decay already at ``t_f`` -- the
paper's model slightly *undercharges* the drain of short residencies.  The
simulator reports both curves so the discrepancy is measurable.
"""

from __future__ import annotations

from repro.core.spacefunc import LinearSegment, SpaceProfile
from repro.errors import ScheduleError


def fluid_occupancy_profile(
    size: float,
    playback: float,
    t_start: float,
    t_last: float,
) -> SpaceProfile:
    """Physical occupancy of a residency under the fluid block model."""
    if size <= 0:
        raise ScheduleError(f"size must be positive, got {size}")
    if playback <= 0:
        raise ScheduleError(f"playback must be positive, got {playback}")
    if t_last < t_start:
        raise ScheduleError(f"residency interval reversed: [{t_start}, {t_last}]")

    def occ(t: float) -> float:
        arrived = min(1.0, (t - t_start) / playback)
        consumed = max(0.0, (t - t_last) / playback)
        return max(size * (arrived - consumed), 0.0)

    if t_last == t_start:
        # consumption chases arrival with zero lag: nothing is ever held
        return SpaceProfile(())
    breakpoints = sorted(
        {t_start, t_start + playback, t_last, t_last + playback}
    )
    segments = []
    for a, b in zip(breakpoints, breakpoints[1:]):
        if b <= a:
            continue
        segments.append(LinearSegment(a, b, occ(a), occ(b)))
    return SpaceProfile(tuple(segments))
