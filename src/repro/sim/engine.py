"""Event-driven execution of a service schedule.

:class:`SimulationEngine` expands a schedule into stream/service/cache
events, replays them chronologically, and aggregates per-resource usage:

* per-storage occupancy timelines under both the **fluid** physical model and
  the paper's **Eq. 6 reserved** model,
* per-link concurrent-bandwidth timelines (each delivery occupies every edge
  of its route at the video's bandwidth for one playback length),
* an execution trace (the ordered event list) for inspection and reporting.

The engine observes; it does not judge.  Feasibility checks live in
:mod:`repro.sim.validate`, which consumes the engine's report.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostModel
from repro.core.schedule import Schedule
from repro.core.spacefunc import SpaceProfile, UsageTimeline, LinearSegment
from repro.obs import NULL_OBS, Observability, RunTelemetry
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.fluid import fluid_occupancy_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> sim)
    from repro.faults.plan import FaultPlan

_log = logging.getLogger(__name__)


@dataclass
class LinkLoad:
    """Bandwidth usage on one undirected link."""

    edge: tuple[str, str]
    timeline: UsageTimeline
    capacity: float

    @property
    def peak(self) -> float:
        return self.timeline.peak

    @property
    def saturated_intervals(self) -> list[tuple[float, float]]:
        if self.capacity == float("inf"):
            return []
        return self.timeline.intervals_above(self.capacity)


@dataclass
class StorageLoad:
    """Occupancy at one storage under both space models."""

    location: str
    fluid: UsageTimeline
    reserved: UsageTimeline
    capacity: float

    @property
    def fluid_peak(self) -> float:
        return self.fluid.peak

    @property
    def reserved_peak(self) -> float:
        return self.reserved.peak


@dataclass
class SimulationReport:
    """Everything the engine observed while executing a schedule."""

    trace: list[Event] = field(default_factory=list)
    storages: dict[str, StorageLoad] = field(default_factory=dict)
    links: dict[tuple[str, str], LinkLoad] = field(default_factory=dict)
    n_streams: int = 0
    n_services: int = 0
    n_residencies: int = 0
    #: Number of injected faults replayed in the trace (each contributes a
    #: ``FAULT_START``/``FAULT_END`` event pair).
    n_faults: int = 0
    #: Telemetry snapshot taken as the run finished (``None`` when the
    #: engine runs with the default null observability handle).
    telemetry: RunTelemetry | None = None

    @property
    def makespan(self) -> tuple[float, float]:
        """(first event time, last event time); (0, 0) for an empty trace."""
        if not self.trace:
            return (0.0, 0.0)
        return (self.trace[0].time, self.trace[-1].time)


class SimulationEngine:
    """Replays a schedule under the fluid-flow semantics.

    Args:
        cost_model: Supplies topology + catalog.
        obs: Observability handle; when live, each run records a
            ``simulate`` span, per-kind event counters, and per-resource
            peak gauges, and attaches a telemetry snapshot to the report.
    """

    def __init__(self, cost_model: CostModel, *, obs: Observability | None = None):
        self._cm = cost_model
        self._topo = cost_model.topology
        self._catalog: VideoCatalog = cost_model.catalog
        self._obs = obs if obs is not None else NULL_OBS

    def run(
        self, schedule: Schedule, *, faults: "FaultPlan | None" = None
    ) -> SimulationReport:
        """Execute ``schedule`` and return the full observation report.

        Args:
            schedule: The plan to replay.
            faults: Optional :class:`~repro.faults.plan.FaultPlan` to inject.
                Each fault contributes ``FAULT_START``/``FAULT_END`` events
                to the trace; same-timestamp ordering guarantees the start
                event precedes (and the end event follows) any stream or
                service event at the same instant, so trace consumers see
                availability change *before* the work it affects.
        """
        with self._obs.tracer.span(
            "simulate",
            deliveries=len(schedule.deliveries),
            residencies=len(schedule.residencies),
            faults=0 if faults is None else len(faults),
        ) as span:
            report = self._run(schedule, faults)
            span.set(events=len(report.trace))
        self._record_metrics(report)
        if self._obs.enabled:
            report.telemetry = self._obs.telemetry()
        _log.debug(
            "simulated %d event(s): %d stream(s), %d residenc(ies), %d fault(s)",
            len(report.trace), report.n_streams, report.n_residencies,
            report.n_faults,
        )
        return report

    def _run(
        self, schedule: Schedule, faults: "FaultPlan | None" = None
    ) -> SimulationReport:
        report = SimulationReport()
        queue = EventQueue()
        link_profiles: dict[tuple[str, str], list[SpaceProfile]] = {}

        if faults is not None:
            for f in faults:
                payload = {
                    "fault": f.key,
                    "kind": f.kind.value,
                    "target": f.target,
                    "severity": f.severity,
                }
                queue.push(f.t_start, EventKind.FAULT_START, payload)
                queue.push(f.t_end, EventKind.FAULT_END, payload)
                report.n_faults += 1

        for fs in schedule:
            video = self._catalog[fs.video_id]
            for d in fs.deliveries:
                t0, t1 = d.start_time, d.start_time + video.playback
                queue.push(
                    t0,
                    EventKind.STREAM_START,
                    {"video": fs.video_id, "route": d.route},
                )
                queue.push(
                    t1, EventKind.STREAM_END, {"video": fs.video_id, "route": d.route}
                )
                queue.push(
                    t0,
                    EventKind.SERVICE_START,
                    {"video": fs.video_id, "user": d.request.user_id},
                )
                queue.push(
                    t1,
                    EventKind.SERVICE_END,
                    {"video": fs.video_id, "user": d.request.user_id},
                )
                report.n_streams += 1
                report.n_services += 1
                for a, b in zip(d.route, d.route[1:]):
                    key = (a, b) if a <= b else (b, a)
                    link_profiles.setdefault(key, []).append(
                        SpaceProfile(
                            (
                                LinearSegment(
                                    t0, t1, video.bandwidth, video.bandwidth
                                ),
                            )
                        )
                    )
            for c in fs.residencies:
                queue.push(
                    c.t_start,
                    EventKind.CACHE_OPEN,
                    {"video": fs.video_id, "location": c.location},
                )
                queue.push(
                    c.t_last,
                    EventKind.CACHE_LAST_SERVICE,
                    {"video": fs.video_id, "location": c.location},
                )
                queue.push(
                    c.t_last + video.playback,
                    EventKind.CACHE_RELEASE,
                    {"video": fs.video_id, "location": c.location},
                )
                report.n_residencies += 1

        report.trace = queue.drain()

        # aggregate storage occupancy under both models
        by_loc: dict[str, tuple[list[SpaceProfile], list[SpaceProfile]]] = {}
        for fs in schedule:
            video = self._catalog[fs.video_id]
            for c in fs.residencies:
                fluid_p = fluid_occupancy_profile(
                    video.size, video.playback, c.t_start, c.t_last
                )
                reserved_p = c.profile(video)
                fl, rs = by_loc.setdefault(c.location, ([], []))
                fl.append(fluid_p)
                rs.append(reserved_p)
        for spec in self._topo.storages:
            fl, rs = by_loc.get(spec.name, ([], []))
            report.storages[spec.name] = StorageLoad(
                location=spec.name,
                fluid=UsageTimeline(fl),
                reserved=UsageTimeline(rs),
                capacity=spec.capacity,
            )

        for key, profiles in link_profiles.items():
            report.links[key] = LinkLoad(
                edge=key,
                timeline=UsageTimeline(profiles),
                capacity=self._topo.edge(*key).bandwidth,
            )
        return report

    def _record_metrics(self, report: SimulationReport) -> None:
        metrics = self._obs.metrics
        if not metrics.enabled:
            return
        by_kind: dict[str, int] = {}
        for event in report.trace:
            by_kind[event.kind.name.lower()] = (
                by_kind.get(event.kind.name.lower(), 0) + 1
            )
        for kind, count in sorted(by_kind.items()):
            metrics.counter(
                "vor_sim_events_total",
                help="Simulation events replayed, by kind",
                kind=kind,
            ).inc(count)
        if report.n_faults:
            metrics.counter(
                "vor_faults_injected_total",
                help="Faults injected into simulation replays",
            ).inc(report.n_faults)
        for name, load in report.storages.items():
            metrics.gauge(
                "vor_storage_peak_reserved_bytes",
                mode="max",
                help="Peak reserved (Eq. 6) occupancy per intermediate storage",
                location=name,
            ).set(load.reserved_peak)
            metrics.gauge(
                "vor_storage_peak_fluid_bytes",
                mode="max",
                help="Peak fluid-model occupancy per intermediate storage",
                location=name,
            ).set(load.fluid_peak)
        for (a, b), load in report.links.items():
            metrics.gauge(
                "vor_link_peak_bytes_per_second",
                mode="max",
                help="Peak concurrent bandwidth per undirected link",
                link=f"{a}-{b}",
            ).set(load.peak)
