"""Event-driven execution of a service schedule.

:class:`SimulationEngine` expands a schedule into stream/service/cache
events, replays them chronologically, and aggregates per-resource usage:

* per-storage occupancy timelines under both the **fluid** physical model and
  the paper's **Eq. 6 reserved** model,
* per-link concurrent-bandwidth timelines (each delivery occupies every edge
  of its route at the video's bandwidth for one playback length),
* an execution trace (the ordered event list) for inspection and reporting.

The engine observes; it does not judge.  Feasibility checks live in
:mod:`repro.sim.validate`, which consumes the engine's report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostModel
from repro.core.schedule import Schedule
from repro.core.spacefunc import SpaceProfile, UsageTimeline, LinearSegment
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.fluid import fluid_occupancy_profile


@dataclass
class LinkLoad:
    """Bandwidth usage on one undirected link."""

    edge: tuple[str, str]
    timeline: UsageTimeline
    capacity: float

    @property
    def peak(self) -> float:
        return self.timeline.peak

    @property
    def saturated_intervals(self) -> list[tuple[float, float]]:
        if self.capacity == float("inf"):
            return []
        return self.timeline.intervals_above(self.capacity)


@dataclass
class StorageLoad:
    """Occupancy at one storage under both space models."""

    location: str
    fluid: UsageTimeline
    reserved: UsageTimeline
    capacity: float

    @property
    def fluid_peak(self) -> float:
        return self.fluid.peak

    @property
    def reserved_peak(self) -> float:
        return self.reserved.peak


@dataclass
class SimulationReport:
    """Everything the engine observed while executing a schedule."""

    trace: list[Event] = field(default_factory=list)
    storages: dict[str, StorageLoad] = field(default_factory=dict)
    links: dict[tuple[str, str], LinkLoad] = field(default_factory=dict)
    n_streams: int = 0
    n_services: int = 0
    n_residencies: int = 0

    @property
    def makespan(self) -> tuple[float, float]:
        """(first event time, last event time); (0, 0) for an empty trace."""
        if not self.trace:
            return (0.0, 0.0)
        return (self.trace[0].time, self.trace[-1].time)


class SimulationEngine:
    """Replays a schedule under the fluid-flow semantics."""

    def __init__(self, cost_model: CostModel):
        self._cm = cost_model
        self._topo = cost_model.topology
        self._catalog: VideoCatalog = cost_model.catalog

    def run(self, schedule: Schedule) -> SimulationReport:
        """Execute ``schedule`` and return the full observation report."""
        report = SimulationReport()
        queue = EventQueue()
        link_profiles: dict[tuple[str, str], list[SpaceProfile]] = {}

        for fs in schedule:
            video = self._catalog[fs.video_id]
            for d in fs.deliveries:
                t0, t1 = d.start_time, d.start_time + video.playback
                queue.push(
                    t0,
                    EventKind.STREAM_START,
                    {"video": fs.video_id, "route": d.route},
                )
                queue.push(
                    t1, EventKind.STREAM_END, {"video": fs.video_id, "route": d.route}
                )
                queue.push(
                    t0,
                    EventKind.SERVICE_START,
                    {"video": fs.video_id, "user": d.request.user_id},
                )
                queue.push(
                    t1,
                    EventKind.SERVICE_END,
                    {"video": fs.video_id, "user": d.request.user_id},
                )
                report.n_streams += 1
                report.n_services += 1
                for a, b in zip(d.route, d.route[1:]):
                    key = (a, b) if a <= b else (b, a)
                    link_profiles.setdefault(key, []).append(
                        SpaceProfile(
                            (
                                LinearSegment(
                                    t0, t1, video.bandwidth, video.bandwidth
                                ),
                            )
                        )
                    )
            for c in fs.residencies:
                queue.push(
                    c.t_start,
                    EventKind.CACHE_OPEN,
                    {"video": fs.video_id, "location": c.location},
                )
                queue.push(
                    c.t_last,
                    EventKind.CACHE_LAST_SERVICE,
                    {"video": fs.video_id, "location": c.location},
                )
                queue.push(
                    c.t_last + video.playback,
                    EventKind.CACHE_RELEASE,
                    {"video": fs.video_id, "location": c.location},
                )
                report.n_residencies += 1

        report.trace = queue.drain()

        # aggregate storage occupancy under both models
        by_loc: dict[str, tuple[list[SpaceProfile], list[SpaceProfile]]] = {}
        for fs in schedule:
            video = self._catalog[fs.video_id]
            for c in fs.residencies:
                fluid_p = fluid_occupancy_profile(
                    video.size, video.playback, c.t_start, c.t_last
                )
                reserved_p = c.profile(video)
                fl, rs = by_loc.setdefault(c.location, ([], []))
                fl.append(fluid_p)
                rs.append(reserved_p)
        for spec in self._topo.storages:
            fl, rs = by_loc.get(spec.name, ([], []))
            report.storages[spec.name] = StorageLoad(
                location=spec.name,
                fluid=UsageTimeline(fl),
                reserved=UsageTimeline(rs),
                capacity=spec.capacity,
            )

        for key, profiles in link_profiles.items():
            report.links[key] = LinkLoad(
                edge=key,
                timeline=UsageTimeline(profiles),
                capacity=self._topo.edge(*key).bandwidth,
            )
        return report
