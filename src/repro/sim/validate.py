"""Feasibility validation of service schedules.

``validate_schedule`` exercises a schedule end-to-end against the request
batch it is supposed to serve and returns a list of :class:`Violation`
records (empty = feasible):

* **coverage** -- every request is served by exactly one delivery at its
  start time, ending at the user's local storage;
* **causality** -- every delivery from a non-warehouse source is backed by a
  residency there whose caching started no later than the service and whose
  last-service time covers it; every residency's filling source is a node
  that plausibly streamed the file (warehouse, or a node with an earlier or
  simultaneous copy);
* **storage capacity** -- the Eq. 6 reserved usage stays within capacity at
  every storage (the scheduler's own model);
* **link bandwidth** -- concurrent streams on a link stay within its
  bandwidth, when finite (the base paper leaves links uncapacitated; the
  bandwidth extension uses this check);
* **replica coverage** -- with a :class:`~repro.replication.ReplicaMap`
  (passed explicitly or carried by the cost model), every warehouse-sourced
  delivery and residency fill must come from a *home* warehouse of its
  video: a copy cannot be served from a site that never held it.

With ``faults=`` (a :class:`~repro.faults.plan.FaultPlan`), the schedule is
additionally replayed in degraded mode and every dropped/late service,
stranded residency, saturated link and shrunk-storage overflow becomes a
``fault-*`` violation (see :func:`fault_violations`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costmodel import CostModel
from repro.core.schedule import Schedule
from repro.core.spacefunc import EPS
from repro.errors import SimulationError
from repro.obs import NULL_OBS, Observability
from repro.sim.engine import SimulationEngine
from repro.workload.requests import RequestBatch


@dataclass(frozen=True)
class Violation:
    """One feasibility violation found in a schedule."""

    kind: str  # "coverage" | "causality" | "capacity" | "bandwidth" | "replica" | "fault-*"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.message}"


def validate_schedule(
    schedule: Schedule,
    batch: RequestBatch,
    cost_model: CostModel,
    *,
    check_links: bool = True,
    trusted_residencies=(),
    faults=None,
    replicas=None,
    obs: Observability | None = None,
) -> list[Violation]:
    """Run every feasibility check; return all violations found.

    ``trusted_residencies`` marks residencies whose *filling* happened
    outside this schedule -- e.g. caches carried over from the previous
    scheduling cycle, whose feeder streams belong to that cycle's schedule.
    They are exempt from the feeder-causality check (matched on
    ``(video_id, location, t_start)``); everything else about them is still
    validated.

    ``faults`` optionally names a :class:`~repro.faults.plan.FaultPlan`;
    the schedule is then also replayed in degraded mode and every service
    the plan breaks is reported as a ``fault-*`` violation.  A fault that
    downs a warehouse surfaces as ``fault-warehouse-loss``.

    ``replicas`` optionally names a :class:`~repro.replication.ReplicaMap`
    (default: the cost model's map); warehouse sources outside a video's
    home set are reported as ``replica`` violations.

    ``obs`` optionally instruments the run: one ``validate`` span plus
    per-kind ``vor_validate_violations_total`` counters.
    """
    obs = obs if obs is not None else NULL_OBS
    with obs.tracer.span(
        "validate", services=len(schedule), requests=len(batch)
    ) as span:
        violations: list[Violation] = []
        violations.extend(_check_coverage(schedule, batch))
        violations.extend(
            _check_causality(schedule, cost_model, trusted_residencies)
        )
        violations.extend(_check_capacity(schedule, cost_model))
        if check_links:
            violations.extend(_check_links(schedule, cost_model))
        if replicas is None:
            replicas = cost_model.replicas
        if replicas is not None:
            violations.extend(_check_replicas(schedule, cost_model, replicas))
        if faults is not None:
            violations.extend(
                fault_violations(schedule, cost_model, faults, obs=obs)
            )
        span.set(violations=len(violations))
    metrics = obs.metrics
    if metrics.enabled and violations:
        for v in violations:
            metrics.counter(
                "vor_validate_violations_total",
                help="Feasibility violations found by validate_schedule",
                kind=v.kind,
            ).inc()
    return violations


def fault_violations(
    schedule, cost_model, plan, *, obs: Observability | None = None
) -> list[Violation]:
    """Degraded-mode replay of ``schedule`` under ``plan`` as violations.

    Each dropped or late service, stranded residency, saturated link and
    shrunk-storage overflow found by
    :func:`repro.faults.report.build_degraded_report` becomes one
    :class:`Violation` whose kind carries a ``fault-`` prefix, so callers
    can separate hard infeasibilities from fault-induced degradation.
    """
    # Imported lazily: repro.faults.report imports this module's siblings.
    from repro.faults.report import build_degraded_report

    obs = obs if obs is not None else NULL_OBS
    with obs.tracer.span("degraded_replay", faults=len(plan)):
        report = build_degraded_report(schedule, cost_model, plan)
    out: list[Violation] = []
    for i in report.dropped:
        out.append(
            Violation(
                _impact_kind(i, "fault-drop"),
                f"request {i.user_id}/{i.video_id}@{i.start_time:g} dropped: "
                f"{i.resource} down ({i.fault})",
            )
        )
    for i in report.late:
        out.append(
            Violation(
                _impact_kind(i, "fault-late"),
                f"request {i.user_id}/{i.video_id}@{i.start_time:g} delayed "
                f"{i.delay:g}s: {i.resource} down mid-stream ({i.fault})",
            )
        )
    for s in report.stranded:
        out.append(
            Violation(
                "fault-stranded",
                f"residency of {s.video_id} at {s.location} lost to {s.fault}",
            )
        )
    for ls in report.saturated_links:
        out.append(
            Violation(
                "fault-bandwidth",
                f"link {ls.edge}: load peaks at {ls.peak:g} > degraded "
                f"bandwidth {ls.effective_bandwidth:g} during {ls.fault}",
            )
        )
    for ss in report.storage_overflows:
        out.append(
            Violation(
                "fault-capacity",
                f"{ss.location}: reserved usage peaks at {ss.peak:g} > shrunk "
                f"capacity {ss.effective_capacity:g} during {ss.fault}",
            )
        )
    return out


def _impact_kind(impact, default: str) -> str:
    """Violation kind of a service impact: warehouse losses get their own.

    A service broken by a downed *warehouse* is a survivability event (the
    archive itself is gone), not a mere delivery drop, so it reports as
    ``fault-warehouse-loss`` -- replica-aware recovery is the remedy.
    """
    from repro.faults.plan import FaultKind

    if impact.fault.startswith(f"{FaultKind.WAREHOUSE_LOSS.value}:"):
        return "fault-warehouse-loss"
    return default


def _check_replicas(
    schedule: Schedule, cost_model: CostModel, replicas
) -> list[Violation]:
    """Warehouse-sourced schedule elements must come from home warehouses."""
    out: list[Violation] = []
    warehouses = {w.name for w in cost_model.topology.warehouses}
    for fs in schedule:
        homes = set(replicas.homes(fs.video_id)) if fs.video_id in replicas else None
        for d in fs.deliveries:
            src = d.source
            if src in warehouses and homes is not None and src not in homes:
                out.append(
                    Violation(
                        "replica",
                        f"delivery of {d.video_id} from {src}@{d.start_time:g}"
                        f" but the video is homed at {sorted(homes)}",
                    )
                )
        for c in fs.residencies:
            if (
                c.source in warehouses
                and homes is not None
                and c.source not in homes
            ):
                out.append(
                    Violation(
                        "replica",
                        f"residency of {c.video_id} at {c.location} filled "
                        f"from {c.source} but the video is homed at "
                        f"{sorted(homes)}",
                    )
                )
    return out


def assert_valid(
    schedule: Schedule,
    batch: RequestBatch,
    cost_model: CostModel,
    *,
    check_links: bool = True,
    trusted_residencies=(),
) -> None:
    """Raise :class:`~repro.errors.SimulationError` on the first violation."""
    violations = validate_schedule(
        schedule,
        batch,
        cost_model,
        check_links=check_links,
        trusted_residencies=trusted_residencies,
    )
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise SimulationError(f"infeasible schedule: {summary}{more}")


def _check_coverage(schedule: Schedule, batch: RequestBatch) -> list[Violation]:
    out: list[Violation] = []
    deliveries_by_user: dict[tuple[str, str, float], int] = {}
    for d in schedule.deliveries:
        key = (d.request.user_id, d.video_id, d.start_time)
        deliveries_by_user[key] = deliveries_by_user.get(key, 0) + 1
    for r in batch:
        key = (r.user_id, r.video_id, r.start_time)
        n = deliveries_by_user.get(key, 0)
        if n == 0:
            out.append(
                Violation(
                    "coverage",
                    f"request {r.user_id}/{r.video_id}@{r.start_time:g} unserved",
                )
            )
        elif n > 1:
            out.append(
                Violation(
                    "coverage",
                    f"request {r.user_id}/{r.video_id}@{r.start_time:g} served "
                    f"{n} times",
                )
            )
    return out


def _check_causality(
    schedule: Schedule, cost_model: CostModel, trusted_residencies=()
) -> list[Violation]:
    out: list[Violation] = []
    topo = cost_model.topology
    warehouses = {w.name for w in topo.warehouses}
    trusted = {
        (c.video_id, c.location, c.t_start) for c in trusted_residencies
    }
    for fs in schedule:
        residencies = fs.residencies
        for d in fs.deliveries:
            src = d.source
            if src in warehouses:
                continue
            backing = [
                c
                for c in residencies
                if c.location == src
                and c.t_start <= d.start_time + EPS
                and c.t_last >= d.start_time - EPS
            ]
            if not backing:
                out.append(
                    Violation(
                        "causality",
                        f"delivery of {d.video_id} from {src}@{d.start_time:g} "
                        "has no backing residency",
                    )
                )
        for c in residencies:
            if c.source in warehouses:
                continue
            if (c.video_id, c.location, c.t_start) in trusted:
                continue  # filled by a previous cycle's stream
            feeder = [
                d
                for d in fs.deliveries
                if d.source == c.source and d.start_time <= c.t_start + EPS
            ] + [
                c2
                for c2 in residencies
                if c2.location == c.source and c2.t_start <= c.t_start + EPS
            ]
            if not feeder:
                out.append(
                    Violation(
                        "causality",
                        f"residency of {c.video_id} at {c.location} sources from "
                        f"{c.source} with no copy there by t={c.t_start:g}",
                    )
                )
    return out


def _check_capacity(schedule: Schedule, cost_model: CostModel) -> list[Violation]:
    out: list[Violation] = []
    report = SimulationEngine(cost_model).run(schedule)
    for loc, load in report.storages.items():
        slack = load.capacity + EPS + 1e-9 * max(load.capacity, 1.0)
        if load.reserved_peak > slack:
            intervals = load.reserved.intervals_above(load.capacity)
            out.append(
                Violation(
                    "capacity",
                    f"{loc}: reserved usage peaks at {load.reserved_peak:g} > "
                    f"capacity {load.capacity:g} over {len(intervals)} "
                    "interval(s)",
                )
            )
    return out


def _check_links(schedule: Schedule, cost_model: CostModel) -> list[Violation]:
    out: list[Violation] = []
    report = SimulationEngine(cost_model).run(schedule)
    for key, load in report.links.items():
        if load.capacity == float("inf"):
            continue
        slack = load.capacity * (1.0 + 1e-9) + EPS
        if load.peak > slack:
            out.append(
                Violation(
                    "bandwidth",
                    f"link {key}: concurrent bandwidth peaks at {load.peak:g} "
                    f"> capacity {load.capacity:g}",
                )
            )
    return out
