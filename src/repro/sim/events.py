"""Event primitives for the schedule-execution engine.

A minimal, allocation-light discrete-event core: events carry a time, a kind
and an opaque payload; the queue pops them in (time, sequence) order so
simultaneous events preserve insertion order deterministically.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.Enum):
    """What happened at a point in simulated time."""

    STREAM_START = "stream_start"  # a delivery's flow begins at its source
    STREAM_END = "stream_end"  # the flow's last block leaves the source
    SERVICE_START = "service_start"  # a user's playback begins
    SERVICE_END = "service_end"  # a user's playback completes
    CACHE_OPEN = "cache_open"  # a residency starts filling
    CACHE_LAST_SERVICE = "cache_last_service"  # the residency's final reader starts
    CACHE_RELEASE = "cache_release"  # the last block is dropped


@dataclass(frozen=True, order=True)
class Event:
    """One timestamped simulation event.

    Ordering is by (time, seq); ``seq`` is assigned by the queue so equal-time
    events pop in insertion order.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)

    def __post_init__(self) -> None:
        if not math.isfinite(self.time):
            raise SimulationError(f"event time must be finite, got {self.time}")


class EventQueue:
    """Deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        ev = Event(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> float:
        if not self._heap:
            raise SimulationError("empty event queue has no next_time")
        return self._heap[0].time

    def drain(self) -> list[Event]:
        """Pop everything, returning the chronological trace."""
        out = []
        while self._heap:
            out.append(heapq.heappop(self._heap))
        return out
