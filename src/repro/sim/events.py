"""Event primitives for the schedule-execution engine.

A minimal, allocation-light discrete-event core: events carry a time, a kind
and an opaque payload; the queue pops them in ``(time, kind priority, seq)``
order.  The priority rank pins the relative order of *simultaneous* events:

* ``FAULT_END`` first -- a resource recovering at ``t`` is available to
  anything else happening at ``t``;
* ``FAULT_START`` second -- a fault beginning at ``t`` hits every stream or
  service that starts at the same instant;
* everything else afterwards, in insertion order (``seq`` is assigned by the
  queue, so equal-time, equal-priority events replay in the deterministic
  order the engine pushed them).

This total order is part of the replay contract: fault injection and
contingency re-scheduling rely on traces being stable across runs and
Phase-1 backends, so the tie-break is pinned by regression tests rather
than left to incidental heap behaviour.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.Enum):
    """What happened at a point in simulated time."""

    STREAM_START = "stream_start"  # a delivery's flow begins at its source
    STREAM_END = "stream_end"  # the flow's last block leaves the source
    SERVICE_START = "service_start"  # a user's playback begins
    SERVICE_END = "service_end"  # a user's playback completes
    CACHE_OPEN = "cache_open"  # a residency starts filling
    CACHE_LAST_SERVICE = "cache_last_service"  # the residency's final reader starts
    CACHE_RELEASE = "cache_release"  # the last block is dropped
    FAULT_START = "fault_start"  # a resource fault begins (availability drops)
    FAULT_END = "fault_end"  # the faulted resource recovers


#: Same-timestamp replay ranks; unlisted kinds share the default rank 2.
_KIND_PRIORITY = {
    EventKind.FAULT_END: 0,
    EventKind.FAULT_START: 1,
}
_DEFAULT_PRIORITY = 2


def kind_priority(kind: EventKind) -> int:
    """Same-timestamp replay rank of ``kind`` (lower pops first)."""
    return _KIND_PRIORITY.get(kind, _DEFAULT_PRIORITY)


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event.

    Ordering is by ``(time, kind priority, seq)``; ``seq`` is assigned by
    the queue so equal-time, equal-priority events pop in insertion order.
    """

    time: float
    seq: int
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.time):
            raise SimulationError(f"event time must be finite, got {self.time}")

    @property
    def priority(self) -> int:
        """Same-timestamp rank (faults end, then start, then everything)."""
        return kind_priority(self.kind)

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key < other.sort_key


class EventQueue:
    """Deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        ev = Event(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> float:
        if not self._heap:
            raise SimulationError("empty event queue has no next_time")
        return self._heap[0].time

    def drain(self) -> list[Event]:
        """Pop everything, returning the chronological trace."""
        out = []
        while self._heap:
            out.append(heapq.heappop(self._heap))
        return out
