"""Unit system for the VOR reproduction.

Internally the whole library works in SI-flavoured base units:

* data size     -- **bytes** (float)
* time          -- **seconds** (float, measured from the start of a
                   scheduling cycle)
* bandwidth     -- **bytes per second**
* storage rate  -- ``$ / (byte * second)`` (the paper's ``srate`` unit)
* network rate  -- ``$ / byte``            (the paper's ``nrate`` unit)

The paper quotes its experiment parameters in coarser, "arbitrary charging
system" units (per-GB, per-GB-hour, Mbps, minutes).  The helpers here are the
single place where those conversions live, so experiment configuration code
can stay in paper units while the core stays in base units.
"""

from __future__ import annotations

#: Bytes per kilobyte / megabyte / gigabyte (decimal, as the paper's "2.5 Giga
#: Bytes" for a 90-minute 6 Mbps stream implies: 6 Mbit/s * 5400 s / 8 =
#: 4.05e9 bits = ... the paper rounds; we use decimal SI multipliers).
KB = 1e3
MB = 1e6
GB = 1e9

#: Seconds per minute / hour / day.
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

#: Bytes/second per megabit/second.
MBPS = 1e6 / 8.0


def gb(value: float) -> float:
    """Convert gigabytes to bytes."""
    return value * GB


def mb(value: float) -> float:
    """Convert megabytes to bytes."""
    return value * MB


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * HOUR


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * MBPS


def per_gb(rate: float) -> float:
    """Convert a network charging rate in ``$/GB`` to ``$/byte``."""
    return rate / GB


def per_gb_hour(rate: float) -> float:
    """Convert a storage charging rate in ``$/(GB*hour)`` to ``$/(byte*s)``."""
    return rate / (GB * HOUR)


def per_mbps_second(rate: float, bandwidth_bytes_per_s: float) -> float:
    """Convert the worked example's ``$/(Mbps*s)`` link rate to ``$/byte``.

    Figure 2 of the paper prices links in cents per (Mbps * second) of
    reserved bandwidth.  A stream of ``bandwidth`` bytes/s occupies
    ``bandwidth / MBPS`` Mbps, so transferring one byte (which takes
    ``1 / bandwidth`` seconds) costs ``rate * (bandwidth / MBPS) *
    (1 / bandwidth) = rate / MBPS`` dollars.  The conversion is therefore
    independent of the bandwidth; the parameter is kept to make call sites
    self-documenting.
    """
    del bandwidth_bytes_per_s  # see docstring: the rate is per-byte already
    return rate / MBPS


def fmt_bytes(n: float) -> str:
    """Human-readable size, used in reports and __repr__ methods."""
    for unit, label in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.3g} {label}"
    return f"{n:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration, used in reports and __repr__ methods."""
    if abs(seconds) >= HOUR:
        return f"{seconds / HOUR:.3g} h"
    if abs(seconds) >= MINUTE:
        return f"{seconds / MINUTE:.3g} min"
    return f"{seconds:.3g} s"
