"""Retry policy and failure injection for online amendments.

Re-solving a cycle while the fault picture is still moving fails for
transient reasons: a monitoring read races a topology update, a worker pool
hiccups, an amendment overruns its deadline.  :class:`RetryPolicy` bounds
how hard the loop tries again -- capped exponential backoff with *seeded*
jitter, so a replayed run sleeps the exact same schedule -- and
:class:`TransientFailureInjector` lets tests and CI drills inject those
failures deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError


class OnlineError(ReproError):
    """Invalid online-loop configuration or feed consumption."""


class TransientResolveError(OnlineError):
    """A re-solve attempt failed for a (presumed) transient reason.

    Raised by the failure injector and by the loop itself on deadline
    overruns; the amendment loop retries these under its
    :class:`RetryPolicy` before counting a batch as failed.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    Attempt ``i`` (0-based retry index) sleeps
    ``min(cap, base * 2**i) * (1 + jitter * u)`` with ``u`` uniform in
    ``[-1, 1]`` drawn from a per-batch rng derived arithmetically from
    ``seed`` -- never from ``hash()``, so replays are bit-identical across
    interpreter runs.

    Attributes:
        max_retries: Re-attempts after the first try (0 = no retries).
        base: First backoff delay in seconds.
        cap: Upper bound on any single delay (before jitter).
        jitter: Relative jitter amplitude in [0, 1].
        seed: Base seed for the jitter stream.
    """

    max_retries: int = 3
    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise OnlineError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base < 0.0 or self.cap < 0.0:
            raise OnlineError(
                f"backoff base/cap must be >= 0, got {self.base}/{self.cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise OnlineError(
                f"jitter must be a fraction in [0, 1], got {self.jitter}"
            )

    def delays(self, batch_index: int) -> tuple[float, ...]:
        """The backoff delays (seconds) for one batch's retries."""
        rng = random.Random(self.seed * 1_000_003 + batch_index)
        out = []
        for i in range(self.max_retries):
            delay = min(self.cap, self.base * (2.0**i))
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
            out.append(max(0.0, delay))
        return tuple(out)


class TransientFailureInjector:
    """Deterministically fail the first N re-solve attempts of chosen batches.

    The spec maps batch index to how many attempts of that batch should
    raise :class:`TransientResolveError`.  ``parse`` reads the CLI form
    ``"0:2,3:1"`` (batch 0 fails twice, batch 3 once); a count larger than
    the retry budget exhausts the batch and feeds the circuit breaker.
    """

    def __init__(self, spec: dict[int, int] | None = None) -> None:
        self._remaining = dict(spec or {})
        self.injected = 0

    @classmethod
    def parse(cls, text: str) -> "TransientFailureInjector":
        """Build an injector from ``"batch:count[,batch:count...]"``."""
        spec: dict[int, int] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                batch_s, count_s = part.split(":")
                batch, count = int(batch_s), int(count_s)
            except ValueError as exc:
                raise OnlineError(
                    f"bad failure-injection spec {part!r} "
                    "(expected batch:count)"
                ) from exc
            if batch < 0 or count < 1:
                raise OnlineError(
                    f"bad failure-injection spec {part!r}: batch must be "
                    ">= 0 and count >= 1"
                )
            spec[batch] = spec.get(batch, 0) + count
        return cls(spec)

    def check(self, batch_index: int) -> None:
        """Raise :class:`TransientResolveError` if this attempt must fail."""
        remaining = self._remaining.get(batch_index, 0)
        if remaining > 0:
            self._remaining[batch_index] = remaining - 1
            self.injected += 1
            raise TransientResolveError(
                f"injected transient failure (batch {batch_index}, "
                f"{remaining - 1} left)"
            )


__all__ = [
    "OnlineError",
    "RetryPolicy",
    "TransientFailureInjector",
    "TransientResolveError",
]
