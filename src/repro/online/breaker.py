"""Circuit breaker guarding the online amendment loop.

Classic three-state breaker, driven entirely by the caller's clock (the
loop passes the *virtual* feed time, so replays are deterministic):

* ``closed`` -- amendments run normally; consecutive exhausted batches
  count toward ``failure_threshold``.
* ``open``   -- re-solves keep failing; the loop degrades (conservative
  whole-cycle stance, shed low-priority pending work) until ``cooldown``
  virtual seconds pass.
* ``half_open`` -- after the cooldown one normal amendment probes the
  system: success closes the breaker, failure re-opens it and restarts
  the cooldown.

Every transition is recorded with its instant, so telemetry and CI drills
can assert the exact trajectory (e.g. closed → open → half_open → closed).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.online.retry import OnlineError

_log = logging.getLogger(__name__)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerTransition:
    """One state change: when (virtual time) and into what."""

    at: float
    to: str

    def to_dict(self) -> dict:
        return {"at": self.at, "to": self.to}


class CircuitBreaker:
    """Failure-counting breaker with virtual-time cooldown."""

    def __init__(
        self, *, failure_threshold: int = 3, cooldown: float = 0.0
    ) -> None:
        if failure_threshold < 1:
            raise OnlineError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0.0:
            raise OnlineError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._state = CLOSED
        self._failures = 0
        self._opened_at = float("-inf")
        self.transitions: list[BreakerTransition] = []

    @property
    def state(self) -> str:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def state_at(self, now: float) -> str:
        """The effective state at instant ``now`` (may trip half-open).

        An ``open`` breaker whose cooldown has elapsed transitions to
        ``half_open`` as a side effect -- call once per batch, before
        deciding how to amend.
        """
        if self._state == OPEN and now >= self._opened_at + self.cooldown:
            self._move(HALF_OPEN, now)
        return self._state

    def record_success(self, now: float) -> None:
        """A batch amended cleanly: reset failures, close if probing."""
        self._failures = 0
        if self._state != CLOSED:
            self._move(CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A batch exhausted its retries."""
        self._failures += 1
        if self._state == HALF_OPEN:
            # The probe failed: back to open, restart the cooldown.
            self._move(OPEN, now)
            self._opened_at = now
        elif self._state == CLOSED and self._failures >= self.failure_threshold:
            self._move(OPEN, now)
            self._opened_at = now

    def _move(self, to: str, now: float) -> None:
        _log.warning("circuit breaker %s -> %s at t=%g", self._state, to, now)
        self._state = to
        self.transitions.append(BreakerTransition(at=now, to=to))


__all__ = [
    "BreakerTransition",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
]
