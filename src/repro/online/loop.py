"""The online fault-feed amendment loop.

:class:`OnlineAmendmentLoop` turns a :class:`~repro.faults.feed.FaultFeed`
into a sequence of cycle amendments against a running
:class:`~repro.service.VORService`:

1. **Debounce** -- events arriving within ``debounce`` virtual seconds of a
   batch's first report amend together (monitoring storms become one
   re-solve).
2. **Amend** -- each batch amends the cycle with the *cumulative* plan of
   every fault reported so far.  Amendments are idempotent (amending twice
   with the same plan equals amending once), so a batch that ultimately
   fails is healed by the next successful one.
3. **Retry** -- transient failures (injected, scheduler errors, deadline
   overruns) back off under the seeded
   :class:`~repro.online.retry.RetryPolicy` and try again.
4. **Break** -- batches that exhaust their retries feed the
   :class:`~repro.online.breaker.CircuitBreaker`; once it opens the loop
   degrades to the conservative whole-cycle stance and sheds the
   lowest-priority pending reservations instead of risking further
   expensive re-solves.  After the cooldown a half-open probe returns to
   normal windowed operation.

Determinism: batching, amendment results, retry counts and breaker
trajectory depend only on ``(feed, seed, injected failures)`` -- the
breaker runs on *virtual* feed time and backoff jitter is seeded.  Wall
time only enters through the optional per-amendment ``deadline`` and the
latency histogram, both flagged non-deterministic in telemetry.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.faults.feed import FaultEvent, FaultFeed
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import NULL_OBS, Observability, SECONDS_BUCKETS
from repro.online.breaker import CLOSED, OPEN, CircuitBreaker
from repro.online.retry import (
    OnlineError,
    RetryPolicy,
    TransientFailureInjector,
    TransientResolveError,
)
from repro.service import CycleReport, VORService

_log = logging.getLogger(__name__)

#: Batch outcomes recorded per amendment attempt group.
OUTCOMES = ("amended", "failed", "degraded", "degraded_failed")


@dataclass(frozen=True)
class OnlineLoopConfig:
    """Tuning of the online amendment loop.

    Attributes:
        debounce: Events within this many virtual seconds of a batch's
            first report amend together (0 = one batch per arrival
            instant).
        deadline: Optional wall-clock budget (seconds) per amendment
            attempt; an overrun counts as a transient failure and is
            retried.  ``None`` disables the deadline (the deterministic
            default).
        max_retries: Re-attempts per batch after the first try.
        backoff_base: First retry delay in seconds.
        backoff_cap: Upper bound on any retry delay (before jitter).
        jitter: Relative jitter amplitude in [0, 1].
        seed: Seed for the backoff jitter stream.
        breaker_threshold: Consecutive exhausted batches that open the
            circuit breaker.
        breaker_cooldown: Virtual seconds the breaker stays open before a
            half-open probe.
        shed_per_degraded_batch: Pending reservations shed on each batch
            processed while the breaker is open.
        masking: Recovery stance for normal (closed/half-open) operation;
            degraded batches always use the conservative ``"cycle"``
            stance.
    """

    debounce: float = 0.0
    deadline: float | None = None
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: float = 0.0
    shed_per_degraded_batch: int = 1
    masking: str = "windowed"

    def __post_init__(self) -> None:
        if self.debounce < 0.0:
            raise OnlineError(f"debounce must be >= 0, got {self.debounce}")
        if self.deadline is not None and self.deadline <= 0.0:
            raise OnlineError(
                f"deadline must be > 0 (or None), got {self.deadline}"
            )
        if self.shed_per_degraded_batch < 0:
            raise OnlineError(
                "shed_per_degraded_batch must be >= 0, got "
                f"{self.shed_per_degraded_batch}"
            )
        from repro.faults.contingency import MASKING_MODES

        if self.masking not in MASKING_MODES:
            raise OnlineError(
                f"masking must be one of {MASKING_MODES}, got {self.masking!r}"
            )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            base=self.backoff_base,
            cap=self.backoff_cap,
            jitter=self.jitter,
            seed=self.seed,
        )


@dataclass(frozen=True)
class AmendmentRecord:
    """What happened to one debounced batch of fault events."""

    batch_index: int
    at: float  # virtual arrival instant of the batch's last event
    events: int
    faults_total: int  # cumulative plan size after this batch
    outcome: str  # one of OUTCOMES
    masking: str
    attempts: int
    retries: int
    breaker_state: str  # state after the batch settled
    saved: int = 0
    lost: int = 0
    shed: int = 0
    error: str = ""
    #: Wall-clock seconds of the last attempt (non-deterministic).
    duration_s: float = 0.0

    def deterministic_dict(self) -> dict:
        return {
            "batch_index": self.batch_index,
            "at": self.at,
            "events": self.events,
            "faults_total": self.faults_total,
            "outcome": self.outcome,
            "masking": self.masking,
            "attempts": self.attempts,
            "retries": self.retries,
            "breaker_state": self.breaker_state,
            "saved": self.saved,
            "lost": self.lost,
            "shed": self.shed,
        }


@dataclass
class OnlineRunReport:
    """Outcome of replaying one feed through the amendment loop."""

    records: list[AmendmentRecord] = field(default_factory=list)
    #: The last successfully amended cycle report (the initial report when
    #: every batch failed -- the loop never leaves the service without a
    #: valid schedule).
    final: CycleReport | None = None
    #: Cumulative plan of every fault the feed reported.
    plan: FaultPlan = field(default_factory=FaultPlan)
    breaker_transitions: list = field(default_factory=list)
    events_total: int = 0
    batches_total: int = 0
    retries_total: int = 0
    deadline_misses: int = 0
    shed_total: int = 0
    failures_injected: int = 0

    @property
    def amended(self) -> int:
        return sum(
            1 for r in self.records if r.outcome in ("amended", "degraded")
        )

    @property
    def degraded_batches(self) -> int:
        return sum(1 for r in self.records if r.outcome.startswith("degraded"))

    @property
    def alive(self) -> bool:
        """Whether the loop ended with a valid (possibly degraded) schedule."""
        return self.final is not None

    def deterministic_dict(self) -> dict:
        """The replay-invariant slice of the report.

        Everything here depends only on ``(feed, seed, injected
        failures)`` -- wall-clock latencies and deadline misses are
        excluded.  CI drills diff this dict across repeated runs.
        """
        return {
            "events_total": self.events_total,
            "batches_total": self.batches_total,
            "retries_total": self.retries_total,
            "shed_total": self.shed_total,
            "failures_injected": self.failures_injected,
            "faults_total": len(self.plan),
            "breaker_transitions": [
                t.to_dict() for t in self.breaker_transitions
            ],
            "batches": [r.deterministic_dict() for r in self.records],
        }

    def summary(self) -> str:
        outcomes: dict[str, int] = {}
        for r in self.records:
            outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        trail = " -> ".join([CLOSED] + [t.to for t in self.breaker_transitions])
        lines = [
            f"online run: {self.events_total} event(s) in "
            f"{self.batches_total} batch(es), {len(self.plan)} distinct "
            f"fault(s)",
            "  outcomes: "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
                or "none"
            ),
            f"  retries: {self.retries_total}, deadline misses: "
            f"{self.deadline_misses}, shed: {self.shed_total}",
            f"  breaker: {trail}",
        ]
        if self.final is not None and self.final.recovery is not None:
            rec = self.final.recovery
            lines.append(
                f"  final recovery: {rec.requests_saved} saved / "
                f"{rec.requests_lost} lost (psi {rec.cost_delta:+.2f}, "
                f"{rec.masking})"
            )
        return "\n".join(lines)


class OnlineAmendmentLoop:
    """Drives a :class:`VORService` from a fault feed (see module docs).

    Args:
        service: The running service whose last closed cycle is amended.
        config: Loop tuning; defaults are deterministic (no deadline).
        obs: Observability handle; defaults to the service's.
        clock: Wall-clock source for deadlines/latency (monotonic seconds).
        sleep: Backoff sleeper; inject a no-op in tests for instant replay.
        failure_injector: Optional deterministic transient-failure source
            (see :class:`~repro.online.retry.TransientFailureInjector`).
    """

    def __init__(
        self,
        service: VORService,
        config: OnlineLoopConfig | None = None,
        *,
        obs: Observability | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        failure_injector: TransientFailureInjector | None = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else OnlineLoopConfig()
        self.obs = obs if obs is not None else service.obs
        self._clock = clock
        self._sleep = sleep
        self._injector = failure_injector
        self._retry = self.config.retry_policy()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self._transitions_recorded = 0

    # -- public API --------------------------------------------------------

    def run(self, feed: FaultFeed, report: CycleReport) -> OnlineRunReport:
        """Replay ``feed`` against the cycle in ``report``; never raises
        for amendment failures (they degrade instead)."""
        out = OnlineRunReport(final=report)
        cumulative: list[FaultSpec] = []
        current = report
        with self.obs.tracer.span("online_run", events=len(feed)) as span:
            for batch_index, batch in enumerate(self._debounce(feed)):
                cumulative.extend(e.fault for e in batch)
                plan = FaultPlan(
                    faults=tuple(cumulative),
                    name=feed.name or "online",
                    seed=feed.seed,
                )
                record, amended = self._process_batch(
                    batch_index, batch, plan, current, out
                )
                out.records.append(record)
                out.events_total += record.events
                out.batches_total += 1
                out.retries_total += record.retries
                out.shed_total += record.shed
                if amended is not None:
                    current = amended
                out.plan = plan
                self.obs.journal.emit(
                    "online-batch",
                    index=record.batch_index,
                    at=record.at,
                    events=record.events,
                    faults=record.faults_total,
                    outcome=record.outcome,
                    masking=record.masking,
                    attempts=record.attempts,
                    retries=record.retries,
                    breaker=record.breaker_state,
                    saved=record.saved,
                    lost=record.lost,
                    shed=record.shed,
                )
                self._record_batch_metrics(record)
            out.final = current
            out.breaker_transitions = list(self.breaker.transitions)
            if self._injector is not None:
                out.failures_injected = self._injector.injected
            span.set(
                batches=out.batches_total,
                retries=out.retries_total,
                breaker=self.breaker.state,
            )
        _log.info("%s", out.summary())
        return out

    # -- internals ---------------------------------------------------------

    def _debounce(self, feed: FaultFeed) -> list[list[FaultEvent]]:
        batches: list[list[FaultEvent]] = []
        current: list[FaultEvent] = []
        for event in feed:
            if current and event.at > current[0].at + self.config.debounce:
                batches.append(current)
                current = []
            current.append(event)
        if current:
            batches.append(current)
        return batches

    def _process_batch(
        self,
        batch_index: int,
        batch: list[FaultEvent],
        plan: FaultPlan,
        current: CycleReport,
        out: OnlineRunReport,
    ) -> tuple[AmendmentRecord, CycleReport | None]:
        now = batch[-1].at
        state = self.breaker.state_at(now)
        degraded = state == OPEN
        masking = "cycle" if degraded else self.config.masking
        retries_budget = 0 if degraded else self.config.max_retries
        delays = self._retry.delays(batch_index)

        with self.obs.tracer.span(
            "online_batch",
            index=batch_index,
            at=now,
            events=len(batch),
            breaker=state,
            masking=masking,
        ) as span:
            amended: CycleReport | None = None
            error = ""
            attempts = 0
            duration = 0.0
            for attempt in range(retries_budget + 1):
                attempts = attempt + 1
                if attempt > 0:
                    delay = delays[attempt - 1]
                    metrics = self.obs.metrics
                    if metrics.enabled:
                        metrics.counter(
                            "vor_online_retries_total",
                            help="Amendment attempts retried after a "
                            "transient failure",
                        ).inc()
                    self._sleep(delay)
                try:
                    amended, duration = self._attempt(
                        batch_index, plan, current, masking, out
                    )
                    break
                except ReproError as exc:
                    error = str(exc)
                    _log.warning(
                        "batch %d attempt %d failed: %s",
                        batch_index, attempts, error,
                    )
            shed = 0
            if degraded and self.config.shed_per_degraded_batch > 0:
                shed = len(
                    self.service.shed_pending(
                        self.config.shed_per_degraded_batch
                    )
                )
            if amended is not None:
                if degraded:
                    # A conservative amendment while open is not a probe:
                    # only a half-open probe's success closes the breaker.
                    outcome = "degraded"
                else:
                    self.breaker.record_success(now)
                    outcome = "amended"
            else:
                self.breaker.record_failure(now)
                outcome = "degraded_failed" if degraded else "failed"
            span.set(
                outcome=outcome,
                attempts=attempts,
                breaker_after=self.breaker.state,
            )
        recovery = amended.recovery if amended is not None else None
        record = AmendmentRecord(
            batch_index=batch_index,
            at=now,
            events=len(batch),
            faults_total=len(plan),
            outcome=outcome,
            masking=masking,
            attempts=attempts,
            retries=attempts - 1,
            breaker_state=self.breaker.state,
            saved=recovery.requests_saved if recovery is not None else 0,
            lost=recovery.requests_lost if recovery is not None else 0,
            shed=shed,
            error=error,
            duration_s=duration,
        )
        return record, amended

    def _attempt(
        self,
        batch_index: int,
        plan: FaultPlan,
        current: CycleReport,
        masking: str,
        out: OnlineRunReport,
    ) -> tuple[CycleReport, float]:
        if self._injector is not None:
            self._injector.check(batch_index)
        t0 = self._clock()
        amended = self.service.amend_cycle(current, plan, masking=masking)
        duration = self._clock() - t0
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.histogram(
                "vor_online_amendment_seconds",
                boundaries=SECONDS_BUCKETS,
                help="Wall-clock latency of online cycle amendments",
                deterministic=False,
            ).observe(duration)
        if not amended.feasible:
            # Never hand the loop an invalid schedule: an amendment whose
            # patched schedule fails validation counts as a failed attempt
            # and the last-good report stays current.
            raise OnlineError(
                f"amended schedule failed validation with "
                f"{len(amended.violations)} violation(s): "
                f"{amended.violations[0]}"
            )
        deadline = self.config.deadline
        if deadline is not None and duration > deadline:
            out.deadline_misses += 1
            if metrics.enabled:
                metrics.counter(
                    "vor_online_deadline_misses_total",
                    help="Amendment attempts that overran their deadline",
                    deterministic=False,
                ).inc()
            raise TransientResolveError(
                f"amendment overran deadline: {duration:.3f}s > {deadline}s"
            )
        return amended, duration

    def _record_batch_metrics(self, record: AmendmentRecord) -> None:
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "vor_online_events_total", help="Fault-feed events consumed"
        ).inc(record.events)
        metrics.counter(
            "vor_online_batches_total",
            help="Debounced amendment batches processed",
            outcome=record.outcome,
        ).inc()
        if record.shed:
            metrics.counter(
                "vor_online_shed_total",
                help="Pending reservations shed in degraded mode",
            ).inc(record.shed)
        for transition in self.breaker.transitions[
            self._transitions_recorded :
        ]:
            metrics.counter(
                "vor_online_breaker_transitions_total",
                help="Circuit-breaker state transitions",
                to=transition.to,
            ).inc()
        self._transitions_recorded = len(self.breaker.transitions)


__all__ = [
    "AmendmentRecord",
    "OnlineAmendmentLoop",
    "OnlineLoopConfig",
    "OnlineRunReport",
    "OUTCOMES",
]
