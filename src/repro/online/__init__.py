"""Online robustness: feed-driven cycle amendment with graceful degradation.

Layout:

* :mod:`repro.online.retry`   -- seeded capped-exponential retry policy,
  transient-failure taxonomy, deterministic failure injection
* :mod:`repro.online.breaker` -- three-state circuit breaker on virtual
  feed time (closed / open / half-open)
* :mod:`repro.online.loop`    -- the :class:`OnlineAmendmentLoop` driving
  :meth:`repro.service.VORService.amend_cycle` from a
  :class:`~repro.faults.feed.FaultFeed`

See ``docs/ONLINE.md`` for the state machine and tuning guidance.
"""

from repro.online.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerTransition,
    CircuitBreaker,
)
from repro.online.loop import (
    OUTCOMES,
    AmendmentRecord,
    OnlineAmendmentLoop,
    OnlineLoopConfig,
    OnlineRunReport,
)
from repro.online.retry import (
    OnlineError,
    RetryPolicy,
    TransientFailureInjector,
    TransientResolveError,
)

__all__ = [
    "AmendmentRecord",
    "BreakerTransition",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "OnlineAmendmentLoop",
    "OnlineError",
    "OnlineLoopConfig",
    "OnlineRunReport",
    "OUTCOMES",
    "RetryPolicy",
    "TransientFailureInjector",
    "TransientResolveError",
]
