"""Workload generator: neighborhoods x users x Zipf popularity x arrivals.

Reproduces the paper's experimental workload (Sec. 5.1): each intermediate
storage serves one neighborhood of ``users_per_neighborhood`` users (10 in
the paper); every user issues one reservation per cycle, picking a title by
Zipf popularity and a start time from the arrival process.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.catalog import VideoCatalog
from repro.errors import WorkloadError
from repro.topology.graph import Topology
from repro.workload.arrival import ArrivalProcess, UniformArrivals
from repro.workload.requests import Request, RequestBatch
from repro.workload.zipf import ZipfPopularity


class WorkloadGenerator:
    """Deterministic generator of one cycle's request batch.

    Args:
        topology: Supplies the neighborhoods -- one per storage node.
        catalog: Titles, ranked by popularity (catalog order = rank).
        alpha: Zipf skew parameter in [0, 1]; larger = less biased.
        users_per_neighborhood: Requests issued per storage per cycle.
        arrivals: Start-time process; defaults to uniform over 24 h.
        requests_per_user: Reservations each user makes per cycle.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        alpha: float = 0.271,
        users_per_neighborhood: int = 10,
        arrivals: ArrivalProcess | None = None,
        requests_per_user: int = 1,
    ):
        if users_per_neighborhood < 1:
            raise WorkloadError(
                f"users_per_neighborhood must be >= 1, got {users_per_neighborhood}"
            )
        if requests_per_user < 1:
            raise WorkloadError(
                f"requests_per_user must be >= 1, got {requests_per_user}"
            )
        if len(catalog) < 1:
            raise WorkloadError("catalog is empty")
        if not topology.storages:
            raise WorkloadError("topology has no storage (no neighborhoods)")
        self.topology = topology
        self.catalog = catalog
        self.popularity = ZipfPopularity(len(catalog), alpha)
        self.users_per_neighborhood = users_per_neighborhood
        self.arrivals = arrivals if arrivals is not None else UniformArrivals()
        self.requests_per_user = requests_per_user

    @property
    def n_requests(self) -> int:
        """Total requests produced per cycle."""
        return (
            len(self.topology.storages)
            * self.users_per_neighborhood
            * self.requests_per_user
        )

    def generate(self, seed: int = 0, *, rank_permutation=None) -> RequestBatch:
        """Produce the request batch for one cycle, deterministically.

        ``rank_permutation`` optionally remaps popularity ranks to catalog
        indices (``perm[rank] -> index``), e.g. from
        :class:`~repro.workload.churn.RankChurn` in multi-cycle studies;
        by default rank k is the k-th catalog entry.
        """
        if rank_permutation is not None and len(rank_permutation) != len(
            self.catalog
        ):
            raise WorkloadError(
                f"rank_permutation has {len(rank_permutation)} entries for a "
                f"catalog of {len(self.catalog)}"
            )
        rng = np.random.default_rng(seed)
        n = self.n_requests
        ranks = self.popularity.sample(n, rng)
        starts = self.arrivals.sample(n, rng)
        requests: list[Request] = []
        k = 0
        for storage in self.topology.storages:
            for u in range(self.users_per_neighborhood):
                user_id = f"{storage.name}/user{u:03d}"
                for _ in range(self.requests_per_user):
                    rank = int(ranks[k])
                    if rank_permutation is not None:
                        rank = int(rank_permutation[rank])
                    video = self.catalog.by_rank(rank)
                    requests.append(
                        Request(
                            start_time=float(starts[k]),
                            video_id=video.video_id,
                            user_id=user_id,
                            local_storage=storage.name,
                        )
                    )
                    k += 1
        return RequestBatch(requests)
