"""VOR workload substrate: users, neighborhoods, and reservation requests.

A Video-On-Reservation request is ``(user_id, video_id, starting_time)``
(paper Sec. 2.1); users sit in neighborhoods, each served by a *local*
intermediate storage.  Popularity follows a Zipf law -- Dan & Sitaram's
``alpha = 0.271`` fits commercial video-rental patterns (paper Sec. 5.4) --
and start times are drawn from a pluggable arrival process over the
scheduling cycle.
"""

from repro.workload.zipf import ZipfPopularity
from repro.workload.churn import RankChurn
from repro.workload.requests import Request, RequestBatch
from repro.workload.arrival import (
    ArrivalProcess,
    PeakHourArrivals,
    SlottedArrivals,
    UniformArrivals,
)
from repro.workload.generators import WorkloadGenerator

__all__ = [
    "ZipfPopularity",
    "RankChurn",
    "Request",
    "RequestBatch",
    "ArrivalProcess",
    "PeakHourArrivals",
    "SlottedArrivals",
    "UniformArrivals",
    "WorkloadGenerator",
]
