"""Request data model.

A user request carries exactly the paper's three attributes --
``(user_id, video_id, starting_time)`` -- plus the user's *local*
intermediate storage, which the paper treats as uniquely determined by the
user's neighborhood ("the path between the user and its local intermediate
storage is uniquely defined", Sec. 2.1).  Carrying it on the request saves
every consumer a user->neighborhood lookup.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True, order=True)
class Request:
    """One Video-On-Reservation request.

    Ordering is by ``start_time`` first (then the other fields as
    tie-breakers), so a sorted container of requests is chronological, the
    order in which the greedy scheduler consumes them.
    """

    start_time: float
    video_id: str
    user_id: str
    local_storage: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.start_time):
            raise WorkloadError(f"start_time must be finite, got {self.start_time}")
        for name, value in (
            ("video_id", self.video_id),
            ("user_id", self.user_id),
            ("local_storage", self.local_storage),
        ):
            if not value:
                raise WorkloadError(f"{name} must be non-empty")


class RequestBatch:
    """The full request set for one scheduling cycle, kept chronological.

    Provides the partition ``R_i`` by video id that the IVSP phase consumes
    (paper Sec. 3.2: "the scheduler collects the requests for the cycle and
    partitions them into sets R_i").
    """

    def __init__(self, requests: Iterable[Request] = ()):
        self._requests: list[Request] = sorted(requests)
        self._by_video: dict[str, list[Request]] | None = None

    def add(self, request: Request) -> None:
        """Insert a request, keeping chronological order."""
        import bisect

        bisect.insort(self._requests, request)
        self._by_video = None

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, idx: int) -> Request:
        return self._requests[idx]

    @property
    def video_ids(self) -> list[str]:
        """Distinct requested video ids, in first-request order."""
        seen: dict[str, None] = {}
        for r in self._requests:
            seen.setdefault(r.video_id, None)
        return list(seen)

    def by_video(self) -> dict[str, list[Request]]:
        """Partition ``R_i``: video id -> chronologically sorted requests."""
        if self._by_video is None:
            parts: dict[str, list[Request]] = {}
            for r in self._requests:
                parts.setdefault(r.video_id, []).append(r)
            self._by_video = parts
        return {k: list(v) for k, v in self._by_video.items()}

    def for_video(self, video_id: str) -> list[Request]:
        """Chronologically sorted requests for one video (may be empty)."""
        return self.by_video().get(video_id, [])

    @property
    def span(self) -> tuple[float, float]:
        """(earliest, latest) start time; raises on an empty batch."""
        if not self._requests:
            raise WorkloadError("empty request batch has no span")
        return (self._requests[0].start_time, self._requests[-1].start_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestBatch({len(self)} requests, "
            f"{len(self.video_ids)} distinct videos)"
        )
