"""Popularity churn across scheduling cycles.

Video popularity is not static: new releases enter near the top of the
chart and older titles decay (the video-rental pattern Dan & Sitaram fitted
is a *snapshot* of such a process).  For multi-cycle studies
(:mod:`repro.extensions.rolling`), :class:`RankChurn` evolves the mapping
from popularity rank to catalog title cycle by cycle:

* each cycle, a fraction ``churn`` of titles is redrawn to a uniformly
  random rank (modelling releases/decay as rank swaps);
* the remaining titles keep their rank ordering.

The Zipf *shape* over ranks is unchanged -- only which title occupies each
rank moves -- so single-cycle statistics stay comparable across cycles
while cache reuse across cycles degrades realistically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


class RankChurn:
    """Evolving rank->title assignment over scheduling cycles.

    Args:
        n_items: Catalog size.
        churn: Fraction of titles re-ranked each cycle, in [0, 1].
        seed: RNG seed; the whole trajectory is deterministic.
    """

    def __init__(self, n_items: int, *, churn: float = 0.1, seed: int = 0):
        if n_items < 1:
            raise WorkloadError(f"need at least one item, got {n_items}")
        if not (0.0 <= churn <= 1.0):
            raise WorkloadError(f"churn must be in [0, 1], got {churn}")
        self.n_items = n_items
        self.churn = churn
        self._rng = np.random.default_rng(seed)
        #: permutation[rank] = catalog index currently holding that rank
        self._perm = np.arange(n_items, dtype=np.int64)
        self._cycle = 0

    @property
    def cycle(self) -> int:
        return self._cycle

    @property
    def permutation(self) -> np.ndarray:
        """Current rank->catalog-index mapping (read-only copy)."""
        return self._perm.copy()

    def title_at_rank(self, rank: int) -> int:
        """Catalog index of the title currently at ``rank`` (0-based)."""
        if not (0 <= rank < self.n_items):
            raise WorkloadError(f"rank {rank} out of range [0, {self.n_items})")
        return int(self._perm[rank])

    def advance(self) -> np.ndarray:
        """Move to the next cycle; returns the new permutation (copy).

        A ``churn`` fraction of positions is selected and their titles are
        re-dealt among those positions uniformly at random.
        """
        n_moved = int(round(self.churn * self.n_items))
        if n_moved >= 2:
            positions = self._rng.choice(self.n_items, size=n_moved, replace=False)
            shuffled = self._rng.permutation(positions)
            self._perm[positions] = self._perm[shuffled]
        self._cycle += 1
        return self.permutation
