"""Arrival processes: how reservation start times fall within a cycle.

The paper does not specify its start-time distribution; we default to uniform
over a 24-hour cycle and additionally provide a peak-hour (prime-time) model
and a slotted model (showings on fixed boundaries, as a broadcast-like
service would use).  All processes draw from a caller-supplied
``numpy.random.Generator`` so workloads stay deterministic under a seed.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import WorkloadError
from repro import units


class ArrivalProcess(abc.ABC):
    """Distribution of service start times over ``[0, cycle)``."""

    def __init__(self, cycle: float = units.DAY):
        if not cycle > 0:
            raise WorkloadError(f"cycle must be positive, got {cycle}")
        self.cycle = cycle

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` start times in ``[0, cycle)``."""


class UniformArrivals(ArrivalProcess):
    """Start times uniform over the cycle (the library default)."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError(f"n must be >= 0, got {n}")
        return rng.random(n) * self.cycle


class PeakHourArrivals(ArrivalProcess):
    """Prime-time-heavy start times.

    A fraction ``peak_weight`` of requests is drawn from a normal
    distribution centred on ``peak_center`` with spread ``peak_width`` (both
    seconds into the cycle, wrapped modulo the cycle); the rest is uniform.
    Models the evening-viewing concentration of entertainment VOD.
    """

    def __init__(
        self,
        cycle: float = units.DAY,
        *,
        peak_center: float = 20.0 * units.HOUR,
        peak_width: float = 1.5 * units.HOUR,
        peak_weight: float = 0.7,
    ):
        super().__init__(cycle)
        if not (0.0 <= peak_weight <= 1.0):
            raise WorkloadError(f"peak_weight must be in [0, 1], got {peak_weight}")
        if peak_width <= 0:
            raise WorkloadError(f"peak_width must be positive, got {peak_width}")
        self.peak_center = peak_center % cycle
        self.peak_width = peak_width
        self.peak_weight = peak_weight

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError(f"n must be >= 0, got {n}")
        in_peak = rng.random(n) < self.peak_weight
        out = rng.random(n) * self.cycle
        n_peak = int(in_peak.sum())
        peaked = rng.normal(self.peak_center, self.peak_width, size=n_peak)
        out[in_peak] = np.mod(peaked, self.cycle)
        return out


class SlottedArrivals(ArrivalProcess):
    """Start times snapped to fixed slot boundaries (e.g. every 30 min).

    Reservation services commonly offer discrete showing times; snapping
    also maximises stream sharing, which makes this the friendliest case
    for intermediate caching.
    """

    def __init__(self, cycle: float = units.DAY, *, slot: float = 30.0 * units.MINUTE):
        super().__init__(cycle)
        if not (0 < slot <= cycle):
            raise WorkloadError(f"slot must be in (0, cycle], got {slot}")
        self.slot = slot

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError(f"n must be >= 0, got {n}")
        n_slots = max(1, int(self.cycle // self.slot))
        idx = rng.integers(0, n_slots, size=n)
        return idx.astype(np.float64) * self.slot
