"""Zipf popularity model for video access patterns.

The paper (Sec. 5.4, following Dan & Sitaram) models the probability of
requesting the ``i``-th most popular of ``M`` titles as

    p_i  proportional to  1 / i^(1 - alpha),        i = 1..M

where the skew parameter ``alpha`` in ``[0, 1]`` *increases* toward a uniform
distribution: "Larger alpha implies a less biased distribution."  With
``alpha = 0`` this is the classic Zipf law; ``alpha = 1`` is uniform;
``alpha = 0.271`` approximates commercial video-rental behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


class ZipfPopularity:
    """Sampler and pmf for the paper's Zipf(alpha) access pattern."""

    def __init__(self, n_items: int, alpha: float):
        if n_items < 1:
            raise WorkloadError(f"need at least one item, got {n_items}")
        if not (0.0 <= alpha <= 1.0):
            raise WorkloadError(f"alpha must be in [0, 1], got {alpha}")
        self.n_items = n_items
        self.alpha = alpha
        ranks = np.arange(1, n_items + 1, dtype=np.float64)
        weights = ranks ** -(1.0 - alpha)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating-point drift at the top of the cdf.
        self._cdf[-1] = 1.0

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank (0-based index = rank-1). Read-only view."""
        out = self._pmf.view()
        out.flags.writeable = False
        return out

    def probability(self, rank: int) -> float:
        """Probability of the ``rank``-th most popular item (0-based)."""
        if not (0 <= rank < self.n_items):
            raise WorkloadError(f"rank {rank} out of range [0, {self.n_items})")
        return float(self._pmf[rank])

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` 0-based ranks i.i.d. from the popularity distribution."""
        if n < 0:
            raise WorkloadError(f"n must be >= 0, got {n}")
        u = rng.random(n)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def skewness_summary(self, top_fraction: float = 0.1) -> float:
        """Probability mass captured by the most popular ``top_fraction``.

        A quick scalar used in reports: for the rental-pattern fit
        (alpha=0.271, 500 titles) the top 10% of titles draw ~58% of requests.
        """
        if not (0.0 < top_fraction <= 1.0):
            raise WorkloadError(f"top_fraction must be in (0, 1], got {top_fraction}")
        k = max(1, int(round(self.n_items * top_fraction)))
        return float(self._pmf[:k].sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfPopularity(n_items={self.n_items}, alpha={self.alpha})"
