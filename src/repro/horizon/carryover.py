"""Mid-stream resume accounting: the carryover ledger.

The contingency scheduler re-solves every impacted video from scratch,
which implicitly assumes an interrupted stream restarts from byte zero.
In a real service the blocks already played out of the neighborhood
storage *survive the fault* -- only the un-delivered tail must be shipped
again.  :func:`build_resume_ledger` reconstructs that distinction after a
recovery pass:

* A saved request whose original stream had **already started** when a
  total fault first struck its route is classified ``resumed``: the
  delivered fraction is ``(t_hit - start) / playback``, and that fraction
  of the *replacement* delivery's Ψ_D is returned as a **resume credit**
  (the tail is the only re-transfer actually needed).
* A saved request whose neighborhood storage itself went down loses its
  buffered blocks (``restarted``, reason ``is-lost``); one whose stream
  had not begun when the fault hit restarts trivially (``restarted``,
  reason ``not-started``).
* Saved requests whose original delivery never intersected a total fault
  were merely re-routed, not interrupted; they do not enter the ledger.

Credits are pure accounting: the schedule and its billing stay as the
recovery produced them, and the horizon layer subtracts the ledger's
credit total when reporting horizon-wide Ψ.  Everything is derived from
committed schedules and the fault plan -- no wall clock, no RNG -- so the
ledger is bit-identical across Phase-1 backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostModel
from repro.core.schedule import DeliveryInfo, Schedule
from repro.faults.plan import FaultPlan, FaultSpec, LINK_KINDS
from repro.workload.requests import Request

#: Ledger outcomes.
RESUME_OUTCOMES = ("resumed", "restarted")


@dataclass(frozen=True)
class ResumeEntry:
    """One interrupted stream's fate after recovery."""

    request: Request
    outcome: str  # "resumed" | "restarted"
    #: Fraction of the playback already delivered when the fault struck.
    fraction: float = 0.0
    #: Ψ_D credit: the delivered fraction of the replacement delivery's
    #: network cost (0 for restarts).
    credit: float = 0.0
    #: Why a restart was needed ("" for resumes).
    reason: str = ""

    def to_json_dict(self) -> dict:
        return {
            "user_id": self.request.user_id,
            "video_id": self.request.video_id,
            "start_time": self.request.start_time,
            "local_storage": self.request.local_storage,
            "outcome": self.outcome,
            "fraction": round(self.fraction, 6),
            "credit": round(self.credit, 6),
            "reason": self.reason,
        }


@dataclass(frozen=True)
class CarryoverLedger:
    """All interrupted streams of one amended cycle, classified."""

    entries: tuple[ResumeEntry, ...] = ()

    @property
    def resumed(self) -> int:
        return sum(1 for e in self.entries if e.outcome == "resumed")

    @property
    def restarted(self) -> int:
        return sum(1 for e in self.entries if e.outcome == "restarted")

    @property
    def credit_total(self) -> float:
        """Total Ψ_D already paid for delivered blocks that survived."""
        return math.fsum(e.credit for e in self.entries)

    def to_json_dict(self) -> dict:
        return {
            "resumed": self.resumed,
            "restarted": self.restarted,
            "credit_total": round(self.credit_total, 6),
            "entries": [e.to_json_dict() for e in self.entries],
        }


def _route_edges(route: tuple[str, ...]) -> set[tuple[str, str]]:
    edges: set[tuple[str, str]] = set()
    for a, b in zip(route, route[1:]):
        edges.add((a, b))
        edges.add((b, a))
    return edges


def _first_hit(
    delivery: DeliveryInfo, playback: float, plan: FaultPlan
) -> FaultSpec | None:
    """Earliest *total* fault striking the delivery's stream window."""
    t0 = delivery.start_time
    t1 = t0 + playback
    edges = _route_edges(delivery.route)
    hits = []
    for f in plan:
        if not f.is_total or not f.overlaps(t0, t1):
            continue
        if f.kind in LINK_KINDS:
            a, b = f.target
            if (a, b) in edges:
                hits.append(f)
        elif f.target in delivery.route:
            hits.append(f)
    if not hits:
        return None
    return min(hits, key=lambda f: (f.t_start, f._sort_key()))


def _storage_lost(
    request: Request, t0: float, t1: float, plan: FaultPlan
) -> bool:
    """Did the requester's neighborhood storage itself go down mid-stream?"""
    return any(
        f.is_total
        and f.kind not in LINK_KINDS
        and f.target == request.local_storage
        and f.overlaps(t0, t1)
        for f in plan
    )


def build_resume_ledger(
    original: Schedule,
    amended: Schedule,
    plan: FaultPlan,
    cost_model: CostModel,
    catalog: VideoCatalog,
) -> CarryoverLedger:
    """Classify every interrupted-but-saved stream of an amended cycle.

    Scans the *original* schedule for deliveries struck mid-window by a
    total fault and looks each one up in the amended schedule.  Requests
    the amendment dropped entirely (lost) get no entry -- there is
    nothing to resume.

    Args:
        original: The cycle's schedule *before* amendment (the streams
            that were actually playing when the faults struck).
        amended: The schedule after the (possibly multi-batch) amendment
            loop settled.
        plan: The cumulative fault plan the amendments ran under.
        cost_model: Prices the replacement deliveries' Ψ_D.
        catalog: Supplies playback durations.
    """
    entries: list[ResumeEntry] = []
    hit_deliveries = []
    for fs in original:
        video = catalog[fs.video_id]
        for old_d in fs.deliveries:
            hit = _first_hit(old_d, video.playback, plan)
            if hit is not None:
                hit_deliveries.append((old_d, hit, video))
    hit_deliveries.sort(key=lambda t: t[0].request)
    for old_d, hit, video in hit_deliveries:
        request = old_d.request
        new_d = _find_delivery(amended, request)
        if new_d is None:
            continue  # lost, not resumed: the journal already records it
        if _storage_lost(
            request, old_d.start_time, old_d.start_time + video.playback, plan
        ):
            entries.append(ResumeEntry(request, "restarted", reason="is-lost"))
            continue
        fraction = (hit.t_start - old_d.start_time) / video.playback
        fraction = max(0.0, min(1.0, fraction))
        if fraction <= 0.0:
            entries.append(
                ResumeEntry(request, "restarted", reason="not-started")
            )
            continue
        credit = fraction * cost_model.delivery_cost(new_d)
        entries.append(
            ResumeEntry(request, "resumed", fraction=fraction, credit=credit)
        )
    return CarryoverLedger(entries=tuple(entries))


def _find_delivery(schedule: Schedule, request: Request) -> DeliveryInfo | None:
    if request.video_id not in schedule:
        return None
    for d in schedule.file(request.video_id).deliveries:
        if d.request == request:
            return d
    return None
