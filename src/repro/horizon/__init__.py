"""Multi-cycle horizon orchestration: migration, resume, boundary feeds.

See :mod:`repro.horizon.orchestrator` for the cycle-chaining loop,
:mod:`repro.horizon.migration` for the between-cycle replica migration
planner, and :mod:`repro.horizon.carryover` for the mid-stream resume
ledger.
"""

from repro.horizon.carryover import (
    CarryoverLedger,
    ResumeEntry,
    build_resume_ledger,
)
from repro.horizon.migration import (
    MigrationConfig,
    MigrationMove,
    MigrationPlan,
    MigrationPlanner,
    VideoDecision,
)
from repro.horizon.orchestrator import (
    CycleOutcome,
    HorizonConfig,
    HorizonOrchestrator,
    HorizonReport,
    generate_drifting_cycles,
    split_events,
)

__all__ = [
    "CarryoverLedger",
    "CycleOutcome",
    "HorizonConfig",
    "HorizonOrchestrator",
    "HorizonReport",
    "MigrationConfig",
    "MigrationMove",
    "MigrationPlan",
    "MigrationPlanner",
    "ResumeEntry",
    "VideoDecision",
    "build_resume_ledger",
    "generate_drifting_cycles",
    "split_events",
]
