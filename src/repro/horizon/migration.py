"""Heat-driven replica migration between scheduling cycles.

A long-running VOR service watches popularity drift: the replica map that
was cheap for cycle ``k`` leaves the new hot titles homed far from their
audiences in cycle ``k+1``.  :class:`MigrationPlanner` closes that gap at
each cycle boundary:

1. **Re-derive heat** from the cycle that just closed (its observed request
   batch) and build a candidate map with
   :meth:`repro.replication.ReplicaMap.heat_placement`.
2. **Price every per-video delta as a real staged transfer**: each added
   copy ships ``video.size`` bytes from the cheapest incumbent home over
   the priced network (:meth:`repro.core.costmodel.CostModel.transfer_rate`)
   and occupies a tape drive for
   :meth:`repro.warehouse.hierarchy.WarehouseSpec.staging_duration`
   seconds of the inter-cycle maintenance window.
3. **Accept only paying moves**: a video's move must project strictly more
   delivery-Ψ savings over the *next* cycle's already-booked reservations
   (VOR lead time means that demand is known) than its staging transfers
   cost, and the surviving move set must also win a full two-phase **trial
   solve** of the next batch -- candidate Ψ plus staging cost strictly
   below incumbent Ψ -- before it is adopted.
4. **Price drop-side capacity reclamation**: every dropped copy frees
   ``video.size`` bytes of the warehouse's disk
   (:attr:`~repro.warehouse.hierarchy.WarehouseSpec.disk_capacity`), and
   added copies must fit the freed space -- drops are applied best-first
   alongside adds, so a plan that swaps a cold title out can swap a hot
   title *in* at a warehouse that was full.  Adds that do not fit are
   rejected with reason ``"disk-capacity"`` before the trial solve, so
   the reclaimed capacity the trial sees is exactly what the disks hold.

The planner is a pure function of its inputs: no wall clock, no RNG beyond
the seeded candidate placement, so the same arguments always return the
same plan on every Phase-1 backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig
from repro.core.scheduler import VideoScheduler
from repro.errors import ReplicationError
from repro.replication.replica import ReplicaMap
from repro.topology.graph import Topology
from repro.topology.routing import Router
from repro.warehouse.hierarchy import WarehouseSpec
from repro.workload.requests import RequestBatch

#: Why a per-video move was (not) adopted.
MOVE_REASONS = (
    "accepted",        # projected savings beat staging cost and the trial solve
    "no-demand",       # title not booked next cycle: nothing to save on
    "no-improvement",  # projected savings do not strictly beat staging cost
    "unreachable",     # an added home cannot be staged from any incumbent home
    "drive-budget",    # tape drives cannot fit the staging in the window
    "disk-capacity",   # added copies do not fit the warehouse disk, even
                       # after reclaiming this plan's dropped copies
    "trial-regression",  # the aggregate trial solve did not confirm the win
)


@dataclass(frozen=True)
class MigrationConfig:
    """Tuning of the between-cycle migration planner.

    Attributes:
        degree: Copies per cold title in the candidate placement.
        hot_fraction: Fraction of titles treated as hot.
        hot_degree: Copies per hot title (``None`` = every warehouse).
        seed: Seed for the candidate placement's round-robin offset.
        staging_window: Seconds of inter-cycle maintenance window available
            for staging transfers.  Total accepted drive time is capped at
            ``tape_drives * staging_window`` when a
            :class:`~repro.warehouse.hierarchy.WarehouseSpec` is present;
            ``None`` disables the budget.
    """

    degree: int = 1
    hot_fraction: float = 0.25
    hot_degree: int | None = None
    seed: int = 0
    staging_window: float | None = 3600.0

    def __post_init__(self) -> None:
        if self.staging_window is not None and self.staging_window <= 0:
            raise ReplicationError(
                f"staging_window must be positive, got {self.staging_window}"
            )


@dataclass(frozen=True)
class MigrationMove:
    """One staged copy movement: add a copy at (or drop one from) a home."""

    video_id: str
    action: str  # "add" | "drop"
    warehouse: str
    #: Incumbent home the new copy ships from ("" for drops).
    source: str = ""
    #: Ψ_D of the staging transfer (0 for drops -- deletion is free).
    transfer_cost: float = 0.0
    #: Tape-drive seconds the staging occupies (0 for drops).
    staging_seconds: float = 0.0
    #: Disk bytes the move frees at the warehouse (``video.size`` for
    #: drops, 0 for adds) -- the capacity the planner reclaims and makes
    #: available to this plan's own added copies.
    reclaimed_bytes: float = 0.0


@dataclass(frozen=True)
class VideoDecision:
    """The planner's verdict on one video's proposed home-set change."""

    video_id: str
    accepted: bool
    reason: str
    moves: tuple[MigrationMove, ...] = ()
    #: Projected next-cycle delivery-Ψ saving of the candidate homes.
    projected_saving: float = 0.0
    #: Total staging transfer cost of the added copies.
    staging_cost: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "video_id": self.video_id,
            "accepted": self.accepted,
            "reason": self.reason,
            "moves": [
                {
                    "action": m.action,
                    "warehouse": m.warehouse,
                    "source": m.source,
                    "transfer_cost": round(m.transfer_cost, 6),
                    "staging_seconds": round(m.staging_seconds, 6),
                    "reclaimed_bytes": round(m.reclaimed_bytes, 6),
                }
                for m in self.moves
            ],
            "projected_saving": round(self.projected_saving, 6),
            "staging_cost": round(self.staging_cost, 6),
        }


@dataclass(frozen=True)
class MigrationPlan:
    """Everything one cycle-boundary migration decision produced."""

    boundary_index: int
    old_map: ReplicaMap
    new_map: ReplicaMap
    accepted: tuple[VideoDecision, ...] = ()
    rejected: tuple[VideoDecision, ...] = ()
    #: Trial-solve Ψ of the next batch under each map (``None`` when no
    #: move survived the per-video screen and no trial ran).
    trial_psi_incumbent: float | None = None
    trial_psi_candidate: float | None = None

    @property
    def staging_cost(self) -> float:
        """Total transfer cost of every accepted staging."""
        return math.fsum(d.staging_cost for d in self.accepted)

    @property
    def projected_saving(self) -> float:
        return math.fsum(d.projected_saving for d in self.accepted)

    @property
    def staging_seconds(self) -> float:
        return math.fsum(
            m.staging_seconds for d in self.accepted for m in d.moves
        )

    @property
    def moves(self) -> tuple[MigrationMove, ...]:
        return tuple(m for d in self.accepted for m in d.moves)

    @property
    def applied(self) -> bool:
        return bool(self.accepted)

    def to_json_dict(self) -> dict:
        return {
            "boundary_index": self.boundary_index,
            "accepted": [d.to_json_dict() for d in self.accepted],
            "rejected": [d.to_json_dict() for d in self.rejected],
            "staging_cost": round(self.staging_cost, 6),
            "projected_saving": round(self.projected_saving, 6),
            "trial_psi_incumbent": (
                None
                if self.trial_psi_incumbent is None
                else round(self.trial_psi_incumbent, 6)
            ),
            "trial_psi_candidate": (
                None
                if self.trial_psi_candidate is None
                else round(self.trial_psi_candidate, 6)
            ),
        }


@dataclass
class _Candidate:
    """Internal: a video change that passed the per-video screen."""

    video_id: str
    moves: list[MigrationMove] = field(default_factory=list)
    saving: float = 0.0
    staging_cost: float = 0.0
    staging_seconds: float = 0.0


class MigrationPlanner:
    """Propose and screen replica-map deltas at a cycle boundary.

    Args:
        topology: The delivery infrastructure.
        catalog: Offered titles.
        config: Candidate placement + budget tuning.
        warehouse: Optional tape hierarchy; when present, staging transfers
            consume drive time against ``config.staging_window``.
        heat_metric: Phase-2 victim criterion used by the trial solves.
        parallel: Phase-1 execution plan for the trial solves (results are
            bit-identical across backends either way).
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        config: MigrationConfig | None = None,
        warehouse: WarehouseSpec | None = None,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        parallel: ParallelConfig | None = None,
    ):
        self.topology = topology
        self.catalog = catalog
        self.config = config if config is not None else MigrationConfig()
        self.warehouse = warehouse
        self.heat_metric = heat_metric
        self.parallel = parallel
        self._router = Router(topology)
        #: warehouse -> {destination -> cheapest $/byte}, filled lazily.
        self._rates: dict[str, dict[str, float]] = {}

    # -- the boundary decision ---------------------------------------------

    def plan(
        self,
        closed_batch: RequestBatch,
        next_batch: RequestBatch,
        cost_model: CostModel,
        *,
        boundary_index: int = 0,
    ) -> MigrationPlan:
        """Decide the replica map for the next cycle.

        Args:
            closed_batch: The requests of the cycle that just closed --
                the heat signal driving the candidate placement.
            next_batch: The already-booked reservations of the upcoming
                cycle -- the demand the savings are projected over.
            cost_model: The service's current model; its
                :attr:`~repro.core.costmodel.CostModel.replicas` is the
                incumbent map (required).
            boundary_index: Which boundary this is (reporting only).
        """
        incumbent = cost_model.replicas
        if incumbent is None:
            raise ReplicationError(
                "migration planning needs an incumbent replica map: "
                "construct the service with replicas="
            )
        candidate = ReplicaMap.heat_placement(
            self.topology,
            self.catalog,
            closed_batch,
            degree=self.config.degree,
            hot_fraction=self.config.hot_fraction,
            hot_degree=self.config.hot_degree,
            seed=self.config.seed,
        )
        demand = next_batch.by_video() if next_batch else {}

        screened: list[_Candidate] = []
        rejected: list[VideoDecision] = []
        for video_id in sorted(v.video_id for v in self.catalog):
            old_homes = frozenset(incumbent.homes(video_id))
            new_homes = frozenset(candidate.homes(video_id))
            if old_homes == new_homes:
                continue
            verdict = self._screen_video(
                video_id, old_homes, new_homes,
                demand.get(video_id, ()), cost_model,
            )
            if isinstance(verdict, _Candidate):
                screened.append(verdict)
            else:
                rejected.append(verdict)

        screened = self._fit_disk_capacity(incumbent, screened, rejected)
        screened = self._fit_drive_budget(screened, rejected)
        if not screened:
            return MigrationPlan(
                boundary_index=boundary_index,
                old_map=incumbent,
                new_map=incumbent,
                rejected=tuple(rejected),
            )

        pruned = self._compose_map(incumbent, candidate, screened)
        psi_inc, psi_cand = self._trial(next_batch, cost_model, pruned)
        staging_total = math.fsum(c.staging_cost for c in screened)
        if psi_cand + staging_total < psi_inc:
            accepted = tuple(
                VideoDecision(
                    video_id=c.video_id,
                    accepted=True,
                    reason="accepted",
                    moves=tuple(c.moves),
                    projected_saving=c.saving,
                    staging_cost=c.staging_cost,
                )
                for c in screened
            )
            new_map = pruned
        else:
            rejected.extend(
                VideoDecision(
                    video_id=c.video_id,
                    accepted=False,
                    reason="trial-regression",
                    moves=tuple(c.moves),
                    projected_saving=c.saving,
                    staging_cost=c.staging_cost,
                )
                for c in screened
            )
            accepted = ()
            new_map = incumbent
        return MigrationPlan(
            boundary_index=boundary_index,
            old_map=incumbent,
            new_map=new_map,
            accepted=accepted,
            rejected=tuple(sorted(rejected, key=lambda d: d.video_id)),
            trial_psi_incumbent=psi_inc,
            trial_psi_candidate=psi_cand,
        )

    # -- internals -----------------------------------------------------------

    def _rates_from(self, warehouse: str) -> dict[str, float]:
        rates = self._rates.get(warehouse)
        if rates is None:
            rates = self._router.all_rates_from(warehouse)
            self._rates[warehouse] = rates
        return rates

    def _best_rate(self, homes: frozenset[str], dst: str) -> float:
        return min(
            (self._rates_from(h).get(dst, math.inf) for h in sorted(homes)),
            default=math.inf,
        )

    def _screen_video(
        self,
        video_id: str,
        old_homes: frozenset[str],
        new_homes: frozenset[str],
        requests,
        cost_model: CostModel,
    ):
        """Per-video screen: projected savings must beat staging cost."""
        video = self.catalog[video_id]
        if not requests:
            return VideoDecision(video_id, False, "no-demand")

        saving = 0.0
        for r in requests:
            before = self._best_rate(old_homes, r.local_storage)
            after = self._best_rate(new_homes, r.local_storage)
            if math.isinf(before) or math.isinf(after):
                continue  # the trial solve arbitrates reachability corner cases
            saving += video.network_volume * (before - after)

        cand = _Candidate(video_id)
        for w in sorted(new_homes - old_homes):
            src, rate = "", math.inf
            for h in sorted(old_homes):
                r = self._rates_from(h).get(w, math.inf)
                if r < rate:
                    src, rate = h, r
            if math.isinf(rate):
                return VideoDecision(video_id, False, "unreachable")
            seconds = (
                self.warehouse.staging_duration(video.size)
                if self.warehouse is not None
                else 0.0
            )
            cand.moves.append(
                MigrationMove(
                    video_id=video_id,
                    action="add",
                    warehouse=w,
                    source=src,
                    transfer_cost=video.size * rate,
                    staging_seconds=seconds,
                )
            )
            cand.staging_cost += video.size * rate
            cand.staging_seconds += seconds
        for w in sorted(old_homes - new_homes):
            cand.moves.append(
                MigrationMove(
                    video_id=video_id,
                    action="drop",
                    warehouse=w,
                    reclaimed_bytes=video.size,
                )
            )
        cand.saving = saving
        if not saving > cand.staging_cost:
            return VideoDecision(
                video_id, False, "no-improvement",
                moves=tuple(cand.moves),
                projected_saving=saving,
                staging_cost=cand.staging_cost,
            )
        return cand

    def _fit_disk_capacity(
        self,
        incumbent: ReplicaMap,
        screened: list[_Candidate],
        rejected: list[VideoDecision],
    ) -> list[_Candidate]:
        """Fit added copies to the warehouse disks, reclaiming drop space.

        Per-warehouse free bytes start at
        :attr:`~repro.warehouse.hierarchy.WarehouseSpec.disk_capacity`
        minus the incumbent map's occupancy.  Candidates are processed in
        the same deterministic best-first order as the drive budget; each
        candidate's *drops* reclaim their video's size before its *adds*
        are charged, and the reclaimed space stays available to every
        later candidate -- so a swap (drop a cold title, add a hot one)
        fits where the add alone would not.  Candidates whose adds do not
        fit are rejected with reason ``"disk-capacity"`` and their
        tentative reclaims reverted.
        """
        if self.warehouse is None or not screened:
            return screened
        capacity = self.warehouse.disk_capacity
        if math.isinf(capacity):
            return screened
        free: dict[str, float] = {
            w.name: capacity for w in self.topology.warehouses
        }
        for v in self.catalog:
            for home in incumbent.homes(v.video_id):
                free[home] = free.get(home, capacity) - v.size
        kept: list[_Candidate] = []
        ranked = sorted(
            screened,
            key=lambda c: (-(c.saving - c.staging_cost), c.video_id),
        )
        for c in ranked:
            delta: dict[str, float] = {}
            fits = True
            for m in c.moves:
                if m.action == "drop":
                    delta[m.warehouse] = (
                        delta.get(m.warehouse, 0.0) + m.reclaimed_bytes
                    )
            for m in c.moves:
                if m.action != "add":
                    continue
                size = self.catalog[m.video_id].size
                if size > free.get(m.warehouse, capacity) + delta.get(
                    m.warehouse, 0.0
                ):
                    fits = False
                    break
                delta[m.warehouse] = delta.get(m.warehouse, 0.0) - size
            if fits:
                for w, d in delta.items():
                    free[w] = free.get(w, capacity) + d
                kept.append(c)
            else:
                rejected.append(
                    VideoDecision(
                        video_id=c.video_id,
                        accepted=False,
                        reason="disk-capacity",
                        moves=tuple(c.moves),
                        projected_saving=c.saving,
                        staging_cost=c.staging_cost,
                    )
                )
        kept.sort(key=lambda c: c.video_id)
        return kept

    def _fit_drive_budget(
        self, screened: list[_Candidate], rejected: list[VideoDecision]
    ) -> list[_Candidate]:
        """Admit moves best-first until the tape drives run out of window."""
        if self.warehouse is None or self.config.staging_window is None:
            return screened
        budget = self.warehouse.tape_drives * self.config.staging_window
        kept: list[_Candidate] = []
        used = 0.0
        ranked = sorted(
            screened,
            key=lambda c: (-(c.saving - c.staging_cost), c.video_id),
        )
        for c in ranked:
            if used + c.staging_seconds <= budget:
                kept.append(c)
                used += c.staging_seconds
            else:
                rejected.append(
                    VideoDecision(
                        video_id=c.video_id,
                        accepted=False,
                        reason="drive-budget",
                        moves=tuple(c.moves),
                        projected_saving=c.saving,
                        staging_cost=c.staging_cost,
                    )
                )
        kept.sort(key=lambda c: c.video_id)
        return kept

    def _compose_map(
        self,
        incumbent: ReplicaMap,
        candidate: ReplicaMap,
        screened: list[_Candidate],
    ) -> ReplicaMap:
        moved = {c.video_id for c in screened}
        homes = {
            v.video_id: (
                candidate.homes(v.video_id)
                if v.video_id in moved
                else incumbent.homes(v.video_id)
            )
            for v in self.catalog
        }
        pruned = ReplicaMap(homes)
        pruned.validate(self.topology, self.catalog)
        return pruned

    def _trial(
        self,
        next_batch: RequestBatch,
        cost_model: CostModel,
        pruned: ReplicaMap,
    ) -> tuple[float, float]:
        """Full two-phase solve of the next batch under both maps.

        Trial solves run against a **null** observability handle: they are
        what-if evaluations, not service decisions, so they must not leak
        events into the journal or counters into the registry.
        """
        psi = []
        for cm in (cost_model, cost_model.with_replicas(pruned)):
            scheduler = VideoScheduler(
                self.topology,
                self.catalog,
                heat_metric=self.heat_metric,
                cost_model=cm.worker_view(),
                parallel=self.parallel,
            )
            psi.append(scheduler.solve(next_batch).total_cost)
        return psi[0], psi[1]
