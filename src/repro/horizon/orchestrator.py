"""The multi-cycle horizon orchestrator.

One :class:`~repro.service.VORService` cycle is the paper's unit of work;
a deployed service runs them back-to-back forever.
:class:`HorizonOrchestrator` chains cycles over a *horizon* and adds the
three things a single cycle cannot express:

* **replica migration** -- between cycles the
  :class:`~repro.horizon.migration.MigrationPlanner` re-derives heat from
  the closing cycle's workload and re-homes copies when the projected Ψ
  savings beat the staging transfers (see :mod:`repro.horizon.migration`);
* **boundary-spanning fault feeds** -- a
  :class:`~repro.faults.feed.FaultFeed` is split per cycle by *arrival*
  time, and a fault whose window outlives its cycle is carried across the
  seam as a synthetic report at the next boundary, so the existing
  :class:`~repro.online.loop.OnlineAmendmentLoop` amends every cycle the
  window actually touches;
* **mid-stream resume** -- after each amended cycle the
  :func:`~repro.horizon.carryover.build_resume_ledger` pass decides which
  interrupted streams keep their already-delivered blocks, and the
  horizon Ψ accounting charges only the re-transfer tail.

Everything stays deterministic: the orchestrator introduces no RNG and no
wall clock, so a seeded horizon is bit-identical across the serial,
thread, and process Phase-1 backends -- journals included.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig
from repro.errors import ScheduleError
from repro.faults.feed import FaultEvent, FaultFeed
from repro.horizon.carryover import CarryoverLedger, build_resume_ledger
from repro.horizon.migration import MigrationConfig, MigrationPlan, MigrationPlanner
from repro.obs import NULL_OBS, Observability
from repro.online.loop import OnlineAmendmentLoop, OnlineLoopConfig
from repro.service import CycleReport, VORService
from repro.topology.graph import Topology
from repro.warehouse.hierarchy import WarehouseSpec
from repro.workload.churn import RankChurn
from repro.workload.generators import WorkloadGenerator
from repro.workload.arrival import UniformArrivals
from repro.workload.requests import Request, RequestBatch
from repro import units

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class HorizonConfig:
    """Tuning of a horizon run.

    Attributes:
        migration: Between-cycle migration tuning; ``None`` freezes the
            initial replica map for the whole horizon.
        online: Amendment-loop tuning for cycles that faults touch.
        resume_credits: Build the carryover ledger after each amended
            cycle and credit the already-delivered stream fractions.
    """

    migration: MigrationConfig | None = field(default_factory=MigrationConfig)
    online: OnlineLoopConfig = field(default_factory=OnlineLoopConfig)
    resume_credits: bool = True


@dataclass(frozen=True)
class CycleOutcome:
    """What one cycle of the horizon produced."""

    index: int
    cycle_end: float
    requests: int
    deliveries: int
    #: Gross / net (carryover-credited) Ψ of the cycle's final schedule.
    psi_gross: float
    psi_net: float
    carried_in: int
    carried_out: int
    reused_carryover: int
    feasible: bool
    #: Fault events amended into this cycle (0 = clean cycle).
    fault_events: int = 0
    #: Of those, reports carried across the boundary from earlier cycles.
    carried_events: int = 0
    amendment_batches: int = 0
    amendment_outcomes: tuple[str, ...] = ()
    requests_saved: int = 0
    requests_lost: int = 0
    ledger: CarryoverLedger | None = None

    @property
    def resumed(self) -> int:
        return self.ledger.resumed if self.ledger is not None else 0

    @property
    def restarted(self) -> int:
        return self.ledger.restarted if self.ledger is not None else 0

    @property
    def resume_credit(self) -> float:
        return self.ledger.credit_total if self.ledger is not None else 0.0

    def to_json_dict(self) -> dict:
        return {
            "index": self.index,
            "cycle_end": self.cycle_end,
            "requests": self.requests,
            "deliveries": self.deliveries,
            "psi_gross": round(self.psi_gross, 6),
            "psi_net": round(self.psi_net, 6),
            "carried_in": self.carried_in,
            "carried_out": self.carried_out,
            "reused_carryover": self.reused_carryover,
            "feasible": self.feasible,
            "fault_events": self.fault_events,
            "carried_events": self.carried_events,
            "amendment_batches": self.amendment_batches,
            "amendment_outcomes": list(self.amendment_outcomes),
            "requests_saved": self.requests_saved,
            "requests_lost": self.requests_lost,
            "resumed": self.resumed,
            "restarted": self.restarted,
            "resume_credit": round(self.resume_credit, 6),
        }


@dataclass(frozen=True)
class HorizonReport:
    """Everything a horizon run produced."""

    cycles: tuple[CycleOutcome, ...] = ()
    migrations: tuple[MigrationPlan, ...] = ()
    feasible: bool = True

    @property
    def migrations_accepted(self) -> int:
        return sum(len(m.accepted) for m in self.migrations)

    @property
    def migrations_rejected(self) -> int:
        return sum(len(m.rejected) for m in self.migrations)

    @property
    def staging_cost(self) -> float:
        """Total Ψ_D of every accepted staging transfer."""
        return math.fsum(m.staging_cost for m in self.migrations)

    @property
    def resumed(self) -> int:
        return sum(c.resumed for c in self.cycles)

    @property
    def restarted(self) -> int:
        return sum(c.restarted for c in self.cycles)

    @property
    def resume_credit(self) -> float:
        return math.fsum(c.resume_credit for c in self.cycles)

    @property
    def psi_trajectory(self) -> tuple[float, ...]:
        """Per-cycle net Ψ, in cycle order."""
        return tuple(c.psi_net for c in self.cycles)

    @property
    def total_psi(self) -> float:
        """Horizon-total Ψ: net cycle spend, plus the staging transfers
        migration paid for, minus the re-transfer tails resumes saved."""
        return (
            math.fsum(c.psi_net for c in self.cycles)
            + self.staging_cost
            - self.resume_credit
        )

    def to_json_dict(self) -> dict:
        return {
            "cycles": [c.to_json_dict() for c in self.cycles],
            "migrations": [m.to_json_dict() for m in self.migrations],
            "feasible": self.feasible,
            "migrations_accepted": self.migrations_accepted,
            "migrations_rejected": self.migrations_rejected,
            "staging_cost": round(self.staging_cost, 6),
            "resumed": self.resumed,
            "restarted": self.restarted,
            "resume_credit": round(self.resume_credit, 6),
            "psi_trajectory": [round(p, 6) for p in self.psi_trajectory],
            "total_psi": round(self.total_psi, 6),
        }

    def deterministic_dict(self) -> dict:
        """The replay-invariant slice (everything -- the horizon records
        no wall clock), for CI byte-compare gates."""
        return self.to_json_dict()

    def summary(self) -> str:
        lines = [
            f"horizon: {len(self.cycles)} cycle(s), "
            f"total psi ${self.total_psi:,.2f} "
            f"(staging ${self.staging_cost:,.2f}, "
            f"resume credit ${self.resume_credit:,.2f})",
            f"  migrations: {self.migrations_accepted} accepted / "
            f"{self.migrations_rejected} rejected",
            f"  interrupted streams: {self.resumed} resumed / "
            f"{self.restarted} restarted",
            f"  feasible: {self.feasible}",
        ]
        for c in self.cycles:
            lines.append(
                f"  cycle {c.index}: {c.requests} req, "
                f"${c.psi_net:,.2f} net, "
                f"{c.fault_events} fault event(s), "
                f"{c.resumed} resumed"
            )
        return "\n".join(lines)


def split_events(
    feed: FaultFeed, boundaries: Sequence[float]
) -> list[tuple[FaultEvent, ...]]:
    """Assign each feed event to the cycle during which it *arrived*.

    Cycle ``k`` owns the half-open arrival window ``(b[k-1], b[k]]`` (the
    first cycle reaches back to ``-inf``); reports arriving after the last
    boundary belong to the last cycle.  This is the feed-splitting
    contract: arrival decides *where the report lands first*; windows that
    outlive the cycle are carried across the seam by the orchestrator.
    """
    if not boundaries:
        raise ScheduleError("split_events needs at least one cycle boundary")
    if list(boundaries) != sorted(boundaries):
        raise ScheduleError(f"boundaries must be ascending, got {boundaries!r}")
    buckets: list[list[FaultEvent]] = [[] for _ in boundaries]
    last = len(boundaries) - 1
    for event in feed:
        k = last
        for i, b in enumerate(boundaries):
            if event.at <= b:
                k = i
                break
        buckets[k].append(event)
    return [tuple(b) for b in buckets]


class HorizonOrchestrator:
    """Chain :class:`~repro.service.VORService` cycles over a horizon.

    Args:
        topology: The delivery infrastructure.
        catalog: Offered titles.
        replicas: Initial :class:`~repro.replication.ReplicaMap`.  Required
            when migration is enabled (there must be an incumbent map to
            migrate); ``None`` with migration disabled reproduces the
            paper's single-warehouse model.
        cost_model: Optional custom Ψ; mutually exclusive with
            ``replicas`` unless it carries the same map.
        heat_metric: Phase-2 victim criterion.
        warehouse: Optional tape hierarchy; staged migration transfers
            then consume drive time, and every cycle close plans staging.
        parallel: Phase-1 execution plan (bit-identical across backends).
        obs: Observability handle; the orchestrator journals
            ``horizon-cycle``, ``migration``, ``resumed`` and
            ``restarted`` events and emits the ``vor_horizon_*`` metric
            families on it.
        config: Horizon tuning (:class:`HorizonConfig`).
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        replicas=None,
        cost_model: CostModel | None = None,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        warehouse: WarehouseSpec | None = None,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
        config: HorizonConfig | None = None,
    ):
        self.config = config if config is not None else HorizonConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.topology = topology
        self.catalog = catalog
        self.service = VORService(
            topology,
            catalog,
            lead_time=0.0,
            heat_metric=heat_metric,
            cost_model=cost_model,
            warehouse=warehouse,
            parallel=parallel,
            obs=self.obs,
            replicas=replicas,
        )
        self.planner: MigrationPlanner | None = None
        if self.config.migration is not None:
            if self.service.cost_model.replicas is None:
                raise ScheduleError(
                    "migration needs an initial replica map: pass replicas= "
                    "or disable it with HorizonConfig(migration=None)"
                )
            self.planner = MigrationPlanner(
                topology,
                catalog,
                config=self.config.migration,
                warehouse=warehouse,
                heat_metric=heat_metric,
                parallel=parallel,
            )
        #: longest playback in the catalog: how far past a boundary a
        #: cycle's streams can still be running (the carry-across tail).
        self._tail = max((v.playback for v in catalog), default=0.0)

    def run(
        self,
        cycles: Sequence[tuple[RequestBatch, float]],
        *,
        feed: FaultFeed | None = None,
    ) -> HorizonReport:
        """Run the horizon: each ``(batch, cycle_end)`` pair is one cycle.

        Returns the :class:`HorizonReport`; per-cycle schedules and
        billing stay available through the service's observability
        journal.
        """
        if not cycles:
            raise ScheduleError("a horizon needs at least one cycle")
        boundaries = [end for _, end in cycles]
        if boundaries != sorted(boundaries):
            raise ScheduleError(
                f"cycle boundaries must ascend, got {boundaries!r}"
            )
        buckets = (
            split_events(feed, boundaries)
            if feed is not None
            else [()] * len(cycles)
        )
        feed_name = (feed.name or "horizon") if feed is not None else "horizon"
        feed_seed = feed.seed if feed is not None else None

        outcomes: list[CycleOutcome] = []
        migrations: list[MigrationPlan] = []
        known: list[FaultEvent] = []
        prev_end = 0.0
        feasible = True
        for k, (batch, cycle_end) in enumerate(cycles):
            for request in sorted(batch):
                self.service.reserve(
                    request.user_id,
                    request.video_id,
                    request.start_time,
                    local_storage=request.local_storage,
                    now=prev_end,
                )
            report = self.service.close_cycle(cycle_end=cycle_end)

            carried = tuple(
                FaultEvent(at=prev_end, fault=e.fault)
                for e in known
                if e.fault.overlaps(prev_end, cycle_end + self._tail)
            )
            arrived = tuple(
                e
                for e in buckets[k]
                if e.fault.overlaps(prev_end, cycle_end + self._tail)
            )
            known.extend(buckets[k])

            ledger: CarryoverLedger | None = None
            run_report = None
            if carried or arrived:
                cycle_feed = FaultFeed(
                    events=carried + arrived, name=feed_name, seed=feed_seed
                )
                loop = OnlineAmendmentLoop(
                    self.service, self.config.online, obs=self.obs
                )
                run_report = loop.run(cycle_feed, report)
                amended = run_report.final
                if self.config.resume_credits and run_report.plan is not None:
                    ledger = build_resume_ledger(
                        report.cycle.schedule,
                        amended.cycle.schedule,
                        run_report.plan,
                        self.service.cost_model,
                        self.catalog,
                    )
                    self._journal_ledger(ledger)
                report = amended

            outcome = self._outcome(
                k, cycle_end, batch, report, run_report,
                ledger, len(carried), len(arrived),
            )
            feasible = feasible and outcome.feasible
            outcomes.append(outcome)
            self._record_cycle(outcome)

            if self.planner is not None and k + 1 < len(cycles):
                plan = self.planner.plan(
                    batch,
                    cycles[k + 1][0],
                    self.service.cost_model,
                    boundary_index=k,
                )
                if plan.applied:
                    self.service.migrate_replicas(plan.new_map)
                migrations.append(plan)
                self._record_migration(plan)
            prev_end = cycle_end

        report = HorizonReport(
            cycles=tuple(outcomes),
            migrations=tuple(migrations),
            feasible=feasible,
        )
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.gauge(
                "vor_horizon_total_psi_dollars",
                help="Horizon-total psi (staging priced, resume credited)",
            ).set(report.total_psi)
        _log.info(
            "horizon done: %d cycle(s), $%.2f total psi, "
            "%d migration(s) accepted, %d stream(s) resumed",
            len(outcomes),
            report.total_psi,
            report.migrations_accepted,
            report.resumed,
        )
        return report

    # -- internals -----------------------------------------------------------

    def _outcome(
        self,
        index: int,
        cycle_end: float,
        batch: RequestBatch,
        report: CycleReport,
        run_report,
        ledger: CarryoverLedger | None,
        carried_events: int,
        arrived_events: int,
    ) -> CycleOutcome:
        recovery = report.recovery
        return CycleOutcome(
            index=index,
            cycle_end=cycle_end,
            requests=len(batch),
            deliveries=len(report.cycle.schedule.deliveries),
            psi_gross=report.cycle.total_cost,
            psi_net=report.cycle.net_total_cost,
            carried_in=report.cycle.carried_in,
            carried_out=report.cycle.carried_out,
            reused_carryover=report.cycle.reused_carryover,
            feasible=report.feasible,
            fault_events=carried_events + arrived_events,
            carried_events=carried_events,
            amendment_batches=(
                run_report.batches_total if run_report is not None else 0
            ),
            amendment_outcomes=(
                tuple(r.outcome for r in run_report.records)
                if run_report is not None
                else ()
            ),
            requests_saved=(
                recovery.requests_saved if recovery is not None else 0
            ),
            requests_lost=(
                recovery.requests_lost if recovery is not None else 0
            ),
            ledger=ledger,
        )

    def _journal_ledger(self, ledger: CarryoverLedger) -> None:
        journal = self.obs.journal
        if not journal.enabled:
            return
        for entry in ledger.entries:
            if entry.outcome == "resumed":
                journal.emit(
                    "resumed",
                    request=entry.request,
                    fraction=round(entry.fraction, 6),
                    credit=round(entry.credit, 6),
                )
            else:
                journal.emit(
                    "restarted", request=entry.request, reason=entry.reason
                )

    def _record_cycle(self, outcome: CycleOutcome) -> None:
        journal = self.obs.journal
        if journal.enabled:
            journal.emit(
                "horizon-cycle",
                index=outcome.index,
                requests=outcome.requests,
                psi_net=round(outcome.psi_net, 6),
                fault_events=outcome.fault_events,
                carried_events=outcome.carried_events,
                resumed=outcome.resumed,
                restarted=outcome.restarted,
                feasible=outcome.feasible,
            )
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "vor_horizon_cycles_total", help="Horizon cycles orchestrated"
        ).inc()
        metrics.gauge(
            "vor_horizon_cycle_psi_dollars",
            help="Per-cycle net psi along the horizon",
            cycle=outcome.index,
        ).set(outcome.psi_net)
        for disposition, count in (
            ("arrived", outcome.fault_events - outcome.carried_events),
            ("carried", outcome.carried_events),
        ):
            if count:
                metrics.counter(
                    "vor_horizon_feed_events_total",
                    help="Fault reports amended into horizon cycles",
                    disposition=disposition,
                ).inc(count)
        if outcome.ledger is not None:
            for outcome_kind, count in (
                ("resumed", outcome.resumed),
                ("restarted", outcome.restarted),
            ):
                if count:
                    metrics.counter(
                        "vor_horizon_resumes_total",
                        help="Interrupted streams classified after recovery",
                        outcome=outcome_kind,
                    ).inc(count)
            metrics.counter(
                "vor_horizon_resume_credit_dollars_total",
                help="Psi_D already delivered before interruption (credited)",
            ).inc(outcome.resume_credit)

    def _record_migration(self, plan: MigrationPlan) -> None:
        journal = self.obs.journal
        if journal.enabled:
            for decision in plan.accepted + plan.rejected:
                journal.emit(
                    "migration",
                    video_id=decision.video_id,
                    boundary=plan.boundary_index,
                    accepted=decision.accepted,
                    reason=decision.reason,
                    moves=tuple(
                        f"{m.action}:{m.warehouse}" for m in decision.moves
                    ),
                    staging_cost=round(decision.staging_cost, 6),
                    projected_saving=round(decision.projected_saving, 6),
                )
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        for outcome, count in (
            ("accepted", len(plan.accepted)),
            ("rejected", len(plan.rejected)),
        ):
            if count:
                metrics.counter(
                    "vor_horizon_migrations_total",
                    help="Per-video migration decisions at cycle boundaries",
                    outcome=outcome,
                ).inc(count)
        if plan.staging_cost:
            metrics.counter(
                "vor_horizon_staging_dollars_total",
                help="Psi_D of accepted replica staging transfers",
            ).inc(plan.staging_cost)


def generate_drifting_cycles(
    topology: Topology,
    catalog: VideoCatalog,
    *,
    cycles: int,
    cycle_length: float = units.DAY,
    seed: int = 0,
    churn: float = 0.35,
    alpha: float = 0.271,
    users_per_neighborhood: int = 4,
    requests_per_user: int = 1,
) -> list[tuple[RequestBatch, float]]:
    """A seeded multi-cycle workload whose Zipf heat drifts between cycles.

    Cycle ``k`` spans ``[k * cycle_length, (k+1) * cycle_length)``; each
    cycle draws a fresh batch whose rank->title assignment has churned by
    ``churn`` since the previous one (see
    :class:`~repro.workload.churn.RankChurn`).  Deterministic: the same
    arguments always produce the same horizon input.
    """
    if cycles < 1:
        raise ScheduleError(f"need at least one cycle, got {cycles}")
    generator = WorkloadGenerator(
        topology,
        catalog,
        alpha=alpha,
        users_per_neighborhood=users_per_neighborhood,
        arrivals=UniformArrivals(cycle_length),
        requests_per_user=requests_per_user,
    )
    churner = RankChurn(len(catalog), churn=churn, seed=seed)
    out: list[tuple[RequestBatch, float]] = []
    permutation = churner.permutation
    for k in range(cycles):
        batch = generator.generate(seed + k, rank_permutation=permutation)
        shifted = RequestBatch(
            Request(
                r.start_time + k * cycle_length,
                r.video_id,
                r.user_id,
                r.local_storage,
            )
            for r in batch
        )
        out.append((shifted, (k + 1) * cycle_length))
        permutation = churner.advance()
    return out
