"""Hierarchical storage inside the video warehouse.

The paper treats the warehouse as an infinite free archive, but its related
work (Doganata & Tantawi; Kienzle & Sitaram; the authors' own hierarchical
storage VOD papers [13-15]) makes clear the archive is really a **tape
library plus a disk staging area**: a title must be staged to disk before it
can stream, staging occupies one of a few tape drives for the transfer
duration, and the disk stage has finite capacity.

Because VOR workloads are known offline, the warehouse can plan staging
offline too: :class:`~repro.warehouse.staging.StagingPlanner` schedules tape
reads earliest-deadline-first across the drives and evicts disk-stage
content with Belady's offline-optimal next-use rule, reporting any *misses*
(streams whose title cannot be on disk in time) and the full disk/drive
utilization timelines.

This subpackage is an extension substrate: the core scheduler is unchanged;
the planner consumes its output schedule.
"""

from repro.warehouse.hierarchy import WarehouseSpec
from repro.warehouse.staging import (
    StagingPlanner,
    StagingReport,
    StagingTask,
)

__all__ = [
    "WarehouseSpec",
    "StagingPlanner",
    "StagingReport",
    "StagingTask",
]
