"""Warehouse hardware description: tape library + disk staging area.

Modeled after the two-stage hierarchies the paper's related work describes
(Doganata & Tantawi '94; Kienzle & Sitaram '94): every title lives
permanently on tape; a title must be *staged* onto the disk area before it
can stream out to the network; stagings occupy one of a small number of
tape drives for ``seek + size/bandwidth`` seconds; the disk area has finite
capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro import units


@dataclass(frozen=True)
class WarehouseSpec:
    """Hierarchical-storage parameters of the video warehouse.

    Attributes:
        disk_capacity: Bytes of disk staging area.
        tape_drives: Number of tape drives (concurrent stagings).
        tape_bandwidth: Sustained tape transfer rate, bytes/s.
        tape_seek: Fixed per-staging positioning overhead, seconds
            (robot exchange + locate).
    """

    disk_capacity: float = 100.0 * units.GB
    tape_drives: int = 4
    tape_bandwidth: float = 30.0 * units.MB  # 30 MB/s, mid-90s DLT-class
    tape_seek: float = 90.0

    def __post_init__(self) -> None:
        if not (self.disk_capacity > 0 and math.isfinite(self.disk_capacity)):
            raise ConfigError(
                f"disk_capacity must be positive and finite, got "
                f"{self.disk_capacity}"
            )
        if self.tape_drives < 1:
            raise ConfigError(f"tape_drives must be >= 1, got {self.tape_drives}")
        if self.tape_bandwidth <= 0:
            raise ConfigError(
                f"tape_bandwidth must be positive, got {self.tape_bandwidth}"
            )
        if self.tape_seek < 0:
            raise ConfigError(f"tape_seek must be >= 0, got {self.tape_seek}")

    def staging_duration(self, size: float) -> float:
        """Seconds a tape drive is busy staging a ``size``-byte title."""
        if size <= 0:
            raise ConfigError(f"size must be positive, got {size}")
        return self.tape_seek + size / self.tape_bandwidth
