"""Offline staging planner for the hierarchical warehouse.

Given the cycle's final service schedule, every stream that originates at
the warehouse needs its title **on disk** for the duration of the stream.
Because VOR schedules are known offline, the planner can

* schedule tape-to-disk stagings earliest-deadline-first across the drives
  (each staging occupies one drive for ``seek + size/bandwidth`` seconds),
* keep titles resident across nearby reuses, and
* evict with **Belady's rule** (farthest next use), which is optimal for
  an offline reference string.

The planner never fails hard: a stream whose title cannot be staged in time
(drives busy) or cannot fit (disk full of in-use titles) is reported as a
*miss* with its cause, so capacity planning can sweep the spec until the
miss count reaches zero (see ``examples``/``benchmarks``).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.schedule import Schedule
from repro.core.spacefunc import LinearSegment, SpaceProfile, UsageTimeline
from repro.errors import SimulationError
from repro.warehouse.hierarchy import WarehouseSpec


@dataclass(frozen=True)
class StagingTask:
    """One planned tape-to-disk transfer."""

    video_id: str
    drive: int
    start: float
    finish: float
    deadline: float

    @property
    def late(self) -> bool:
        return self.finish > self.deadline + 1e-9

    @property
    def lateness(self) -> float:
        return max(self.finish - self.deadline, 0.0)


@dataclass(frozen=True)
class StagingMiss:
    """A warehouse stream whose title could not be ready in time."""

    video_id: str
    stream_time: float
    cause: str  # "late" | "space"
    detail: float  # lateness seconds, or missing bytes


@dataclass
class StagingReport:
    """Everything the planner decided plus derived statistics."""

    tasks: list[StagingTask] = field(default_factory=list)
    misses: list[StagingMiss] = field(default_factory=list)
    hits: int = 0  # streams served by an already-resident title
    total_streams: int = 0
    disk_usage: UsageTimeline = field(default_factory=UsageTimeline)
    drive_busy: list[float] = field(default_factory=list)  # busy seconds/drive
    horizon: tuple[float, float] = (0.0, 0.0)

    @property
    def miss_rate(self) -> float:
        if self.total_streams == 0:
            return 0.0
        return len(self.misses) / self.total_streams

    @property
    def hit_rate(self) -> float:
        if self.total_streams == 0:
            return 0.0
        return self.hits / self.total_streams

    @property
    def peak_disk_usage(self) -> float:
        return self.disk_usage.peak

    def drive_utilization(self, spec: WarehouseSpec) -> list[float]:
        """Busy fraction per drive over the planning horizon."""
        t0, t1 = self.horizon
        span = max(t1 - t0, 1e-9)
        return [b / span for b in self.drive_busy]


@dataclass
class _Resident:
    """A title currently on disk."""

    video_id: str
    size: float
    staged_at: float
    in_use_until: float  # cannot be evicted before this


class StagingPlanner:
    """Plans tape stagings for the warehouse-sourced part of a schedule."""

    def __init__(self, spec: WarehouseSpec, catalog: VideoCatalog):
        self._spec = spec
        self._catalog = catalog

    def plan(self, schedule: Schedule, *, warehouse: str = "VW") -> StagingReport:
        """Produce the staging plan for every stream sourced at ``warehouse``."""
        streams = sorted(
            (d.start_time, d.video_id)
            for d in schedule.deliveries
            if d.source == warehouse
        )
        report = StagingReport(total_streams=len(streams))
        report.drive_busy = [0.0] * self._spec.tape_drives
        if not streams:
            return report

        # next-use index: per title, the sorted stream times
        uses: dict[str, list[float]] = {}
        for t, vid in streams:
            uses.setdefault(vid, []).append(t)

        def next_use(vid: str, after: float) -> float:
            times = uses[vid]
            idx = bisect_right(times, after)
            return times[idx] if idx < len(times) else math.inf

        drive_free = [0.0] * self._spec.tape_drives
        residents: dict[str, _Resident] = {}
        used_bytes = 0.0
        occupancy: list[tuple[str, float, float, float]] = []  # vid, size, s, e
        horizon_end = max(
            t + self._catalog[vid].playback for t, vid in streams
        )

        for t, vid in streams:
            video = self._catalog[vid]
            stream_end = t + video.playback
            resident = residents.get(vid)
            if resident is not None:
                resident.in_use_until = max(resident.in_use_until, stream_end)
                report.hits += 1
                continue

            duration = self._spec.staging_duration(video.size)
            drive = min(range(len(drive_free)), key=lambda i: drive_free[i])
            # just-in-time staging: finish exactly at the deadline when the
            # drive allows, so earlier residents have aged out of use and can
            # be evicted to make room (lazy staging maximizes evictability)
            start = max(drive_free[drive], t - duration)
            finish = start + duration

            # free disk space (Belady: evict farthest next use first), but
            # never evict a title still in use at the staging start
            needed = video.size - (self._spec.disk_capacity - used_bytes)
            if needed > 0:
                evictable = sorted(
                    (
                        r
                        for r in residents.values()
                        if r.in_use_until <= start + 1e-9
                    ),
                    key=lambda r: next_use(r.video_id, t),
                    reverse=True,
                )
                for r in evictable:
                    if needed <= 0:
                        break
                    occupancy.append((r.video_id, r.size, r.staged_at, start))
                    used_bytes -= r.size
                    needed -= r.size
                    del residents[r.video_id]
            if video.size > self._spec.disk_capacity - used_bytes + 1e-9:
                report.misses.append(
                    StagingMiss(
                        vid,
                        t,
                        "space",
                        video.size - (self._spec.disk_capacity - used_bytes),
                    )
                )
                continue

            drive_free[drive] = finish
            report.drive_busy[drive] += duration
            task = StagingTask(vid, drive, start, finish, deadline=t)
            report.tasks.append(task)
            if task.late:
                report.misses.append(
                    StagingMiss(vid, t, "late", task.lateness)
                )
            residents[vid] = _Resident(vid, video.size, start, stream_end)
            used_bytes += video.size

        for r in residents.values():
            occupancy.append((r.video_id, r.size, r.staged_at, horizon_end))

        profiles = [
            SpaceProfile((LinearSegment(s, e, size, size),))
            for (_vid, size, s, e) in occupancy
            if e > s
        ]
        report.disk_usage = UsageTimeline(profiles)
        t0 = min(t for t, _ in streams)
        report.horizon = (min(t0, 0.0), horizon_end)
        self._sanity(report)
        return report

    def _sanity(self, report: StagingReport) -> None:
        if report.peak_disk_usage > self._spec.disk_capacity * (1 + 1e-9):
            raise SimulationError(
                "staging planner internal error: disk over-committed "
                f"({report.peak_disk_usage:g} > {self._spec.disk_capacity:g})"
            )
        space_misses = sum(1 for m in report.misses if m.cause == "space")
        if report.hits + len(report.tasks) + space_misses != report.total_streams:
            raise SimulationError(
                "staging planner internal error: stream accounting mismatch"
            )
