"""The end-to-end Video-On-Reservation service operator.

:class:`VORService` is the facade a provider would actually run: it accepts
reservations ahead of time (enforcing the VOR lead time that makes offline
optimization possible), closes a scheduling cycle on demand, and returns a
complete :class:`CycleReport` -- the feasible schedule, its cost, per-user
invoices, an optional warehouse staging plan, and the simulator's
feasibility verdict.  Cycles roll: caches committed near a boundary keep
serving (and occupying space) into the next cycle.

    service = VORService(topology, catalog)
    service.reserve("alice", "video0001", start_time=t, local_storage="IS3")
    ...
    report = service.close_cycle(cycle_end=midnight)
    print(report.summary())
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import dataclasses

from repro.billing import BillingStatement, allocate_costs
from repro.obs import NULL_OBS, Observability, RunTelemetry
from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig
from repro.errors import ScheduleError, WorkloadError
from repro.extensions.rolling import CycleResult, RollingScheduler
from repro.faults.contingency import RecoveryResult
from repro.faults.inject import masked_topology
from repro.faults.plan import FaultPlan
from repro.sim.validate import Violation, validate_schedule
from repro.topology.graph import Topology
from repro.warehouse.hierarchy import WarehouseSpec
from repro.warehouse.staging import StagingPlanner, StagingReport
from repro.workload.requests import Request, RequestBatch
from repro import units

_log = logging.getLogger(__name__)


@dataclass
class CycleReport:
    """Everything a cycle close produces."""

    cycle: CycleResult
    billing: BillingStatement
    violations: list[Violation]
    staging: StagingReport | None = None
    rejected: list[tuple[Request, str]] = field(default_factory=list)
    #: Telemetry snapshot taken as the cycle closed (``None`` when the
    #: service runs with the default null observability handle).
    telemetry: RunTelemetry | None = None
    #: Set when this report came out of :meth:`VORService.amend_cycle`:
    #: the contingency pass that produced the (patched) schedule.
    recovery: "RecoveryResult | None" = None

    @property
    def cost(self) -> CostBreakdown:
        return self.cycle.cost

    @property
    def feasible(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"cycle {self.cycle.cycle_index}: "
            f"{len(self.cycle.schedule.deliveries)} services, "
            f"${self.cycle.net_total_cost:,.2f} net "
            f"(${self.cost.network:,.2f} network / "
            f"${self.cost.storage:,.2f} storage)",
            f"  carryover: {self.cycle.carried_in} in, "
            f"{self.cycle.carried_out} out, "
            f"{self.cycle.reused_carryover} reused",
            f"  overflow fixes: {self.cycle.resolution.iterations} "
            f"(+{100 * self.cycle.resolution.cost_increase_ratio:.2f} % cost)",
            f"  feasible: {self.feasible}",
        ]
        if self.staging is not None:
            lines.append(
                f"  warehouse: {len(self.staging.tasks)} stagings, "
                f"{self.staging.hits} hits, "
                f"{len(self.staging.misses)} misses"
            )
        if self.rejected:
            lines.append(f"  rejected reservations: {len(self.rejected)}")
        if self.recovery is not None:
            lines.append(
                f"  recovery: {self.recovery.videos_resolved} video(s) "
                f"re-solved, {self.recovery.requests_saved} saved / "
                f"{self.recovery.requests_lost} lost "
                f"(psi {self.recovery.cost_delta:+.2f})"
            )
        return "\n".join(lines)


class VORService:
    """Reservation intake + rolling scheduling + billing + validation.

    Args:
        topology: The delivery infrastructure.
        catalog: Offered titles.
        lead_time: Minimum seconds between booking and showing (the "some
            time in advance" that defines VOR; default one hour).
        heat_metric: Phase-2 victim selection criterion.
        cost_model: Optional custom Ψ (e.g. a diurnal tariff).
        warehouse: Optional hierarchical-warehouse spec; when given, every
            cycle close also plans tape staging.
        parallel: Phase-1 execution plan
            (:class:`repro.core.parallel.ParallelConfig`): pick the
            ``thread``/``process`` backend and worker count to fan the
            per-video greedy across a pool.  ``None`` runs serially.
            Results are bit-identical either way.
        obs: Observability handle (:class:`repro.obs.Observability`);
            defaults to the inert :data:`repro.obs.NULL_OBS`.  When live,
            every cycle close records spans (``close_cycle`` → ``cycle`` →
            ``ivsp``/``sorp``/...), pipeline counters, and per-IS peak
            gauges, and attaches a :class:`repro.obs.RunTelemetry`
            snapshot to the returned report.
        replicas: Optional :class:`~repro.replication.ReplicaMap` homing
            each title at a subset of the warehouses; scheduling then
            serves every request from the cheapest reachable copy, and
            :meth:`amend_cycle` re-solves against the surviving replica
            set after a warehouse loss.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        lead_time: float = units.HOUR,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        cost_model: CostModel | None = None,
        warehouse: WarehouseSpec | None = None,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
        replicas=None,
    ):
        if lead_time < 0:
            raise ScheduleError(f"lead_time must be >= 0, got {lead_time}")
        if (
            cost_model is not None
            and replicas is not None
            and cost_model.replicas is not replicas
        ):
            raise ScheduleError(
                "pass replicas either directly or on the cost model, not both"
            )
        self.topology = topology
        self.catalog = catalog
        self.lead_time = lead_time
        self.obs = obs if obs is not None else NULL_OBS
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(topology, catalog, replicas=replicas)
        )
        self._rolling = RollingScheduler(
            topology,
            catalog,
            heat_metric=heat_metric,
            cost_model=self.cost_model,
            parallel=parallel,
            obs=self.obs,
        )
        self._warehouse = warehouse
        self._staging_planner = (
            StagingPlanner(warehouse, catalog) if warehouse is not None else None
        )
        self._pending: list[Request] = []
        self._storage_names = {s.name for s in topology.storages}
        self._clock = 0.0  # last cycle boundary

    @property
    def pending(self) -> int:
        return len(self._pending)

    def reserve(
        self,
        user_id: str,
        video_id: str,
        start_time: float,
        *,
        local_storage: str,
        now: float | None = None,
    ) -> Request:
        """Accept one reservation.

        Raises :class:`~repro.errors.WorkloadError` when the title is
        unknown, the neighborhood storage does not exist, the showing is in
        the past, or the lead time is not respected.
        """
        journal = self.obs.journal
        rid = (
            f"{user_id}/{video_id}@{start_time:g}->{local_storage}"
            if journal.enabled
            else None
        )
        if video_id not in self.catalog:
            journal.emit(
                "rejected", request_id=rid, video_id=video_id,
                reason="unknown-title",
            )
            raise WorkloadError(f"unknown title {video_id!r}")
        if local_storage not in self._storage_names:
            journal.emit(
                "rejected", request_id=rid, video_id=video_id,
                reason="unknown-storage",
            )
            raise WorkloadError(f"unknown neighborhood storage {local_storage!r}")
        booking_time = self._clock if now is None else now
        if start_time < booking_time + self.lead_time:
            journal.emit(
                "rejected", request_id=rid, video_id=video_id,
                reason="lead-time",
            )
            raise WorkloadError(
                f"reservations need {units.fmt_duration(self.lead_time)} lead "
                f"time: showing at {start_time:g} booked at {booking_time:g}"
            )
        request = Request(start_time, video_id, user_id, local_storage)
        self._pending.append(request)
        journal.emit("admitted", request=request, start=start_time)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_reservations_total", help="Reservations accepted"
            ).inc()
        return request

    def close_cycle(self, *, cycle_end: float) -> CycleReport:
        """Schedule all reservations starting before ``cycle_end``.

        Later reservations stay pending for the next cycle.  Returns the
        full :class:`CycleReport`; the service's clock advances to
        ``cycle_end``.
        """
        due = [r for r in self._pending if r.start_time <= cycle_end]
        self._pending = [r for r in self._pending if r.start_time > cycle_end]
        batch = RequestBatch(due)
        _log.info(
            "closing cycle at %g: %d due, %d still pending",
            cycle_end, len(due), len(self._pending),
        )

        with self.obs.tracer.span(
            "close_cycle", requests=len(due), cycle_end=cycle_end
        ) as span:
            cycle = self._rolling.schedule_cycle(batch, cycle_end=cycle_end)
            with self.obs.tracer.span("billing"):
                billing = allocate_costs(cycle.schedule, self.cost_model)
            with self.obs.tracer.span("validate") as vspan:
                violations = validate_schedule(
                    cycle.schedule,
                    batch,
                    self.cost_model,
                    trusted_residencies=cycle.inherited,
                )
                vspan.set(violations=len(violations))
            staging = None
            if self._staging_planner is not None:
                with self.obs.tracer.span("staging"):
                    staging = self._staging_planner.plan(cycle.schedule)
            span.set(feasible=not violations)
        if violations:
            _log.warning(
                "cycle %d schedule has %d feasibility violation(s)",
                cycle.cycle_index, len(violations),
            )
        self._clock = cycle_end
        return CycleReport(
            cycle=cycle,
            billing=billing,
            violations=violations,
            staging=staging,
            telemetry=self.obs.telemetry() if self.obs.enabled else None,
        )

    def migrate_replicas(self, replicas) -> None:
        """Adopt a migrated replica map for the coming cycles.

        Validates the map, rebinds the cost model (shared caches, fresh
        counters) and the rolling engine; carryover residencies and
        pending reservations are untouched.  Call between cycles -- the
        horizon orchestrator does, after its
        :class:`~repro.horizon.migration.MigrationPlanner` accepts a
        delta.
        """
        replicas.validate(self.topology, self.catalog)
        self.cost_model = self.cost_model.with_replicas(replicas)
        self._rolling.rebind(self.cost_model)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_replica_migrations_total",
                help="Replica maps adopted by a running service",
            ).inc()

    def shed_pending(self, count: int) -> list[Request]:
        """Drop the ``count`` lowest-priority pending reservations.

        Priority follows urgency: the reservations with the *latest*
        showing times (ties broken by video then user id, so shedding is
        deterministic) are shed first -- they have the most time to rebook.
        Returns the shed requests (possibly fewer than ``count``); the
        online amendment loop calls this in degraded mode to keep the
        service responsive while re-solves are failing.
        """
        if count <= 0 or not self._pending:
            return []
        ranked = sorted(
            range(len(self._pending)),
            key=lambda i: (
                self._pending[i].start_time,
                self._pending[i].video_id,
                self._pending[i].user_id,
            ),
        )
        drop = set(ranked[-count:])
        shed = [self._pending[i] for i in sorted(drop)]
        self._pending = [
            r for i, r in enumerate(self._pending) if i not in drop
        ]
        journal = self.obs.journal
        if journal.enabled:
            for request in shed:
                journal.emit("shed", request=request)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_reservations_shed_total",
                help="Pending reservations shed under degraded operation",
            ).inc(len(shed))
        _log.warning("shed %d pending reservation(s)", len(shed))
        return shed

    def amend_cycle(
        self, report: CycleReport, plan: FaultPlan, *, masking: str = "cycle"
    ) -> CycleReport:
        """Amend the last closed cycle's schedule around an active fault plan.

        Re-solves the impacted videos through the contingency scheduler
        (masked topology, Phase 1 + SORP), re-bills, and re-validates the
        patched schedule with the plan's lost requests excused.  The
        rolling carryover state is re-rolled from the patched schedule, so
        the next :meth:`close_cycle` inherits the post-fault reality.

        Args:
            report: The :class:`CycleReport` returned by the most recent
                :meth:`close_cycle`.
            plan: The active fault scenario.
            masking: ``"cycle"`` re-solves against the conservative
                whole-cycle mask and validates on the masked cost model;
                ``"windowed"`` re-solves only services intersecting a fault
                window and validates on the *healthy* model with a
                window-aware degraded replay (``faults=plan``), since the
                patched schedule may legitimately use faulted resources at
                times the fault is not active.

        Returns:
            A fresh :class:`CycleReport` whose ``cycle.schedule`` is the
            patched plan and whose :attr:`CycleReport.recovery` carries the
            SLA/cost outcome of the contingency pass.
        """
        with self.obs.tracer.span(
            "amend_cycle", faults=len(plan), masking=masking
        ) as span:
            recovery = self._rolling.amend_cycle(
                report.cycle, plan, masking=masking
            )
            patched = recovery.schedule
            with self.obs.tracer.span("billing"):
                billing = allocate_costs(patched, self.cost_model)
            lost = set(recovery.lost)
            surviving = RequestBatch(
                d.request
                for d in report.cycle.schedule.deliveries
                if d.request not in lost
            )
            if masking == "windowed":
                validate_cm = self.cost_model
                validate_faults = plan
            else:
                masked = masked_topology(self.topology, plan)
                replicas = self.cost_model.replicas
                validate_cm = CostModel(
                    masked,
                    self.catalog,
                    replicas=(
                        replicas.restricted_to(masked.node_names)
                        if replicas is not None
                        else None
                    ),
                )
                validate_faults = None
            with self.obs.tracer.span("validate") as vspan:
                violations = validate_schedule(
                    patched,
                    surviving,
                    validate_cm,
                    trusted_residencies=report.cycle.inherited,
                    faults=validate_faults,
                    obs=self.obs,
                )
                vspan.set(violations=len(violations))
            staging = None
            if self._staging_planner is not None:
                with self.obs.tracer.span("staging"):
                    staging = self._staging_planner.plan(patched)
            span.set(
                impacted=recovery.videos_resolved, feasible=not violations
            )
            self.obs.journal.emit(
                "amended",
                faults=len(plan),
                masking=masking,
                impacted=recovery.videos_resolved,
                saved=len(recovery.saved),
                lost=len(recovery.lost),
                feasible=not violations,
            )
        if violations:
            _log.warning(
                "amended cycle %d still has %d feasibility violation(s)",
                report.cycle.cycle_index, len(violations),
            )
        cycle = dataclasses.replace(
            report.cycle,
            schedule=patched,
            cost=recovery.cost_after,
            resolution=(
                recovery.resolution
                if recovery.resolution is not None
                else report.cycle.resolution
            ),
            carried_out=len(self._rolling.carryover),
        )
        return CycleReport(
            cycle=cycle,
            billing=billing,
            violations=violations,
            staging=staging,
            rejected=list(report.rejected),
            telemetry=self.obs.telemetry() if self.obs.enabled else None,
            recovery=recovery,
        )
