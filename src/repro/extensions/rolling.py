"""Rolling multi-cycle VOR operation.

The paper schedules one cycle in isolation ("the scheduler collects the
requests for the cycle").  A deployed VOR service schedules cycle after
cycle, and residencies committed near the end of cycle ``k`` still occupy
intermediate-storage space at the start of cycle ``k+1`` (their Eq. 6 drain
tails cross the boundary).  :class:`RollingScheduler` makes the paper's
algorithm operational across cycles:

* **carryover accounting** -- residency tails from previous cycles count
  against capacity (as SORP *background*) but can never be victimized: they
  back already-promised services;
* **cross-cycle cache reuse** -- when a carried-over title is requested
  again, the greedy is *seeded* with the committed residency and may extend
  it, paying only the Eq. 2/3 difference.  A victim rebuild reverts to (but
  never below) the committed interval.

Each call to :meth:`RollingScheduler.schedule_cycle` consumes one batch,
returns that cycle's feasible schedule + stats, and rolls the carryover
state forward.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig, ParallelIndividualScheduler
from repro.core.schedule import ResidencyInfo, Schedule
from repro.core.scheduler import record_schedule_metrics
from repro.core.sorp import ResolutionStats, resolve_overflows
from repro.core.spacefunc import SpaceProfile
from repro.errors import ScheduleError
from repro.obs import NULL_OBS, Observability
from repro.topology.graph import Topology
from repro.topology.validation import validate_topology
from repro.workload.requests import RequestBatch

_log = logging.getLogger(__name__)


@dataclass
class CycleResult:
    """Outcome of scheduling one cycle in a rolling operation."""

    cycle_index: int
    schedule: Schedule
    cost: CostBreakdown
    resolution: ResolutionStats
    carried_in: int  # residencies inherited from previous cycles
    carried_out: int  # residencies handed to the next cycle
    reused_carryover: int  # inherited residencies extended by this cycle
    #: Storage cost of the committed carryover intervals embedded in this
    #: cycle's schedule.  Already paid by the previous cycle; subtract it to
    #: get this cycle's incremental spend.
    carryover_credit: float = 0.0
    #: The residencies inherited at cycle start.  Their feeder streams live
    #: in the previous cycle's schedule, so validators must trust them.
    inherited: tuple[ResidencyInfo, ...] = ()

    @property
    def total_cost(self) -> float:
        """Gross Ψ of this cycle's schedule (incl. inherited intervals)."""
        return self.cost.total

    @property
    def net_total_cost(self) -> float:
        """This cycle's incremental spend: gross minus the carryover credit."""
        return self.cost.total - self.carryover_credit


class RollingScheduler:
    """Cycle-after-cycle scheduler with carryover residency state."""

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        cost_model: CostModel | None = None,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
        replicas=None,
    ):
        effective_replicas = (
            replicas
            if replicas is not None
            else (cost_model.replicas if cost_model is not None else None)
        )
        validate_topology(topology, replicas=effective_replicas)
        self.topology = topology
        self.catalog = catalog
        self.heat_metric = heat_metric
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(topology, catalog, replicas=replicas)
        )
        self.obs = obs if obs is not None else NULL_OBS
        self._engine = ParallelIndividualScheduler(
            self.cost_model, parallel, obs=self.obs
        )
        #: committed residencies whose occupancy outlives their cycle
        self._carryover: dict[str, list[ResidencyInfo]] = {}
        self._cycle_index = 0
        self._last_boundary = float("-inf")

    @property
    def carryover(self) -> list[ResidencyInfo]:
        """Residencies currently carried into the next cycle."""
        return [c for cs in self._carryover.values() for c in cs]

    def schedule_cycle(
        self, batch: RequestBatch, *, cycle_end: float
    ) -> CycleResult:
        """Schedule one cycle's batch against the inherited carryover state.

        Args:
            batch: This cycle's requests (absolute start times).
            cycle_end: Absolute end of this cycle; residencies whose
                occupancy extends past it become the next cycle's carryover.
        """
        if batch and batch.span[0] < self._last_boundary:
            raise ScheduleError(
                f"cycle batches must move forward in time: request at "
                f"{batch.span[0]} precedes previous boundary "
                f"{self._last_boundary}"
            )
        if batch and batch.span[1] > cycle_end:
            raise ScheduleError(
                f"request at {batch.span[1]} lies beyond cycle_end={cycle_end}"
            )
        carried_in = sum(len(v) for v in self._carryover.values())
        inherited = tuple(
            c for cs in self._carryover.values() for c in cs
        )

        with self.obs.tracer.span(
            "cycle",
            index=self._cycle_index,
            requests=len(batch),
            carried_in=carried_in,
        ) as span:
            # Phase 1 with carryover seeding: requested carried-over titles
            # may extend their committed caches; the rest become capacity
            # background.
            requested = set(batch.video_ids)
            seeds: dict[str, tuple[ResidencyInfo, ...]] = {
                video_id: tuple(self._carryover.get(video_id, ()))
                for video_id in batch.video_ids
            }
            schedule = self._engine.run(batch, self.catalog, seeds=seeds).schedule
            background: dict[str, list[SpaceProfile]] = {}
            for video_id, residencies in self._carryover.items():
                if video_id in requested:
                    continue  # seeded into the greedy instead
                for c in residencies:
                    background.setdefault(c.location, []).append(
                        c.profile(self.catalog[c.video_id])
                    )

            resolved, stats = resolve_overflows(
                schedule,
                batch,
                self.cost_model,
                metric=self.heat_metric,
                background=background,
                committed=seeds,
                obs=self.obs,
            )
            final = resolved.pruned()

            reused = self._count_reused(final, seeds)
            credit = sum(
                self.cost_model.residency_cost(s)
                for seed in seeds.values()
                for s in seed
            )
            self._roll_state(final, cycle_end)
            self._last_boundary = cycle_end
            result = CycleResult(
                cycle_index=self._cycle_index,
                schedule=final,
                cost=self.cost_model.schedule_cost(final),
                resolution=stats,
                carried_in=carried_in,
                carried_out=sum(len(v) for v in self._carryover.values()),
                reused_carryover=reused,
                carryover_credit=credit,
                inherited=inherited,
            )
            span.set(carried_out=result.carried_out, reused=reused)
            self.obs.journal.emit(
                "cycle-closed",
                index=result.cycle_index,
                requests=len(batch),
                carried_in=carried_in,
                carried_out=result.carried_out,
                reused=reused,
                deliveries=len(final.deliveries),
                residencies=len(final.residencies),
            )
        record_schedule_metrics(self.obs, final, self.cost_model, scope="final")
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_cycles_total", help="Scheduling cycles closed"
            ).inc()
            metrics.counter(
                "vor_carryover_in_total",
                help="Residencies inherited from previous cycles",
            ).inc(carried_in)
            metrics.counter(
                "vor_carryover_out_total",
                help="Residencies handed to the next cycle",
            ).inc(result.carried_out)
            metrics.counter(
                "vor_carryover_reused_total",
                help="Inherited residencies extended by a later cycle",
            ).inc(reused)
        _log.info(
            "cycle %d: %d request(s), $%.2f net, carryover %d in / %d out",
            result.cycle_index,
            len(batch),
            result.net_total_cost,
            carried_in,
            result.carried_out,
        )
        self._cycle_index += 1
        return result

    def rebind(self, cost_model: CostModel) -> None:
        """Swap the scheduling cost model between cycles.

        The carryover state, cycle numbering and boundary clock are
        preserved -- only the model the Phase-1 engine and SORP price
        against changes.  This is the replica-migration hook: the horizon
        layer rebinds a model carrying the migrated
        :class:`~repro.replication.ReplicaMap` and the next
        :meth:`schedule_cycle` serves from the new homes.
        """
        validate_topology(self.topology, replicas=cost_model.replicas)
        self.cost_model = cost_model
        self._engine = ParallelIndividualScheduler(
            cost_model, self._engine.config, obs=self.obs
        )

    def amend_cycle(self, result: CycleResult, plan, *, batch=None,
                    masking: str = "cycle"):
        """Re-solve the last closed cycle around an active fault plan.

        Runs the :class:`~repro.faults.contingency.ContingencyScheduler`
        over ``result.schedule`` and re-rolls the carryover state from the
        patched schedule: entries of re-solved videos are re-derived,
        entries stranded at failed storages are dropped (their cached copy
        is gone), everything else carries forward untouched.

        Args:
            result: The :class:`CycleResult` of the cycle to amend (must be
                the most recently closed cycle -- the carryover state rolls
                from it).
            plan: The active :class:`~repro.faults.plan.FaultPlan`.
            batch: The cycle's request batch; reconstructed from the
                schedule's deliveries when omitted.
            masking: Recovery stance -- ``"cycle"`` (conservative,
                whole-cycle masking) or ``"windowed"`` (time-aware: only
                services intersecting a fault window are re-solved, and a
                carried-over cache is dropped only when an outage actually
                overlaps its occupancy).

        Returns:
            The :class:`~repro.faults.contingency.RecoveryResult`; its
            ``schedule`` is the patched plan for the amended cycle.
        """
        from repro.faults.contingency import ContingencyScheduler
        from repro.faults.inject import combined_effects

        if self._cycle_index == 0:
            raise ScheduleError("no cycle has been closed yet: nothing to amend")
        contingency = ContingencyScheduler(
            self.cost_model,
            heat_metric=self.heat_metric,
            parallel=self._engine.config,
            obs=self.obs,
            masking=masking,
        )
        recovery = contingency.recover(result.schedule, plan, batch=batch)
        effects = combined_effects(self.topology, plan)
        impacted = set(recovery.impacted)
        boundary = self._last_boundary

        def stranded(c: ResidencyInfo) -> bool:
            if c.location not in effects.down_nodes:
                return False
            if masking != "windowed":
                return True  # conservative: ever-down storages lose caches
            playback = self.catalog[c.video_id].playback
            down_there = combined_effects(
                self.topology,
                plan.overlapping(c.t_start, c.t_last + playback),
            ).down_nodes
            return c.location in down_there

        new_carry: dict[str, list[ResidencyInfo]] = {}
        for video_id, residencies in self._carryover.items():
            if video_id in impacted:
                continue  # re-derived from the patched schedule below
            kept = [c for c in residencies if not stranded(c)]
            if kept:
                new_carry[video_id] = kept
        for video_id in impacted:
            if video_id not in recovery.schedule:
                continue  # every request lost: the file left the schedule
            video = self.catalog[video_id]
            for c in recovery.schedule.file(video_id).residencies:
                if c.t_last + video.playback > boundary:
                    new_carry.setdefault(video_id, []).append(c)
        self._carryover = new_carry
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_cycles_amended_total",
                help="Cycle schedules amended by contingency re-scheduling",
            ).inc()
        _log.info(
            "amended cycle %d: %d video(s) re-solved, carryover now %d",
            result.cycle_index,
            recovery.videos_resolved,
            sum(len(v) for v in new_carry.values()),
        )
        return recovery

    # -- internals -------------------------------------------------------------

    def _count_reused(
        self, final: Schedule, seeds: dict[str, tuple[ResidencyInfo, ...]]
    ) -> int:
        reused = 0
        for video_id, seed in seeds.items():
            by_loc = {s.location: s for s in seed}
            if video_id not in final:
                continue
            for c in final.file(video_id).residencies:
                s = by_loc.get(c.location)
                if s is not None and c.t_start == s.t_start and c.t_last > s.t_last:
                    reused += 1
        return reused

    def _roll_state(self, final: Schedule, cycle_end: float) -> None:
        """Carry forward every residency still occupying space past the end."""
        new_carry: dict[str, list[ResidencyInfo]] = {}
        # this cycle's schedule (includes extended seeds for requested titles)
        for c in final.residencies:
            video = self.catalog[c.video_id]
            if c.t_last + video.playback > cycle_end:
                new_carry.setdefault(c.video_id, []).append(c)
        # unrequested carryover whose tails still cross the new boundary
        for video_id, residencies in self._carryover.items():
            if video_id in {fs.video_id for fs in final}:
                continue
            video = self.catalog[video_id]
            for c in residencies:
                if c.t_last + video.playback > cycle_end:
                    new_carry.setdefault(video_id, []).append(c)
        self._carryover = new_carry
