"""Extensions beyond the base paper.

* :mod:`repro.extensions.bandwidth` -- the paper's stated future work
  ("resolve the bandwidth constraints of the intermediate storages and
  communication network"): per-link capacities, a booking tracker, a
  bandwidth-aware route policy with k-cheapest alternates, and an
  admission-controlled scheduler that rejects rather than over-commits.
* :mod:`repro.extensions.rolling` -- multi-cycle VOR operation: residency
  tails carried across cycle boundaries as committed background usage, with
  cross-cycle cache reuse via greedy seeding.
* :mod:`repro.extensions.pricing` -- time-of-day network tariffs (the
  Cocchi/Shenker pricing literature the paper cites): the scheduler
  optimizes under the same diurnal multiplier it is billed under.
"""

from repro.extensions.bandwidth import (
    BandwidthAwareResult,
    BandwidthAwareScheduler,
    BandwidthRoutePolicy,
    LinkBandwidthTracker,
)
from repro.extensions.pricing import DiurnalCostModel, TariffBand, TimeOfDayTariff
from repro.extensions.rolling import CycleResult, RollingScheduler

__all__ = [
    "BandwidthAwareResult",
    "BandwidthAwareScheduler",
    "BandwidthRoutePolicy",
    "LinkBandwidthTracker",
    "DiurnalCostModel",
    "TariffBand",
    "TimeOfDayTariff",
    "CycleResult",
    "RollingScheduler",
]
