"""Bandwidth-constrained scheduling (the paper's future-work extension).

The base model reserves ``B_i`` bytes/s on every link of a delivery route for
one playback length but never checks link capacities.  This extension adds:

* :class:`LinkBandwidthTracker` -- per-link interval booking with exact
  max-concurrency queries,
* :class:`BandwidthRoutePolicy` -- a :class:`~repro.core.individual.RoutePolicy`
  that skips saturated routes, falling back to the k cheapest alternates
  (Yen's algorithm via the router),
* :class:`BandwidthAwareScheduler` -- a two-phase scheduler variant that
  books link capacity as it serves requests chronologically across *all*
  files and applies admission control: a request with no feasible source
  route is **rejected** (recorded, not served) rather than over-committing.

Serving order across files is globally chronological so earlier reservations
get first claim on links, matching how an on-line booking system would admit
VOR requests.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.heat import HeatMetric
from repro.core.individual import IndividualScheduler, RoutePolicy
from repro.core.schedule import Schedule
from repro.core.sorp import ResolutionStats
from repro.errors import ScheduleError
from repro.topology.graph import Topology, edge_key
from repro.topology.routing import Route, Router
from repro.topology.validation import validate_topology
from repro.workload.requests import Request, RequestBatch


class LinkBandwidthTracker:
    """Books stream bandwidth on links and answers feasibility queries.

    Bookings are half-open intervals ``[t0, t1)`` at a constant rate; the
    max-concurrency query sweeps the bookings overlapping the window, which
    is exact for piecewise-constant usage.
    """

    def __init__(self, topology: Topology):
        self._topo = topology
        self._bookings: dict[tuple[str, str], list[tuple[float, float, float]]] = {}

    def usage_max(self, a: str, b: str, t0: float, t1: float) -> float:
        """Peak booked bandwidth on edge ``{a, b}`` during ``[t0, t1)``."""
        bookings = self._bookings.get(edge_key(a, b))
        if not bookings:
            return 0.0
        events: list[tuple[float, float]] = []
        for (s, e, bw) in bookings:
            lo, hi = max(s, t0), min(e, t1)
            if hi <= lo:
                continue
            events.append((lo, bw))
            events.append((hi, -bw))
        if not events:
            return 0.0
        events.sort()
        peak = cur = 0.0
        for _, delta in events:
            cur += delta
            peak = max(peak, cur)
        return peak

    def fits(self, route: Route, t0: float, t1: float, bandwidth: float) -> bool:
        """Can a ``bandwidth`` stream use every edge of ``route`` in the window?"""
        for a, b in zip(route.nodes, route.nodes[1:]):
            cap = self._topo.edge(a, b).bandwidth
            if cap == float("inf"):
                continue
            if self.usage_max(a, b, t0, t1) + bandwidth > cap * (1 + 1e-12):
                return False
        return True

    def book(self, route: Route, t0: float, t1: float, bandwidth: float) -> None:
        """Reserve the stream's bandwidth on every edge of the route."""
        for a, b in zip(route.nodes, route.nodes[1:]):
            key = edge_key(a, b)
            self._bookings.setdefault(key, [])
            insort(self._bookings[key], (t0, t1, bandwidth))

    def peak(self, a: str, b: str) -> float:
        """All-time peak booked bandwidth on one edge."""
        bookings = self._bookings.get(edge_key(a, b))
        if not bookings:
            return 0.0
        lo = min(s for s, _, _ in bookings)
        hi = max(e for _, e, _ in bookings)
        return self.usage_max(a, b, lo, hi)


class BandwidthRoutePolicy(RoutePolicy):
    """Route policy that respects link capacities with k-alternate fallback."""

    def __init__(self, router: Router, tracker: LinkBandwidthTracker, *, k: int = 4):
        super().__init__(router)
        if k < 1:
            raise ScheduleError(f"k must be >= 1, got {k}")
        self._tracker = tracker
        self._k = k
        self.diverted = 0  # streams that had to leave the cheapest route

    def select(
        self, src: str, dst: str, t_start: float, t_end: float, bandwidth: float
    ) -> Route | None:
        if src == dst:
            return self._router.route(src, dst)
        for route in self._router.k_cheapest_routes(src, dst, self._k):
            if self._tracker.fits(route, t_start, t_end, bandwidth):
                return route
        return None

    def commit(
        self, route: Route, t_start: float, t_end: float, bandwidth: float
    ) -> None:
        if route.hops > 0:
            cheapest = self._router.route(route.src, route.dst)
            if route.nodes != cheapest.nodes:
                self.diverted += 1
        self._tracker.book(route, t_start, t_end, bandwidth)


class LiveCapacityConstraints:
    """Storage-capacity constraints evaluated against live greedy sessions.

    The bandwidth-aware scheduler admits requests in global chronological
    order, so residencies accumulate across many concurrently-open per-file
    sessions.  This oracle prices every new/extended residency against the
    *current* combined usage of all sessions (minus the residency being
    replaced), making the admitted schedule storage-feasible by
    construction -- no overflow-resolution phase is needed, and bandwidth
    bookings made during admission stay authoritative.
    """

    def __init__(self, topology: Topology, catalog: VideoCatalog):
        self._topo = topology
        self._catalog = catalog
        self._sessions: list = []

    def register(self, session) -> None:
        self._sessions.append(session)

    def allows(self, candidate, video, *, replacing=None) -> bool:
        from repro.core.rejective import fits_under
        from repro.core.spacefunc import EPS, UsageTimeline

        profile = candidate.profile(video)
        if not profile.segments:
            return True  # zero-extent candidates occupy no space
        capacity = self._topo.capacity(candidate.location)
        if profile.peak > capacity + EPS:
            return False
        others = []
        for session in self._sessions:
            for c in session.residencies:
                if c is replacing or c.location != candidate.location:
                    continue
                others.append(c.profile(self._catalog[c.video_id]))
        return fits_under(UsageTimeline(others), profile, capacity)


@dataclass
class BandwidthAwareResult:
    """Outcome of a bandwidth-constrained scheduling run."""

    schedule: Schedule
    cost: CostBreakdown
    resolution: ResolutionStats
    rejected: list[Request] = field(default_factory=list)
    diverted_streams: int = 0

    @property
    def total_cost(self) -> float:
        return self.cost.total

    @property
    def admitted(self) -> int:
        return len(self.schedule.deliveries)

    @property
    def rejection_rate(self) -> float:
        total = self.admitted + len(self.rejected)
        return len(self.rejected) / total if total else 0.0


class BandwidthAwareScheduler:
    """Admission-controlled scheduler honouring links *and* storage.

    Requests are admitted in global chronological order, one file-greedy
    step at a time.  Two live oracles make the result feasible **by
    construction**:

    * a shared :class:`LinkBandwidthTracker` books every stream's bandwidth
      on its route (k-cheapest alternates tried when the cheapest is
      saturated);
    * a :class:`LiveCapacityConstraints` oracle prices every caching
      decision against the combined current residencies, so storages never
      over-commit and no overflow-resolution phase is needed afterwards
      (rerouting victims post hoc would invalidate the link bookings).

    Requests with no feasible source route are rejected and reported.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        k_routes: int = 4,
    ):
        validate_topology(topology)
        self.topology = topology
        self.catalog = catalog
        self.heat_metric = heat_metric
        self.cost_model = CostModel(topology, catalog)
        self.tracker = LinkBandwidthTracker(topology)
        self._policy = BandwidthRoutePolicy(
            self.cost_model.router, self.tracker, k=k_routes
        )
        self._capacity = LiveCapacityConstraints(topology, catalog)
        self._greedy = IndividualScheduler(
            self.cost_model,
            constraints=self._capacity,
            route_policy=self._policy,
        )

    def solve(self, batch: RequestBatch) -> BandwidthAwareResult:
        rejected: list[Request] = []
        admitted: list[Request] = []
        sessions: dict[str, object] = {}
        # global chronological admission: earlier reservations book links
        # first; each video keeps its own incremental greedy session so cache
        # state and bandwidth bookings accumulate consistently.
        for req in batch:
            session = sessions.get(req.video_id)
            if session is None:
                session = self._greedy.session(self.catalog[req.video_id])
                self._capacity.register(session)
                sessions[req.video_id] = session
            try:
                session.serve(req)
            except ScheduleError:
                rejected.append(req)
                continue
            admitted.append(req)
        final = Schedule(s.finish() for s in sessions.values()).pruned()
        cost = self.cost_model.schedule_cost(final)
        stats = ResolutionStats(phase1_cost=cost.total, resolved_cost=cost.total)
        return BandwidthAwareResult(
            schedule=final,
            cost=cost,
            resolution=stats,
            rejected=rejected,
            diverted_streams=self._policy.diverted,
        )
