"""Time-of-day network tariffs.

The paper's related work points at the network-pricing literature (Cocchi et
al.; Shenker et al.): real transfer pricing is not flat, and a VOR provider
with day-ahead knowledge should exploit cheap off-peak capacity.  This
extension provides a piecewise-constant diurnal tariff and a
:class:`DiurnalCostModel` that applies it to every network charge -- both
when *evaluating* Ψ and inside the greedy's candidate pricing, so the
scheduler optimizes under the tariff it is billed under.

A typical effect: under an expensive evening peak the scheduler caches more
aggressively, because a stream already paid for at 8 pm seeds caches whose
later *local* services dodge the peak network price entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostModel
from repro.errors import ConfigError
from repro.topology.graph import Topology
from repro import units


@dataclass(frozen=True)
class TariffBand:
    """One daily band: ``[start, end)`` hours at a rate multiplier."""

    start_hour: float
    end_hour: float
    multiplier: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.start_hour < self.end_hour <= 24.0):
            raise ConfigError(
                f"band must satisfy 0 <= start < end <= 24, got "
                f"[{self.start_hour}, {self.end_hour})"
            )
        if not (self.multiplier > 0 and math.isfinite(self.multiplier)):
            raise ConfigError(
                f"multiplier must be positive and finite, got {self.multiplier}"
            )


class TimeOfDayTariff:
    """Piecewise-constant daily rate multiplier.

    Bands may not overlap; time outside every band uses ``base`` (1.0 by
    default).  Times are taken modulo 24 h, so the tariff applies uniformly
    to multi-day horizons.
    """

    def __init__(self, bands: list[TariffBand], *, base: float = 1.0):
        if base <= 0 or not math.isfinite(base):
            raise ConfigError(f"base multiplier must be positive, got {base}")
        ordered = sorted(bands, key=lambda b: b.start_hour)
        for a, b in zip(ordered, ordered[1:]):
            if b.start_hour < a.end_hour:
                raise ConfigError(
                    f"tariff bands overlap: [{a.start_hour}, {a.end_hour}) and "
                    f"[{b.start_hour}, {b.end_hour})"
                )
        self._bands = ordered
        self._base = base

    @classmethod
    def evening_peak(
        cls,
        *,
        peak_start: float = 18.0,
        peak_end: float = 23.0,
        peak_multiplier: float = 1.5,
        night_multiplier: float = 0.6,
    ) -> "TimeOfDayTariff":
        """A common shape: pricey prime time, cheap overnight (0-6 am)."""
        return cls(
            [
                TariffBand(0.0, 6.0, night_multiplier),
                TariffBand(peak_start, peak_end, peak_multiplier),
            ]
        )

    def multiplier(self, t: float) -> float:
        """Rate multiplier at absolute time ``t`` (seconds)."""
        hour = (t % units.DAY) / units.HOUR
        for band in self._bands:
            if band.start_hour <= hour < band.end_hour:
                return band.multiplier
        return self._base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"[{b.start_hour:g}h-{b.end_hour:g}h)x{b.multiplier:g}"
            for b in self._bands
        )
        return f"TimeOfDayTariff({parts}, base x{self._base:g})"


class DiurnalCostModel(CostModel):
    """Ψ with a time-of-day network tariff (storage stays flat)."""

    def __init__(
        self,
        topology: Topology,
        catalog: VideoCatalog,
        tariff: TimeOfDayTariff,
        *,
        cache: bool = True,
    ):
        # the memoized route rate is tariff-free (the multiplier is applied
        # per delivery, outside the cache), so caching stays exact here too
        super().__init__(topology, catalog, cache=cache)
        self._tariff = tariff

    @property
    def tariff(self) -> TimeOfDayTariff:
        return self._tariff

    def network_multiplier(self, start_time: float) -> float:
        return self._tariff.multiplier(start_time)
