"""Exception hierarchy for the VOR reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Malformed topology: unknown node, duplicate edge, negative rate, ..."""


class RoutingError(ReproError):
    """No route exists between two nodes, or a route references unknown nodes."""


class CatalogError(ReproError):
    """Malformed video catalog or unknown video id."""


class WorkloadError(ReproError):
    """Invalid workload specification (bad Zipf parameter, empty cycle, ...)."""


class ScheduleError(ReproError):
    """Structurally invalid schedule (negative interval, unknown node, ...)."""


class CausalityError(ScheduleError):
    """A schedule element consumes data before it is available at the source."""


class CapacityError(ReproError):
    """A hard capacity constraint is violated (simulator / validators)."""


class OverflowResolutionError(ReproError):
    """SORP could not resolve a storage overflow within its iteration budget."""


class ConfigError(ReproError):
    """Invalid experiment configuration."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency while executing."""


class FaultError(ReproError):
    """Malformed fault scenario, or a fault leaves the system unrecoverable."""


class ReplicationError(ReproError):
    """Malformed replica map: unknown video, non-warehouse home, no coverage."""


class GatewayError(ReproError):
    """Malformed request feed, admission-policy spec, or gateway state."""
