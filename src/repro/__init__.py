"""Reproduction of Won & Srivastava (HPDC 1997).

*Distributed Service Paradigm for Remote Video Retrieval Request*:
a cost model and two-phase scheduling algorithm for Video-On-Reservation
delivery over a video warehouse + intermediate-storage infrastructure.

Quickstart::

    from repro import (
        VideoScheduler, WorkloadGenerator, paper_catalog, paper_topology,
    )
    from repro import units

    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    catalog = paper_catalog(seed=7)
    batch = WorkloadGenerator(topo, catalog, alpha=0.271).generate(seed=7)
    result = VideoScheduler(topo, catalog).solve(batch)
    print(f"total cost ${result.total_cost:,.2f}")
"""

from repro import io, obs, units
from repro.billing import BillingStatement, Invoice, allocate_costs
from repro.catalog import VideoCatalog, VideoFile, paper_catalog, uniform_catalog
from repro.core import (
    CacheStats,
    CacheStatsDetail,
    CostBreakdown,
    CostModel,
    DeliveryInfo,
    FileSchedule,
    HeatMetric,
    IndividualScheduler,
    OverflowSituation,
    ParallelConfig,
    ParallelIndividualScheduler,
    Phase1Result,
    ResidencyInfo,
    ResolutionStats,
    Schedule,
    ScheduleResult,
    UsageTimeline,
    VideoScheduler,
    detect_overflows,
    resolve_overflows,
)
from repro.faults import (
    ContingencyScheduler,
    DegradedModeReport,
    FaultEvent,
    FaultFeed,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RecoveryResult,
    build_degraded_report,
    masked_topology,
)
from repro.gateway import (
    AdmissionPolicy,
    GatewayConfig,
    GatewayRunReport,
    RequestEvent,
    RequestFeed,
    ReservationGateway,
    build_policy,
)
from repro.online import (
    CircuitBreaker,
    OnlineAmendmentLoop,
    OnlineLoopConfig,
    OnlineRunReport,
    RetryPolicy,
    TransientFailureInjector,
    TransientResolveError,
)
from repro.horizon import (
    CarryoverLedger,
    HorizonConfig,
    HorizonOrchestrator,
    HorizonReport,
    MigrationConfig,
    MigrationPlan,
    MigrationPlanner,
    build_resume_ledger,
    generate_drifting_cycles,
)
from repro.obs import NULL_OBS, Observability, RunTelemetry, configure_logging
from repro.replication import ReplicaMap
from repro.topology import (
    ChargingBasis,
    Router,
    Topology,
    chain_topology,
    paper_topology,
    random_topology,
    ring_topology,
    star_topology,
    tree_topology,
    validate_topology,
    worked_example_topology,
)
from repro.service import CycleReport, VORService
from repro.warehouse import StagingPlanner, StagingReport, WarehouseSpec
from repro.workload import (
    PeakHourArrivals,
    RankChurn,
    Request,
    RequestBatch,
    SlottedArrivals,
    UniformArrivals,
    WorkloadGenerator,
    ZipfPopularity,
)

__version__ = "1.0.0"

__all__ = [
    "io",
    "obs",
    "units",
    "NULL_OBS",
    "Observability",
    "RunTelemetry",
    "configure_logging",
    "BillingStatement",
    "Invoice",
    "allocate_costs",
    "VideoCatalog",
    "VideoFile",
    "paper_catalog",
    "uniform_catalog",
    "CacheStats",
    "CacheStatsDetail",
    "CostBreakdown",
    "CostModel",
    "DeliveryInfo",
    "FileSchedule",
    "HeatMetric",
    "IndividualScheduler",
    "OverflowSituation",
    "ParallelConfig",
    "ParallelIndividualScheduler",
    "Phase1Result",
    "ResidencyInfo",
    "ResolutionStats",
    "Schedule",
    "ScheduleResult",
    "UsageTimeline",
    "VideoScheduler",
    "detect_overflows",
    "resolve_overflows",
    "ContingencyScheduler",
    "DegradedModeReport",
    "FaultEvent",
    "FaultFeed",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RecoveryResult",
    "build_degraded_report",
    "masked_topology",
    "AdmissionPolicy",
    "GatewayConfig",
    "GatewayRunReport",
    "RequestEvent",
    "RequestFeed",
    "ReservationGateway",
    "build_policy",
    "CircuitBreaker",
    "OnlineAmendmentLoop",
    "OnlineLoopConfig",
    "OnlineRunReport",
    "RetryPolicy",
    "TransientFailureInjector",
    "TransientResolveError",
    "ReplicaMap",
    "CarryoverLedger",
    "HorizonConfig",
    "HorizonOrchestrator",
    "HorizonReport",
    "MigrationConfig",
    "MigrationPlan",
    "MigrationPlanner",
    "build_resume_ledger",
    "generate_drifting_cycles",
    "ChargingBasis",
    "Router",
    "Topology",
    "chain_topology",
    "paper_topology",
    "random_topology",
    "ring_topology",
    "star_topology",
    "tree_topology",
    "validate_topology",
    "worked_example_topology",
    "CycleReport",
    "VORService",
    "StagingPlanner",
    "StagingReport",
    "WarehouseSpec",
    "PeakHourArrivals",
    "RankChurn",
    "Request",
    "RequestBatch",
    "SlottedArrivals",
    "UniformArrivals",
    "WorkloadGenerator",
    "ZipfPopularity",
    "__version__",
]
