"""Descriptive statistics of a service schedule.

Consolidates the quantities examples and reports keep recomputing ad hoc:
how many services came from the warehouse vs caches vs relays, how far
streams travelled, how many paid bytes moved, and how well the caches were
shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.catalog.catalog import VideoCatalog
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate description of one schedule."""

    n_deliveries: int
    from_warehouse: int
    from_cache: int
    local_services: int  # zero-hop: served by the user's own storage
    relays: int  # zero-extent residencies with services
    residencies: int
    mean_hops: float
    network_bytes: float  # paid transfer volume (hops > 0 only)
    cache_hit_ratio: float  # services not sourced at a warehouse
    mean_services_per_residency: float

    def as_table(self) -> str:
        return format_table(
            ["quantity", "value"],
            [
                ["deliveries", self.n_deliveries],
                ["  from warehouse", self.from_warehouse],
                ["  from caches", self.from_cache],
                ["  of which local (0 hops)", self.local_services],
                ["relay residencies", self.relays],
                ["cache residencies", self.residencies],
                ["mean hops per stream", round(self.mean_hops, 3)],
                ["paid network volume (GB)", round(self.network_bytes / 1e9, 3)],
                ["cache service share", f"{100 * self.cache_hit_ratio:.1f} %"],
                [
                    "services per residency",
                    round(self.mean_services_per_residency, 2),
                ],
            ],
            title="schedule statistics",
        )


def schedule_stats(schedule: Schedule, catalog: VideoCatalog) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for a schedule."""
    deliveries = schedule.deliveries
    residencies = schedule.residencies
    warehouses_sources = 0
    cache_sources = 0
    local = 0
    hops_total = 0
    net_bytes = 0.0
    storage_locations = {c.location for c in residencies}
    for d in deliveries:
        hops_total += d.hops
        if d.hops == 0:
            local += 1
        else:
            net_bytes += catalog[d.video_id].network_volume
        # a source that never hosts a residency in this schedule and isn't
        # the destination itself is a warehouse
        if d.hops == 0 or d.source in storage_locations:
            cache_sources += 1
        else:
            warehouses_sources += 1
    relays = sum(
        1 for c in residencies if c.t_last == c.t_start and c.service_list
    )
    served_from_res = sum(len(c.service_list) for c in residencies)
    return ScheduleStats(
        n_deliveries=len(deliveries),
        from_warehouse=warehouses_sources,
        from_cache=cache_sources,
        local_services=local,
        relays=relays,
        residencies=len(residencies),
        mean_hops=hops_total / len(deliveries) if deliveries else 0.0,
        network_bytes=net_bytes,
        cache_hit_ratio=(
            cache_sources / len(deliveries) if deliveries else 0.0
        ),
        mean_services_per_residency=(
            served_from_res / len(residencies) if residencies else 0.0
        ),
    )
