"""Summary statistics for experiment result collections."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of a non-empty numeric sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
