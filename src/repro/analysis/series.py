"""Named (x, y) data series with qualitative-shape predicates.

The reproduction's acceptance criteria are *shapes*: "total cost increases
with the network charging rate", "the no-cache line grows faster than the
cached curve", "the curve approaches the network-only asymptote".  These are
exactly the predicates :class:`Series` offers, so benchmark assertions read
like the paper's prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class Series:
    """One curve of an experiment figure."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(
                f"series {self.name!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})"
            )
        if len(self.x) == 0:
            raise ReproError(f"series {self.name!r} is empty")
        xs = np.asarray(self.x)
        if not (np.diff(xs) > 0).all():
            raise ReproError(f"series {self.name!r}: x must be strictly increasing")

    def __len__(self) -> int:
        return len(self.x)

    @property
    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.x, self.y))

    # -- shape predicates ------------------------------------------------------

    def is_increasing(self, *, strict: bool = False, tol: float = 1e-9) -> bool:
        d = np.diff(np.asarray(self.y))
        return bool((d > tol).all()) if strict else bool((d >= -tol).all())

    def is_decreasing(self, *, strict: bool = False, tol: float = 1e-9) -> bool:
        d = np.diff(np.asarray(self.y))
        return bool((d < -tol).all()) if strict else bool((d <= tol).all())

    def dominates(self, other: "Series", *, tol: float = 1e-9) -> bool:
        """True if this curve lies at or above ``other`` at every shared x."""
        shared = self._shared_points(other)
        return all(a >= b - tol for a, b in shared)

    def growth(self) -> float:
        """Total rise ``y[-1] - y[0]``."""
        return self.y[-1] - self.y[0]

    def slope_estimate(self) -> float:
        """Least-squares slope over the series."""
        xs, ys = np.asarray(self.x), np.asarray(self.y)
        return float(np.polyfit(xs, ys, 1)[0])

    def linearity(self) -> float:
        """R^2 of the best linear fit (1.0 = perfectly linear)."""
        xs, ys = np.asarray(self.x), np.asarray(self.y)
        if len(xs) < 3:
            return 1.0
        coeffs = np.polyfit(xs, ys, 1)
        pred = np.polyval(coeffs, xs)
        ss_res = float(((ys - pred) ** 2).sum())
        ss_tot = float(((ys - ys.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0
        return 1.0 - ss_res / ss_tot

    def _shared_points(self, other: "Series") -> list[tuple[float, float]]:
        other_map = dict(zip(other.x, other.y))
        shared = [(ys, other_map[xs]) for xs, ys in zip(self.x, self.y) if xs in other_map]
        if not shared:
            raise ReproError(
                f"series {self.name!r} and {other.name!r} share no x values"
            )
        return shared


def gap_between(upper: Series, lower: Series) -> list[float]:
    """Pointwise ``upper - lower`` at shared x values (in x order)."""
    lower_map = dict(zip(lower.x, lower.y))
    gaps = [y - lower_map[x] for x, y in zip(upper.x, upper.y) if x in lower_map]
    if not gaps:
        raise ReproError(
            f"series {upper.name!r} and {lower.name!r} share no x values"
        )
    return gaps


def relative_gap(upper: Series, lower: Series) -> list[float]:
    """Pointwise ``(upper - lower) / upper`` at shared x values."""
    lower_map = dict(zip(lower.x, lower.y))
    out = []
    for x, y in zip(upper.x, upper.y):
        if x in lower_map:
            out.append((y - lower_map[x]) / y if y else 0.0)
    if not out:
        raise ReproError(
            f"series {upper.name!r} and {lower.name!r} share no x values"
        )
    return out
