"""Fixed-width text tables for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:,.1f}",
) -> str:
    """Render a simple aligned table.

    Floats go through ``float_fmt``; everything else through ``str``.
    Numeric columns are right-aligned, text columns left-aligned.
    """
    if not headers:
        raise ReproError("table needs at least one column")
    ncols = len(headers)
    rendered: list[list[str]] = []
    numeric = [True] * ncols
    for row in rows:
        if len(row) != ncols:
            raise ReproError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
        cells = []
        for j, cell in enumerate(row):
            if isinstance(cell, bool):
                cells.append(str(cell))
                numeric[j] = False
            elif isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            elif isinstance(cell, int):
                cells.append(f"{cell:,}")
            else:
                cells.append(str(cell))
                numeric[j] = False
        rendered.append(cells)
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in rendered)) if rendered else len(headers[j])
        for j in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, c in enumerate(cells):
            parts.append(c.rjust(widths[j]) if numeric[j] else c.ljust(widths[j]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)
