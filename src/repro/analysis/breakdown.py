"""Where does the money go?  Cost breakdowns over a schedule.

Operators reason about spend along three axes the flat Ψ total hides:

* **by storage** -- which neighborhoods' caches cost what
  (:func:`cost_by_storage`),
* **by link** -- which network segments carry the paid traffic
  (:func:`cost_by_link`),
* **by title** -- which videos drive the bill (:func:`cost_by_title`).

Every breakdown is exact: its values sum to the corresponding component of
``CostModel.schedule_cost`` (asserted in the tests), so these are safe to
use for chargeback or provisioning decisions.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.costmodel import CostModel
from repro.core.schedule import Schedule
from repro.topology.graph import edge_key


def cost_by_storage(schedule: Schedule, cost_model: CostModel) -> dict[str, float]:
    """Storage cost per intermediate storage (only storages with spend)."""
    out: dict[str, float] = {}
    for c in schedule.residencies:
        cost = cost_model.residency_cost(c)
        if cost:
            out[c.location] = out.get(c.location, 0.0) + cost
    return out


def cost_by_link(schedule: Schedule, cost_model: CostModel) -> dict[tuple[str, str], float]:
    """Network cost per link (per-hop charging).

    Under end-to-end charging with explicit pair rates a delivery's cost is
    not attributable to individual links; such deliveries are attributed to
    the synthetic key ``("<end-to-end>", "<pairs>")``.
    """
    from repro.topology.graph import ChargingBasis

    topo = cost_model.topology
    out: dict[tuple[str, str], float] = {}
    for fs in schedule:
        video = cost_model.catalog[fs.video_id]
        for d in fs.deliveries:
            if d.hops == 0:
                continue
            multiplier = cost_model.network_multiplier(d.start_time)
            volume = video.network_volume * multiplier
            if (
                topo.charging_basis is ChargingBasis.END_TO_END
                and topo.pair_rate(d.source, d.destination) is not None
            ):
                key = ("<end-to-end>", "<pairs>")
                out[key] = out.get(key, 0.0) + cost_model.delivery_cost(d)
                continue
            for a, b in zip(d.route, d.route[1:]):
                key = edge_key(a, b)
                out[key] = out.get(key, 0.0) + volume * topo.edge(a, b).nrate
    return out


def cost_by_title(
    schedule: Schedule, cost_model: CostModel
) -> dict[str, tuple[float, float]]:
    """(network, storage) cost per video id."""
    out: dict[str, tuple[float, float]] = {}
    for fs in schedule:
        b = cost_model.file_cost(fs)
        out[fs.video_id] = (b.network, b.storage)
    return out


def breakdown_report(
    schedule: Schedule, cost_model: CostModel, *, top: int = 10
) -> str:
    """Readable three-axis spend report (top-N rows per axis)."""
    parts = []
    by_storage = sorted(
        cost_by_storage(schedule, cost_model).items(),
        key=lambda kv: kv[1],
        reverse=True,
    )[:top]
    parts.append(
        format_table(
            ["storage", "storage cost ($)"],
            [[k, v] for k, v in by_storage],
            title="spend by storage",
        )
    )
    by_link = sorted(
        cost_by_link(schedule, cost_model).items(),
        key=lambda kv: kv[1],
        reverse=True,
    )[:top]
    parts.append(
        format_table(
            ["link", "network cost ($)"],
            [[f"{a} -- {b}", v] for (a, b), v in by_link],
            title="spend by link",
        )
    )
    by_title = sorted(
        cost_by_title(schedule, cost_model).items(),
        key=lambda kv: kv[1][0] + kv[1][1],
        reverse=True,
    )[:top]
    parts.append(
        format_table(
            ["title", "network ($)", "storage ($)"],
            [[k, n, s] for k, (n, s) in by_title],
            title="spend by title",
        )
    )
    return "\n\n".join(parts)
