"""Analysis utilities: result series, shape checks, and terminal rendering.

The benchmark harness reproduces the paper's figures as *data series* and
checks their qualitative shape (monotonicity, ordering, crossovers, widening
gaps) rather than absolute values.  This subpackage provides:

* :class:`~repro.analysis.series.Series` -- a named (x, y) sequence with
  shape predicates,
* :mod:`~repro.analysis.tables` -- fixed-width text tables,
* :mod:`~repro.analysis.stats` -- summary statistics helpers,
* :mod:`~repro.analysis.ascii` -- dependency-free ASCII line charts so each
  "figure" can be eyeballed in a terminal or CI log.
"""

from repro.analysis.series import Series, gap_between, relative_gap
from repro.analysis.tables import format_table
from repro.analysis.stats import summarize
from repro.analysis.ascii import ascii_chart, ascii_timeline
from repro.analysis.explain import (
    DeliveryExplanation,
    FileExplanation,
    SourceOption,
    explain_file,
)
from repro.analysis.breakdown import (
    breakdown_report,
    cost_by_link,
    cost_by_storage,
    cost_by_title,
)
from repro.analysis.schedule_stats import ScheduleStats, schedule_stats

__all__ = [
    "Series",
    "gap_between",
    "relative_gap",
    "format_table",
    "summarize",
    "ascii_chart",
    "ascii_timeline",
    "DeliveryExplanation",
    "FileExplanation",
    "SourceOption",
    "explain_file",
    "breakdown_report",
    "cost_by_link",
    "cost_by_storage",
    "cost_by_title",
    "ScheduleStats",
    "schedule_stats",
]
