"""Dependency-free ASCII charts.

The paper's figures are line charts; rendering them as ASCII lets every
benchmark print its "figure" into the terminal / CI log with no plotting
dependency.  ``ascii_timeline`` additionally renders a storage-usage profile
(the shape of the paper's Fig. 3).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis.series import Series
from repro.core.spacefunc import UsageTimeline
from repro.errors import ReproError

_MARKERS = "*+ox#@%&"


def ascii_chart(
    series_list: Sequence[Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Plot one or more series in a character grid with a shared scale."""
    if not series_list:
        raise ReproError("need at least one series to chart")
    if width < 8 or height < 4:
        raise ReproError("chart must be at least 8x4")
    all_x = [x for s in series_list for x in s.x]
    all_y = [y for s in series_list for y in s.y]
    x0, x1 = min(all_x), max(all_x)
    y0, y1 = min(all_y), max(all_y)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series_list):
        marker = _MARKERS[idx % len(_MARKERS)]
        # draw with light interpolation so curves read as lines
        xs = np.asarray(s.x, dtype=np.float64)
        ys = np.asarray(s.y, dtype=np.float64)
        dense_x = np.linspace(x0, x1, width * 2)
        dense_y = np.interp(dense_x, xs, ys, left=np.nan, right=np.nan)
        for dx, dy in zip(dense_x, dense_y):
            if np.isnan(dy):
                continue
            col = int(round((dx - x0) / (x1 - x0) * (width - 1)))
            row = int(round((dy - y0) / (y1 - y0) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:>12.4g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " |" + "".join(row))
    lines.append(f"{y0:>12.4g} +" + "".join(grid[-1]))
    lines.append(" " * 14 + f"{x0:<.4g}" + " " * max(1, width - 16) + f"{x1:>.4g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series_list)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def ascii_timeline(
    timeline: UsageTimeline,
    *,
    capacity: float | None = None,
    width: int = 64,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Render a storage-usage timeline (the shape of the paper's Fig. 3).

    Over-capacity cells are drawn with ``!`` so overflow windows stand out.
    """
    if timeline.is_empty:
        return (title + "\n" if title else "") + "(no usage)"
    grid_t = timeline.grid
    t0, t1 = float(grid_t[0]), float(grid_t[-1])
    if t1 == t0:
        t1 = t0 + 1.0
    ts = np.linspace(t0, t1, width)
    vals = np.array([timeline.value(float(t)) for t in ts])
    top = max(float(vals.max()), capacity or 0.0)
    if top <= 0:
        top = 1.0
    lines = []
    if title:
        lines.append(title)
    cap_row = (
        int(round(capacity / top * (height - 1))) if capacity is not None else None
    )
    for row in range(height - 1, -1, -1):
        level = row / (height - 1) * top
        cells = []
        overflow_slack = (
            capacity * (1 + 1e-9) + 1e-9 if capacity is not None else None
        )
        for v in vals:
            if v >= level and v > 0:
                cells.append(
                    "!"
                    if overflow_slack is not None and v > overflow_slack
                    else "#"
                )
            elif cap_row is not None and row == cap_row:
                cells.append("-")
            else:
                cells.append(" ")
        prefix = f"{level:>12.4g} |"
        lines.append(prefix + "".join(cells))
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(" " * 14 + f"t={t0:<.4g}" + " " * max(1, width - 20) + f"t={t1:>.4g}")
    if capacity is not None:
        lines.append(" " * 14 + f"capacity = {capacity:g} ('!' marks overflow)")
    return "\n".join(lines)
