"""Explain a schedule: why was each request served the way it was?

Given a finished schedule, :func:`explain_file` re-prices, for every
delivery of a file, the alternatives the greedy faced at that moment -- the
warehouse and every cache residency alive by then -- and reports the chosen
source's cost next to the best alternative.  This turns an opaque schedule
into an auditable decision log ("U3 from IS2's cache: $0.00 vs $97.20 from
the warehouse") and is the first thing to reach for when a schedule looks
surprising.

The reconstruction is exact for network costs; for cache extensions it
prices the extension against the residency's final interval, which bounds
(and for the chosen option equals) the greedy's incremental view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.core.costmodel import CostModel
from repro.core.schedule import FileSchedule, Schedule
from repro.errors import ScheduleError


@dataclass(frozen=True)
class SourceOption:
    """One priced way a request could have been served."""

    source: str
    kind: str  # "warehouse" | "cache" | "relay"
    network_cost: float
    note: str = ""

    @property
    def label(self) -> str:
        return f"{self.source} ({self.kind})"


@dataclass
class DeliveryExplanation:
    """The decision record for one delivery."""

    user_id: str
    start_time: float
    chosen: SourceOption
    alternatives: list[SourceOption] = field(default_factory=list)

    @property
    def best_alternative(self) -> SourceOption | None:
        if not self.alternatives:
            return None
        return min(self.alternatives, key=lambda o: o.network_cost)

    @property
    def saving(self) -> float:
        """Network saved vs the best alternative (negative = dearer)."""
        best = self.best_alternative
        if best is None:
            return 0.0
        return best.network_cost - self.chosen.network_cost


@dataclass
class FileExplanation:
    """All decision records for one video's schedule."""

    video_id: str
    deliveries: list[DeliveryExplanation] = field(default_factory=list)
    residency_notes: list[str] = field(default_factory=list)

    def as_table(self) -> str:
        rows = []
        for d in self.deliveries:
            best = d.best_alternative
            rows.append(
                [
                    d.user_id,
                    f"{d.start_time:g}",
                    d.chosen.label,
                    d.chosen.network_cost,
                    best.label if best else "-",
                    best.network_cost if best else "-",
                ]
            )
        table = format_table(
            ["user", "t", "served from", "net cost ($)", "best alt", "alt cost ($)"],
            rows,
            title=f"decisions for {self.video_id}",
            float_fmt="{:,.2f}",
        )
        if self.residency_notes:
            table += "\n" + "\n".join(self.residency_notes)
        return table


def explain_file(
    schedule: Schedule, video_id: str, cost_model: CostModel
) -> FileExplanation:
    """Reconstruct the per-delivery decision log for one video."""
    fs: FileSchedule = schedule.file(video_id)
    video = cost_model.catalog[video_id]
    router = cost_model.router
    warehouses = [w.name for w in cost_model.topology.warehouses]
    explanation = FileExplanation(video_id)

    for d in sorted(fs.deliveries, key=lambda d: (d.start_time, d.request.user_id)):
        t = d.start_time
        multiplier = cost_model.network_multiplier(t)
        volume = video.network_volume * multiplier
        options: list[SourceOption] = []
        for w in warehouses:
            options.append(
                SourceOption(
                    w,
                    "warehouse",
                    volume * router.rate(w, d.destination),
                )
            )
        for c in fs.residencies:
            if c.t_start > t:
                continue  # cache did not exist yet at service time
            if c.t_start == t and c.location != d.source:
                # opened at this very instant -- typically by this delivery's
                # own stream, so it was not an option at decision time
                continue
            kind = "relay" if c.t_last == c.t_start else "cache"
            options.append(
                SourceOption(
                    c.location,
                    kind,
                    volume * router.rate(c.location, d.destination),
                    note=f"residency [{c.t_start:g}, {c.t_last:g}]",
                )
            )
        chosen = None
        rest = []
        for o in options:
            if chosen is None and o.source == d.source:
                chosen = o
            else:
                rest.append(o)
        if chosen is None:
            raise ScheduleError(
                f"delivery source {d.source!r} has no reconstructable option"
            )
        explanation.deliveries.append(
            DeliveryExplanation(
                user_id=d.request.user_id,
                start_time=t,
                chosen=chosen,
                alternatives=rest,
            )
        )

    for c in fs.residencies:
        cost = cost_model.residency_cost(c)
        explanation.residency_notes.append(
            f"residency at {c.location}: [{c.t_start:g}, {c.t_last:g}] "
            f"serving {len(c.service_list)} user(s), storage ${cost:,.2f}"
        )
    return explanation
