"""Batching (delayed multicast) study.

A classic contemporary alternative to the paper's caching approach is
*batching* (Dan, Sitaram & Shahabuddin '94): delay each service to the next
slot boundary so that requests for the same title coalesce into one stream.
Under our model, simultaneous same-title requests share streams for free
(zero-lag relays), so batching trades **user-visible waiting time** for
network cost.

:func:`batched_schedule` shifts every request forward to its next slot
boundary and runs the full two-phase scheduler on the shifted batch;
:func:`batching_study` sweeps the slot width and reports the cost/delay
frontier.  It composes with caching rather than replacing it -- exactly how
a provider would deploy both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.catalog.catalog import VideoCatalog
from repro.core.scheduler import ScheduleResult, VideoScheduler
from repro.errors import WorkloadError
from repro.topology.graph import Topology
from repro.workload.requests import Request, RequestBatch
from repro import units


def snap_to_slots(batch: RequestBatch, slot: float) -> RequestBatch:
    """Shift every request forward to its next slot boundary.

    A request already on a boundary is not moved.  Slot width must be
    positive; width 0 is expressed by returning the batch unchanged via
    ``slot=None`` at the call sites.
    """
    if slot <= 0 or not math.isfinite(slot):
        raise WorkloadError(f"slot must be positive and finite, got {slot}")
    return RequestBatch(
        Request(
            math.ceil(r.start_time / slot) * slot,
            r.video_id,
            r.user_id,
            r.local_storage,
        )
        for r in batch
    )


def batched_schedule(
    batch: RequestBatch,
    topology: Topology,
    catalog: VideoCatalog,
    *,
    slot: float,
) -> tuple[ScheduleResult, float]:
    """Schedule the slot-snapped batch; returns (result, mean delay seconds)."""
    snapped = snap_to_slots(batch, slot)
    delays = [
        math.ceil(r.start_time / slot) * slot - r.start_time for r in batch
    ]
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    result = VideoScheduler(topology, catalog).solve(snapped)
    return result, mean_delay


@dataclass
class BatchingStudy:
    """Cost/delay frontier over slot widths."""

    rows: list[tuple[float, float, float, int]] = field(default_factory=list)
    # (slot_seconds, total_cost, mean_delay, relay_count)

    def as_table(self) -> str:
        return format_table(
            ["slot", "total cost ($)", "mean wait", "shared streams"],
            [
                [
                    units.fmt_duration(slot) if slot else "none",
                    cost,
                    units.fmt_duration(delay),
                    relays,
                ]
                for slot, cost, delay, relays in self.rows
            ],
            title="batching study: waiting time vs delivery cost",
        )

    def costs(self) -> list[float]:
        return [cost for _, cost, _, _ in self.rows]

    def delays(self) -> list[float]:
        return [delay for _, _, delay, _ in self.rows]


def batching_study(
    batch: RequestBatch,
    topology: Topology,
    catalog: VideoCatalog,
    *,
    slots: tuple[float, ...] = (
        0.0,
        5 * units.MINUTE,
        15 * units.MINUTE,
        30 * units.MINUTE,
        units.HOUR,
    ),
) -> BatchingStudy:
    """Sweep batching windows over one request batch.

    ``0.0`` in ``slots`` means "no batching" (the plain VOR schedule).
    """
    study = BatchingStudy()
    for slot in slots:
        if slot == 0.0:
            result = VideoScheduler(topology, catalog).solve(batch)
            delay = 0.0
        else:
            result, delay = batched_schedule(
                batch, topology, catalog, slot=slot
            )
        relays = sum(
            1
            for c in result.schedule.residencies
            if c.t_last == c.t_start and c.service_list
        )
        study.rows.append((slot, result.total_cost, delay, relays))
    return study
