"""Naive always-cache-locally baseline.

A plausible-but-uninformed policy: the first stream of a file into a
neighborhood opens a cache at the local storage, and every later request for
the same file in that neighborhood extends it -- regardless of whether the
extension is cheaper than a fresh warehouse stream.  Capacity is respected
the same way the rejective greedy does (a residency that does not fit in the
remaining space falls back to direct delivery), so the comparison against
the cost-driven scheduler isolates the value of *pricing* the decision.
"""

from __future__ import annotations

from repro.baselines.network_only import cheapest_home_route
from repro.core.costmodel import CostModel
from repro.core.rejective import fits_under
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.core.spacefunc import UsageTimeline, residency_profile
from repro.workload.requests import RequestBatch


def local_cache_schedule(batch: RequestBatch, cost_model: CostModel) -> Schedule:
    """Always-cache-at-local-IS schedule, capacity-aware, cost-blind.

    Warehouse streams come from the cheapest home warehouse of each
    video (replica-aware on multi-warehouse topologies)."""
    topo = cost_model.topology
    catalog = cost_model.catalog
    schedule = Schedule()
    # committed profiles per location, grown as residencies are placed
    committed: dict[str, list] = {s.name: [] for s in topo.storages}

    for video_id, requests in batch.by_video().items():
        video = catalog[video_id]
        fs = FileSchedule(video_id)
        open_cache: dict[str, ResidencyInfo] = {}  # location -> residency
        for req in requests:
            loc = req.local_storage
            cache = open_cache.get(loc)
            if cache is not None and cache.t_start <= req.start_time:
                extended = cache.extended(req.start_time, req.user_id)
                if _fits(extended, video, topo, committed, replacing=cache):
                    open_cache[loc] = extended
                    fs.add_delivery(
                        DeliveryInfo(video_id, (loc,), req.start_time, req)
                    )
                    continue
            # direct stream from the warehouse; open a cache if it fits later
            route = cheapest_home_route(cost_model, req)
            fs.add_delivery(
                DeliveryInfo(video_id, route.nodes, req.start_time, req)
            )
            if loc not in open_cache:
                open_cache[loc] = ResidencyInfo(
                    video_id, loc, route.nodes[0],
                    req.start_time, req.start_time, (),
                )
        for c in open_cache.values():
            if c.t_last > c.t_start:
                fs.add_residency(c)
                committed[c.location].append(c.profile(video))
        schedule.set_file(fs)
    return schedule


def _fits(
    candidate: ResidencyInfo,
    video,
    topo,
    committed: dict[str, list],
    *,
    replacing: ResidencyInfo | None,
) -> bool:
    profile = candidate.profile(video)
    capacity = topo.capacity(candidate.location)
    if profile.peak > capacity:
        return False
    others = UsageTimeline(committed[candidate.location])
    return fits_under(others, profile, capacity)
