"""The "network only system" baseline.

Figures 5 and 7 of the paper compare the distributed-caching scheduler
against an environment *without* intermediate storage: every request is an
independent stream from the video warehouse to the user's local storage.
Its cost is pure network cost and scales linearly in the network charging
rate, which is exactly the straight line the paper plots.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.schedule import DeliveryInfo, FileSchedule, Schedule
from repro.workload.requests import RequestBatch


def network_only_schedule(batch: RequestBatch, cost_model: CostModel) -> Schedule:
    """Direct-from-warehouse schedule: one VW stream per request, no caching."""
    router = cost_model.router
    vw = cost_model.topology.warehouse.name
    schedule = Schedule()
    for video_id, requests in batch.by_video().items():
        fs = FileSchedule(video_id)
        for req in requests:
            route = router.route(vw, req.local_storage)
            fs.add_delivery(
                DeliveryInfo(
                    video_id=video_id,
                    route=route.nodes,
                    start_time=req.start_time,
                    request=req,
                )
            )
        schedule.set_file(fs)
    return schedule


def network_only_cost(batch: RequestBatch, cost_model: CostModel) -> float:
    """Ψ of the network-only schedule (the paper's straight-line baseline)."""
    return cost_model.total(network_only_schedule(batch, cost_model))
