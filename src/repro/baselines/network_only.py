"""The "network only system" baseline.

Figures 5 and 7 of the paper compare the distributed-caching scheduler
against an environment *without* intermediate storage: every request is an
independent stream from the video warehouse to the user's local storage.
Its cost is pure network cost and scales linearly in the network charging
rate, which is exactly the straight line the paper plots.

On a replicated multi-warehouse topology each request streams from the
cheapest *home* warehouse of its video (all warehouses, without a
:class:`~repro.replication.ReplicaMap` on the cost model), so the baseline
stays well-defined beyond the paper's single-VW environment.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.schedule import DeliveryInfo, FileSchedule, Schedule
from repro.errors import RoutingError, ScheduleError
from repro.workload.requests import Request, RequestBatch


def cheapest_home_route(cost_model: CostModel, request: Request):
    """Cheapest-rate route from a home warehouse to the request's storage.

    Ties break on warehouse name so the pick is deterministic.  Raises
    :class:`~repro.errors.ScheduleError` when no home can reach the
    neighborhood.
    """
    router = cost_model.router
    replicas = cost_model.replicas
    names = [w.name for w in cost_model.topology.warehouses]
    if replicas is not None and request.video_id in replicas:
        homes = set(replicas.homes(request.video_id))
        names = [n for n in names if n in homes]
    best = None
    for name in sorted(names):
        try:
            route = router.route(name, request.local_storage)
        except RoutingError:
            continue
        if best is None or route.rate < best.rate:
            best = route
    if best is None:
        raise ScheduleError(
            f"no home warehouse can reach {request.local_storage!r} for "
            f"video {request.video_id!r}"
        )
    return best


def network_only_schedule(batch: RequestBatch, cost_model: CostModel) -> Schedule:
    """Direct-from-warehouse schedule: one VW stream per request, no caching."""
    schedule = Schedule()
    for video_id, requests in batch.by_video().items():
        fs = FileSchedule(video_id)
        for req in requests:
            route = cheapest_home_route(cost_model, req)
            fs.add_delivery(
                DeliveryInfo(
                    video_id=video_id,
                    route=route.nodes,
                    start_time=req.start_time,
                    request=req,
                )
            )
        schedule.set_file(fs)
    return schedule


def network_only_cost(batch: RequestBatch, cost_model: CostModel) -> float:
    """Ψ of the network-only schedule (the paper's straight-line baseline)."""
    return cost_model.total(network_only_schedule(batch, cost_model))
