"""Baseline schedulers for comparison with the paper's two-phase heuristic.

* :func:`~repro.baselines.network_only.network_only_schedule` -- the paper's
  "network only system" (Figs. 5, 7): no intermediate caching, every request
  streams directly from the warehouse.
* :func:`~repro.baselines.local_cache.local_cache_schedule` -- a naive policy
  that always caches at the requester's local storage, ignoring pricing
  (useful to show that *cost-driven* caching, not caching per se, is what
  wins).
* :class:`~repro.baselines.optimal.OptimalScheduler` -- exhaustive search
  over source assignments for tiny instances, used to measure the heuristic's
  optimality gap (Sec. 5.5's "within 30 % of optimal" claim).
"""

from repro.baselines.network_only import network_only_cost, network_only_schedule
from repro.baselines.local_cache import local_cache_schedule
from repro.baselines.optimal import OptimalScheduler
from repro.baselines.batching import (
    BatchingStudy,
    batched_schedule,
    batching_study,
    snap_to_slots,
)

__all__ = [
    "network_only_cost",
    "network_only_schedule",
    "local_cache_schedule",
    "OptimalScheduler",
    "BatchingStudy",
    "batched_schedule",
    "batching_study",
    "snap_to_slots",
]
