"""Exhaustive optimal scheduler for tiny instances.

``VSP`` is NP-complete (paper Sec. 2.3), but on toy instances we can
enumerate every schedule in the family the heuristics search over and obtain
a true optimum to measure the heuristic's gap against (Sec. 5.5 claims the
two-phase result is within ~30 % of optimal on average).

The schedule family: every request is served from some *copy* -- a home
warehouse of its video (every warehouse, without a replica map), or a cache
at an intermediate storage that some earlier stream passed through.  Streams travel on cheapest-rate routes and deposit caching
opportunities at every storage they traverse; a cache's residency starts at
the **latest deposit not later than its first service** (minimizing the
Eq. 2/3 space-time) and is extended by each further service taken from it.
This family strictly contains everything the greedy/rejective schedulers can
emit, so ``optimal <= heuristic`` always holds.

The search is depth-first over chronological requests with partial-cost
pruning (both network and storage costs are monotone as services are added),
plus an optional final capacity-feasibility filter.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass

from repro.core.costmodel import CostModel
from repro.core.overflow import detect_overflows
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.errors import RoutingError, ScheduleError
from repro.workload.requests import Request, RequestBatch


@dataclass
class _CacheState:
    """Mutable residency under construction at one (video, storage)."""

    t_start: float
    t_last: float
    services: tuple[str, ...]
    source: str


class OptimalScheduler:
    """Brute-force optimum over the copy-assignment schedule family.

    Args:
        cost_model: Pricing + topology + catalog.  A
            :class:`~repro.replication.ReplicaMap` on the model restricts
            each request's warehouse sources to its video's homes, so the
            optimum is computed over the same schedule family the
            replica-aware greedy searches.
        max_nodes: Upper bound on the enumeration size (the product over
            requests of ``#homes + #storages``); larger instances raise
            :class:`~repro.errors.ScheduleError` instead of hanging.
    """

    def __init__(self, cost_model: CostModel, *, max_nodes: int = 2_000_000):
        self._cm = cost_model
        self._router = cost_model.router
        self._topo = cost_model.topology
        self._warehouses = [w.name for w in self._topo.warehouses]
        if not self._warehouses:
            raise ScheduleError("topology has no warehouse to serve from")
        self._warehouse_set = frozenset(self._warehouses)
        self._replicas = cost_model.replicas
        self._storages = [s.name for s in self._topo.storages]
        self._max_nodes = max_nodes

    def _homes(self, video_id: str) -> list[str]:
        """Warehouse sources usable for a video (all, without a map)."""
        if self._replicas is None:
            return self._warehouses
        return [
            h
            for h in self._replicas.homes(video_id)
            if h in self._warehouse_set
        ]

    # -- public API ----------------------------------------------------------

    def solve(self, batch: RequestBatch, *, respect_capacity: bool = True) -> Schedule:
        """Globally optimal schedule over all requests (joint across files)."""
        requests = sorted(batch)
        self._check_size(requests)
        best = self._search(requests, respect_capacity)
        if best is None:
            raise ScheduleError("no feasible schedule found (capacity too small?)")
        return best

    def optimal_cost(self, batch: RequestBatch, *, respect_capacity: bool = True) -> float:
        """Ψ of the optimal schedule."""
        return self._cm.total(self.solve(batch, respect_capacity=respect_capacity))

    def optimal_file_schedule(self, video_id: str, requests: list[Request]) -> FileSchedule:
        """Capacity-ignorant optimum for a single file (Phase-1 comparison)."""
        if not requests:
            return FileSchedule(video_id)
        self._check_size(requests)
        batch = RequestBatch(requests)
        schedule = self._search(sorted(batch), respect_capacity=False)
        assert schedule is not None  # warehouse fallback always feasible
        return schedule.file(video_id)

    # -- search --------------------------------------------------------------

    def _check_size(self, requests: list[Request]) -> None:
        space = 1
        for req in requests:
            space *= len(self._homes(req.video_id)) + len(self._storages)
        if space > self._max_nodes:
            raise ScheduleError(
                f"search space {space} exceeds max_nodes={self._max_nodes}; "
                "the optimal baseline is for tiny instances only"
            )

    def _search(
        self, requests: list[Request], respect_capacity: bool
    ) -> Schedule | None:
        best_cost = math.inf
        best_schedule: Schedule | None = None
        catalog = self._cm.catalog
        # deposits[(video, storage)] = sorted stream times passing that node
        deposits: dict[tuple[str, str], list[float]] = {}
        caches: dict[tuple[str, str], _CacheState] = {}
        assignment: list[tuple[Request, tuple[str, ...]]] = []

        def storage_cost_now() -> float:
            return math.fsum(
                self._cm.residency_cost_for(v, loc, cs.t_start, cs.t_last)
                for (v, loc), cs in caches.items()
            )

        def recurse(idx: int, net_cost: float) -> None:
            nonlocal best_cost, best_schedule
            partial = net_cost + storage_cost_now()
            if partial >= best_cost:
                return
            if idx == len(requests):
                schedule = self._materialize(assignment, caches)
                if respect_capacity and detect_overflows(
                    schedule, catalog, self._topo
                ):
                    return
                total = self._cm.total(schedule)
                if total < best_cost:
                    best_cost = total
                    best_schedule = schedule
                return
            req = requests[idx]
            video = catalog[req.video_id]
            for source in self._homes(req.video_id) + self._storages:
                key = (req.video_id, source)
                undo_cache = None
                created = False
                if source in self._warehouse_set:
                    ext_cost = 0.0
                else:
                    cs = caches.get(key)
                    if cs is not None:
                        if cs.t_start > req.start_time:
                            continue
                        before = self._cm.residency_cost_for(
                            req.video_id, source, cs.t_start, cs.t_last
                        )
                        undo_cache = _CacheState(
                            cs.t_start, cs.t_last, cs.services, cs.source
                        )
                        cs.t_last = max(cs.t_last, req.start_time)
                        cs.services = cs.services + (req.user_id,)
                        after = self._cm.residency_cost_for(
                            req.video_id, source, cs.t_start, cs.t_last
                        )
                        ext_cost = after - before
                    else:
                        dep = deposits.get(key)
                        t0 = _latest_at_or_before(dep, req.start_time)
                        if t0 is None:
                            continue  # no stream has passed this storage yet
                        caches[key] = _CacheState(
                            t0, req.start_time, (req.user_id,), "?"
                        )
                        created = True
                        ext_cost = self._cm.residency_cost_for(
                            req.video_id, source, t0, req.start_time
                        )
                try:
                    route = self._router.route(source, req.local_storage)
                except RoutingError:
                    if created:
                        del caches[key]
                    elif undo_cache is not None:
                        caches[key] = undo_cache
                    continue  # this copy cannot reach the neighborhood
                step_net = video.network_volume * route.rate
                # record deposits along this stream's route
                new_deposits = []
                for node in route.nodes:
                    if node == source or not self._topo.node(node).is_storage:
                        continue
                    dkey = (req.video_id, node)
                    deposits.setdefault(dkey, [])
                    insort(deposits[dkey], req.start_time)
                    new_deposits.append(dkey)
                assignment.append((req, route.nodes))

                recurse(idx + 1, net_cost + step_net)

                assignment.pop()
                for dkey in new_deposits:
                    deposits[dkey].remove(req.start_time)
                if created:
                    del caches[key]
                elif undo_cache is not None:
                    caches[key] = undo_cache

        recurse(0, 0.0)
        return best_schedule

    def _materialize(
        self,
        assignment: list[tuple[Request, tuple[str, ...]]],
        caches: dict[tuple[str, str], _CacheState],
    ) -> Schedule:
        files: dict[str, FileSchedule] = {}
        for req, route in assignment:
            fs = files.setdefault(req.video_id, FileSchedule(req.video_id))
            fs.add_delivery(DeliveryInfo(req.video_id, route, req.start_time, req))
        for (video_id, loc), cs in caches.items():
            fs = files.setdefault(video_id, FileSchedule(video_id))
            homes = self._homes(video_id)
            source = homes[0] if homes else self._warehouses[0]
            fs.add_residency(
                ResidencyInfo(
                    video_id, loc, source, cs.t_start, cs.t_last, cs.services
                )
            )
        return Schedule(files.values())


def _latest_at_or_before(times: list[float] | None, t: float) -> float | None:
    """Latest element of a sorted list that is <= t, else None."""
    if not times:
        return None
    idx = bisect_right(times, t) - 1
    if idx < 0:
        return None
    return times[idx]
