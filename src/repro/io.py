"""JSON (de)serialization for environments and workloads.

Lets users define infrastructures and reservation books outside Python and
exchange them between runs:

* :func:`topology_to_dict` / :func:`topology_from_dict`
* :func:`catalog_to_dict` / :func:`catalog_from_dict`
* :func:`requests_to_dict` / :func:`requests_from_dict`
* :func:`save_environment` / :func:`load_environment` — one JSON file with
  all three sections.

The format is plain JSON with explicit units (bytes, seconds, $/byte,
$/(byte·s)) so files are self-describing; ``inf`` capacities/bandwidths are
encoded as the string ``"inf"``.
"""

from __future__ import annotations

import json
import math
import pathlib

from repro.catalog.catalog import VideoCatalog
from repro.catalog.video import VideoFile
from repro.errors import ConfigError
from repro.topology.graph import ChargingBasis, Topology
from repro.workload.requests import Request, RequestBatch

_FORMAT_VERSION = 1


def _num_out(x: float) -> float | str:
    return "inf" if math.isinf(x) else x


def _num_in(x) -> float:
    if x == "inf":
        return math.inf
    if not isinstance(x, (int, float)):
        raise ConfigError(f"expected a number or 'inf', got {x!r}")
    return float(x)


# -- topology -----------------------------------------------------------------


def topology_to_dict(topology: Topology) -> dict:
    return {
        "charging_basis": topology.charging_basis.value,
        "nodes": [
            {
                "name": n.name,
                "kind": n.kind.value,
                "srate": n.srate,
                "capacity": _num_out(n.capacity),
            }
            for n in topology.nodes
        ],
        "edges": [
            {
                "a": e.a,
                "b": e.b,
                "nrate": e.nrate,
                "bandwidth": _num_out(e.bandwidth),
            }
            for e in topology.edges
        ],
        "pair_rates": [
            {"a": a, "b": b, "nrate": rate}
            for (a, b), rate in sorted(topology._pair_rates.items())
        ],
    }


def topology_from_dict(data: dict) -> Topology:
    try:
        basis = ChargingBasis(data.get("charging_basis", "per_hop"))
        topo = Topology(charging_basis=basis)
        for n in data["nodes"]:
            if n["kind"] == "warehouse":
                topo.add_warehouse(n["name"])
            elif n["kind"] == "storage":
                topo.add_storage(
                    n["name"],
                    srate=float(n["srate"]),
                    capacity=_num_in(n["capacity"]),
                )
            else:
                raise ConfigError(f"unknown node kind {n['kind']!r}")
        for e in data["edges"]:
            topo.add_edge(
                e["a"],
                e["b"],
                nrate=float(e["nrate"]),
                bandwidth=_num_in(e.get("bandwidth", "inf")),
            )
        for p in data.get("pair_rates", []):
            topo.set_pair_rate(p["a"], p["b"], float(p["nrate"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed topology document: {exc}") from exc
    return topo


# -- catalog ------------------------------------------------------------------


def catalog_to_dict(catalog: VideoCatalog) -> dict:
    return {
        "videos": [
            {
                "video_id": v.video_id,
                "size": v.size,
                "playback": v.playback,
                "bandwidth": v.bandwidth,
            }
            for v in catalog
        ]
    }


def catalog_from_dict(data: dict) -> VideoCatalog:
    try:
        return VideoCatalog(
            VideoFile(
                v["video_id"],
                size=float(v["size"]),
                playback=float(v["playback"]),
                bandwidth=float(v.get("bandwidth", 0.0)),
            )
            for v in data["videos"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed catalog document: {exc}") from exc


# -- requests -----------------------------------------------------------------


def requests_to_dict(batch: RequestBatch) -> dict:
    return {
        "requests": [
            {
                "user_id": r.user_id,
                "video_id": r.video_id,
                "start_time": r.start_time,
                "local_storage": r.local_storage,
            }
            for r in batch
        ]
    }


def requests_from_dict(data: dict) -> RequestBatch:
    try:
        return RequestBatch(
            Request(
                float(r["start_time"]),
                r["video_id"],
                r["user_id"],
                r["local_storage"],
            )
            for r in data["requests"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed requests document: {exc}") from exc


# -- whole environments ---------------------------------------------------------


def save_environment(
    path,
    *,
    topology: Topology,
    catalog: VideoCatalog,
    batch: RequestBatch | None = None,
) -> None:
    """Write one JSON file with the topology, catalog and (optional) batch."""
    doc = {
        "format_version": _FORMAT_VERSION,
        "topology": topology_to_dict(topology),
        "catalog": catalog_to_dict(catalog),
    }
    if batch is not None:
        doc["requests"] = requests_to_dict(batch)
    pathlib.Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def load_environment(path) -> tuple[Topology, VideoCatalog, RequestBatch | None]:
    """Read an environment file written by :func:`save_environment`."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read environment file {path}: {exc}") from exc
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported environment format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    topology = topology_from_dict(doc["topology"])
    catalog = catalog_from_dict(doc["catalog"])
    batch = (
        requests_from_dict(doc["requests"]) if "requests" in doc else None
    )
    return topology, catalog, batch
