"""Experiment 2: effect of the storage charging rate (paper Figs. 7 & 8).

Fig. 7: total cost against the storage charging rate, next to the
network-only system's (storage-rate-independent) cost.  At low storage rates
the scheduler caches aggressively, so cost is sensitive to the rate; as
storage gets dearer, caching is abandoned and the curve saturates toward the
network-only asymptote.

Fig. 8: the same sweep under several network charging rates -- the effect of
the storage rate is "substantial only when the storage charging rate is
low", while the network rate shifts the whole curve up roughly linearly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.series import Series
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentRunner


def fig7(
    runner: ExperimentRunner,
    *,
    srates: Sequence[float] | None = None,
    nrate_per_gb: float | None = None,
    seeds: Sequence[int] | None = None,
) -> FigureResult:
    """Storage charging rate vs total cost, with the network-only asymptote."""
    cfg = runner.config
    srates = list(srates if srates is not None else cfg.srate_wide_axis)
    nrate = cfg.nrate_per_gb if nrate_per_gb is None else nrate_per_gb
    seeds = list(seeds if seeds is not None else (cfg.workload_seed,))
    fig = FigureResult(
        figure_id="fig7",
        title=(
            f"storage rate vs total cost (alpha={cfg.alpha}, "
            f"IS={cfg.capacity_gb} GB, nrate={nrate:g})"
        ),
        xlabel="storage charging rate ($/GB/hour)",
        ylabel="total service cost ($)",
    )
    ys = [
        runner.mean_total_cost(seeds, srate_per_gb_hour=s, nrate_per_gb=nrate)
        for s in srates
    ]
    fig.series.append(Series("with intermediate storage", tuple(srates), tuple(ys)))
    baseline = runner.mean_network_only(seeds, nrate_per_gb=nrate)
    fig.series.append(
        Series(
            "network only system",
            tuple(srates),
            tuple(baseline for _ in srates),
        )
    )
    fig.notes = (
        "Expected shape: the cached curve rises with the storage rate, "
        "flattens, and approaches the network-only system's constant cost "
        "from below (paper Sec. 5.3)."
    )
    return fig


def fig8(
    runner: ExperimentRunner,
    *,
    srates: Sequence[float] | None = None,
    nrates: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
) -> FigureResult:
    """Storage charging rate vs total cost under several network rates."""
    cfg = runner.config
    srates = list(srates if srates is not None else cfg.srate_wide_axis)
    nrates = list(nrates if nrates is not None else (300, 600, 1000))
    seeds = list(seeds if seeds is not None else (cfg.workload_seed,))
    fig = FigureResult(
        figure_id="fig8",
        title=(
            f"storage rate vs total cost per network rate "
            f"(alpha={cfg.alpha}, IS={cfg.capacity_gb} GB)"
        ),
        xlabel="storage charging rate ($/GB/hour)",
        ylabel="total service cost ($)",
    )
    for nrate in nrates:
        ys = [
            runner.mean_total_cost(seeds, srate_per_gb_hour=s, nrate_per_gb=nrate)
            for s in srates
        ]
        fig.series.append(Series(f"nrate={nrate:g}", tuple(srates), tuple(ys)))
    fig.notes = (
        "Expected shape: each curve rises then saturates in the storage "
        "rate; raising the network rate shifts curves up roughly "
        "proportionally because most of the cost is unavoidable network "
        "delivery (paper Sec. 5.3)."
    )
    return fig
