"""Common figure-result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ascii import ascii_chart
from repro.analysis.series import Series
from repro.analysis.tables import format_table


@dataclass
class FigureResult:
    """A reproduced paper figure: named series plus rendering helpers."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in {self.figure_id}")

    def as_table(self) -> str:
        """Tabulate all series over the union of x values."""
        xs = sorted({x for s in self.series for x in s.x})
        headers = [self.xlabel] + [s.name for s in self.series]
        rows = []
        for x in xs:
            row: list[object] = [x]
            for s in self.series:
                m = dict(zip(s.x, s.y))
                row.append(m[x] if x in m else "-")
            rows.append(row)
        return format_table(headers, rows, title=f"{self.figure_id}: {self.title}")

    def as_chart(self, *, width: int = 64, height: int = 16) -> str:
        return ascii_chart(
            self.series,
            width=width,
            height=height,
            title=f"{self.figure_id}: {self.title}  [{self.ylabel} vs {self.xlabel}]",
        )

    def render(self) -> str:
        parts = [self.as_table(), "", self.as_chart()]
        if self.notes:
            parts += ["", self.notes]
        return "\n".join(parts)
