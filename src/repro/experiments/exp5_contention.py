"""Extension experiment: overflow pressure vs. workload contention.

The paper reports a 12 %-average / 34 %-worst overflow-resolution penalty
without describing how contended its workloads were; our reproduction at
Table 4 parameters sees milder penalties because the stronger Phase-1 greedy
leaves less to repair (see EXPERIMENTS.md).  This sweep makes the
relationship explicit: scale the request density (users per neighborhood)
and measure overflow frequency, resolution effort, and the cost penalty.

Expected shape: all three grow with contention, recovering the regime where
the paper's double-digit penalties live.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.core.scheduler import VideoScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner


@dataclass
class ContentionPoint:
    users_per_neighborhood: int
    n_requests: int
    total_cost: float
    overflow_count: int
    resolution_iterations: int
    cost_increase_ratio: float


@dataclass
class ContentionSweep:
    points: list[ContentionPoint] = field(default_factory=list)

    def as_table(self) -> str:
        return format_table(
            [
                "users/nbhd",
                "requests",
                "total cost ($)",
                "overflows",
                "fixes",
                "penalty %",
            ],
            [
                [
                    p.users_per_neighborhood,
                    p.n_requests,
                    p.total_cost,
                    p.overflow_count,
                    p.resolution_iterations,
                    round(100 * p.cost_increase_ratio, 2),
                ]
                for p in self.points
            ],
            title="contention sweep: overflow pressure vs request density",
        )

    def penalties(self) -> list[float]:
        return [p.cost_increase_ratio for p in self.points]

    def iterations(self) -> list[int]:
        return [p.resolution_iterations for p in self.points]


def contention_sweep(
    base_config: ExperimentConfig,
    *,
    users_axis: Sequence[int] = (5, 10, 20, 40),
) -> ContentionSweep:
    """Run the default grid point at increasing request densities."""
    sweep = ContentionSweep()
    for users in users_axis:
        cfg = base_config.but(users_per_neighborhood=users)
        runner = ExperimentRunner(cfg)
        topo = runner.topology()
        batch = runner.batch()
        result = VideoScheduler(
            topo, runner.catalog, heat_metric=cfg.heat_metric
        ).solve(batch)
        sweep.points.append(
            ContentionPoint(
                users_per_neighborhood=users,
                n_requests=len(batch),
                total_cost=result.total_cost,
                overflow_count=result.resolution.initial_overflows,
                resolution_iterations=result.resolution.iterations,
                cost_increase_ratio=result.overflow_cost_ratio,
            )
        )
    return sweep
