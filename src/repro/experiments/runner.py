"""Experiment runner: builds environments and executes scheduling runs.

One :class:`ExperimentRunner` owns a catalog (fixed per configuration) and
memoises request batches per ``(alpha, arrivals, seed)`` -- the workload does
not depend on charging rates or capacities, so a sweep over rates reuses the
same batch, exactly as the paper varies one attribute at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.network_only import network_only_cost
from repro.catalog.catalog import VideoCatalog, paper_catalog
from repro.core.costmodel import CostModel
from repro.core.heat import HeatMetric
from repro.core.scheduler import ScheduleResult, VideoScheduler
from repro.experiments.config import ExperimentConfig
from repro.topology.generators import paper_topology
from repro.topology.graph import Topology
from repro.workload.arrival import (
    ArrivalProcess,
    PeakHourArrivals,
    SlottedArrivals,
    UniformArrivals,
)
from repro.workload.generators import WorkloadGenerator
from repro.workload.requests import RequestBatch
from repro import units


@dataclass(frozen=True)
class RunRecord:
    """One scheduling run: the grid point plus every reported quantity."""

    nrate_per_gb: float
    srate_per_gb_hour: float
    capacity_gb: float
    alpha: float
    heat_metric: HeatMetric
    seed: int
    n_requests: int
    total_cost: float
    storage_cost: float
    network_cost: float
    phase1_cost: float
    overflow_count: int
    resolution_iterations: int
    cost_increase_ratio: float

    @property
    def had_overflow(self) -> bool:
        return self.overflow_count > 0


class ExperimentRunner:
    """Executes scheduling runs over the Table 4 environment."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._catalog: VideoCatalog = paper_catalog(
            config.n_files,
            mean_size=config.mean_file_size,
            seed=config.catalog_seed,
        )
        self._batches: dict[tuple[float, str, int], RequestBatch] = {}

    @property
    def catalog(self) -> VideoCatalog:
        return self._catalog

    # -- environment construction -------------------------------------------

    def topology(
        self,
        *,
        nrate_per_gb: float | None = None,
        srate_per_gb_hour: float | None = None,
        capacity_gb: float | None = None,
    ) -> Topology:
        cfg = self.config
        return paper_topology(
            nrate=units.per_gb(
                cfg.nrate_per_gb if nrate_per_gb is None else nrate_per_gb
            ),
            srate=units.per_gb_hour(
                cfg.srate_per_gb_hour
                if srate_per_gb_hour is None
                else srate_per_gb_hour
            ),
            capacity=units.gb(
                cfg.capacity_gb if capacity_gb is None else capacity_gb
            ),
        )

    def _arrivals(self) -> ArrivalProcess:
        kind = self.config.arrivals
        if kind == "uniform":
            return UniformArrivals()
        if kind == "peak":
            return PeakHourArrivals()
        return SlottedArrivals()

    def batch(self, *, alpha: float | None = None, seed: int | None = None) -> RequestBatch:
        """The request batch for a workload setting (memoised)."""
        cfg = self.config
        a = cfg.alpha if alpha is None else alpha
        s = cfg.workload_seed if seed is None else seed
        key = (a, cfg.arrivals, s)
        cached = self._batches.get(key)
        if cached is not None:
            return cached
        topo = self.topology()  # rates are irrelevant to workload structure
        gen = WorkloadGenerator(
            topo,
            self._catalog,
            alpha=a,
            users_per_neighborhood=cfg.users_per_neighborhood,
            arrivals=self._arrivals(),
        )
        batch = gen.generate(seed=s)
        self._batches[key] = batch
        return batch

    # -- runs ------------------------------------------------------------------

    def run(
        self,
        *,
        nrate_per_gb: float | None = None,
        srate_per_gb_hour: float | None = None,
        capacity_gb: float | None = None,
        alpha: float | None = None,
        heat_metric: HeatMetric | None = None,
        seed: int | None = None,
    ) -> RunRecord:
        """One full two-phase scheduling run at a grid point."""
        cfg = self.config
        topo = self.topology(
            nrate_per_gb=nrate_per_gb,
            srate_per_gb_hour=srate_per_gb_hour,
            capacity_gb=capacity_gb,
        )
        batch = self.batch(alpha=alpha, seed=seed)
        metric = cfg.heat_metric if heat_metric is None else heat_metric
        scheduler = VideoScheduler(topo, self._catalog, heat_metric=metric)
        result = scheduler.solve(batch)
        return self._record(
            result,
            nrate_per_gb=cfg.nrate_per_gb if nrate_per_gb is None else nrate_per_gb,
            srate_per_gb_hour=(
                cfg.srate_per_gb_hour
                if srate_per_gb_hour is None
                else srate_per_gb_hour
            ),
            capacity_gb=cfg.capacity_gb if capacity_gb is None else capacity_gb,
            alpha=cfg.alpha if alpha is None else alpha,
            metric=metric,
            seed=cfg.workload_seed if seed is None else seed,
            n_requests=len(batch),
        )

    def mean_total_cost(self, seeds, **params) -> float:
        """Average ``run(...).total_cost`` over several workload seeds.

        The paper reports single-seed curves; averaging smooths the quick
        configurations without changing any shape.
        """
        if not seeds:
            raise ValueError("seeds must be non-empty")
        return sum(self.run(seed=s, **params).total_cost for s in seeds) / len(
            seeds
        )

    def network_only(
        self,
        *,
        nrate_per_gb: float | None = None,
        alpha: float | None = None,
        seed: int | None = None,
    ) -> float:
        """Total cost of the no-intermediate-storage baseline."""
        topo = self.topology(nrate_per_gb=nrate_per_gb)
        batch = self.batch(alpha=alpha, seed=seed)
        cm = CostModel(topo, self._catalog)
        return network_only_cost(batch, cm)

    def mean_network_only(self, seeds, **params) -> float:
        """Average network-only baseline cost over several seeds."""
        if not seeds:
            raise ValueError("seeds must be non-empty")
        return sum(self.network_only(seed=s, **params) for s in seeds) / len(
            seeds
        )

    @staticmethod
    def _record(
        result: ScheduleResult,
        *,
        nrate_per_gb: float,
        srate_per_gb_hour: float,
        capacity_gb: float,
        alpha: float,
        metric: HeatMetric,
        seed: int,
        n_requests: int,
    ) -> RunRecord:
        return RunRecord(
            nrate_per_gb=nrate_per_gb,
            srate_per_gb_hour=srate_per_gb_hour,
            capacity_gb=capacity_gb,
            alpha=alpha,
            heat_metric=metric,
            seed=seed,
            n_requests=n_requests,
            total_cost=result.total_cost,
            storage_cost=result.cost.storage,
            network_cost=result.cost.network,
            phase1_cost=result.phase1_cost.total,
            overflow_count=result.resolution.initial_overflows,
            resolution_iterations=result.resolution.iterations,
            cost_increase_ratio=result.overflow_cost_ratio,
        )
