"""Experiment 3: effect of the data access pattern (paper Fig. 9).

Total cost against the Zipf skew parameter alpha for several intermediate
storage sizes.  Expected shapes (Sec. 5.4): cost increases as the access
pattern becomes less biased (larger alpha); smaller storages cost more; and
the advantage of a larger storage is most pronounced for skewed patterns
(the vertical gaps between size-curves widen as alpha decreases).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.series import Series
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentRunner


def fig9(
    runner: ExperimentRunner,
    *,
    alphas: Sequence[float] | None = None,
    capacities: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
) -> FigureResult:
    """Total cost vs Zipf alpha for several intermediate storage sizes."""
    cfg = runner.config
    alphas = sorted(alphas if alphas is not None else cfg.alpha_axis)
    capacities = list(capacities if capacities is not None else cfg.capacity_axis)
    seeds = list(seeds if seeds is not None else (cfg.workload_seed,))
    fig = FigureResult(
        figure_id="fig9",
        title=(
            f"access skew vs total cost per storage size "
            f"(srate={cfg.srate_per_gb_hour:g}, nrate={cfg.nrate_per_gb:g})"
        ),
        xlabel="zipf alpha (larger = less biased)",
        ylabel="total service cost ($)",
    )
    for cap in capacities:
        ys = [
            runner.mean_total_cost(seeds, alpha=a, capacity_gb=cap)
            for a in alphas
        ]
        fig.series.append(
            Series(f"IS size={cap:g} GB", tuple(alphas), tuple(ys))
        )
    fig.notes = (
        "Expected shape: every curve increases with alpha; smaller storage "
        "sizes sit above larger ones; the gap between sizes narrows as the "
        "access pattern flattens (paper Sec. 5.4)."
    )
    return fig
