"""The Sec. 3.2 / Fig. 2 worked example, reproduced end to end.

Three users request the same 90-minute, 2.5 GB, 6 Mbps movie: U1 at 1:00 pm
in IS1's neighborhood, U2 at 2:30 pm and U3 at 4:00 pm in IS2's.  The paper
hand-computes two schedules: Ψ(S1) = $259.20 (all direct from the warehouse)
and Ψ(S2) = $138.975 (IS1 caches; U2/U3 served from the copy).

``worked_example()`` evaluates both paper schedules under our cost model and
additionally runs the greedy scheduler, which finds an even cheaper schedule
($108.45) by also caching at IS2 -- a nice illustration that the paper's
enumeration of two candidate schedules was not exhaustive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.costmodel import CostModel
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.core.scheduler import VideoScheduler
from repro.catalog.catalog import VideoCatalog
from repro.catalog.video import VideoFile
from repro.topology.generators import worked_example_topology
from repro.workload.requests import Request, RequestBatch
from repro import units

ONE_PM = 13 * units.HOUR
TWO_THIRTY_PM = 14.5 * units.HOUR
FOUR_PM = 16 * units.HOUR


@dataclass(frozen=True)
class WorkedExampleResult:
    """Costs of the paper's hand schedules and our scheduler's output."""

    psi_s1: float
    psi_s2: float
    psi_greedy: float

    #: The values printed in the paper.
    PAPER_S1: float = 259.2
    PAPER_S2: float = 138.975

    def as_table(self) -> str:
        return format_table(
            ["schedule", "paper ($)", "measured ($)"],
            [
                ["S1: all direct from VW", self.PAPER_S1, round(self.psi_s1, 3)],
                ["S2: cache at IS1", self.PAPER_S2, round(self.psi_s2, 3)],
                ["two-phase scheduler", "-", round(self.psi_greedy, 3)],
            ],
            title="Fig. 2 worked example",
            float_fmt="{:,.3f}",
        )


def _environment() -> tuple[CostModel, VideoCatalog, RequestBatch]:
    topo = worked_example_topology()
    video = VideoFile(
        "movie",
        size=units.gb(2.5),
        playback=units.minutes(90),
        bandwidth=units.mbps(6),
    )
    catalog = VideoCatalog([video])
    batch = RequestBatch(
        [
            Request(ONE_PM, "movie", "U1", "IS1"),
            Request(TWO_THIRTY_PM, "movie", "U2", "IS2"),
            Request(FOUR_PM, "movie", "U3", "IS2"),
        ]
    )
    return CostModel(topo, catalog), catalog, batch


def paper_schedule_s1() -> Schedule:
    """S1: the three requests streamed directly from the warehouse."""
    fs = FileSchedule("movie")
    fs.add_delivery(
        DeliveryInfo("movie", ("VW", "IS1"), ONE_PM, Request(ONE_PM, "movie", "U1", "IS1"))
    )
    for t, u in ((TWO_THIRTY_PM, "U2"), (FOUR_PM, "U3")):
        fs.add_delivery(
            DeliveryInfo("movie", ("VW", "IS1", "IS2"), t, Request(t, "movie", u, "IS2"))
        )
    return Schedule([fs])


def paper_schedule_s2() -> Schedule:
    """S2: U1 direct; IS1 caches the stream; U2/U3 served from IS1."""
    fs = FileSchedule("movie")
    fs.add_delivery(
        DeliveryInfo("movie", ("VW", "IS1"), ONE_PM, Request(ONE_PM, "movie", "U1", "IS1"))
    )
    for t, u in ((TWO_THIRTY_PM, "U2"), (FOUR_PM, "U3")):
        fs.add_delivery(
            DeliveryInfo("movie", ("IS1", "IS2"), t, Request(t, "movie", u, "IS2"))
        )
    fs.add_residency(
        ResidencyInfo("movie", "IS1", "VW", ONE_PM, FOUR_PM, ("U2", "U3"))
    )
    return Schedule([fs])


def worked_example() -> WorkedExampleResult:
    """Evaluate the paper's S1/S2 and our scheduler on the Fig. 2 scenario."""
    cm, catalog, batch = _environment()
    result = VideoScheduler(cm.topology, catalog).solve(batch)
    return WorkedExampleResult(
        psi_s1=cm.total(paper_schedule_s1()),
        psi_s2=cm.total(paper_schedule_s2()),
        psi_greedy=result.total_cost,
    )
