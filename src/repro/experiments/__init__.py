"""Experiment harness reproducing the paper's evaluation (Sec. 5).

One module per paper experiment:

* :mod:`~repro.experiments.exp1_network_rate`   -- Figs. 5 & 6
* :mod:`~repro.experiments.exp2_storage_rate`   -- Figs. 7 & 8
* :mod:`~repro.experiments.exp3_access_pattern` -- Fig. 9
* :mod:`~repro.experiments.exp4_heat_metrics`   -- Table 5 + Sec. 5.5 stats
* :mod:`~repro.experiments.worked_example`      -- Fig. 2 / Sec. 3.2 numbers
* :mod:`~repro.experiments.ablations`           -- design-choice ablations

All of them run against an :class:`~repro.experiments.runner.ExperimentRunner`
built from a :class:`~repro.experiments.config.ExperimentConfig` (Table 4
parameters by default; ``quick_config()`` for a scaled-down CI variant).
"""

from repro.experiments.config import ExperimentConfig, paper_config, quick_config
from repro.experiments.runner import ExperimentRunner, RunRecord
from repro.experiments.figures import FigureResult
from repro.experiments.exp1_network_rate import fig5, fig6
from repro.experiments.exp2_storage_rate import fig7, fig8
from repro.experiments.exp3_access_pattern import fig9
from repro.experiments.exp4_heat_metrics import (
    HeatComparison,
    optimality_gap,
    table5,
)
from repro.experiments.exp5_contention import ContentionSweep, contention_sweep
from repro.experiments.worked_example import worked_example
from repro.experiments.ablations import (
    ablation_deposit_scope,
    ablation_heat_metrics,
    ablation_bandwidth,
)

__all__ = [
    "ExperimentConfig",
    "paper_config",
    "quick_config",
    "ExperimentRunner",
    "RunRecord",
    "FigureResult",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "HeatComparison",
    "optimality_gap",
    "table5",
    "ContentionSweep",
    "contention_sweep",
    "worked_example",
    "ablation_deposit_scope",
    "ablation_heat_metrics",
    "ablation_bandwidth",
]
