"""Ablation studies over the reproduction's design choices.

DESIGN.md calls out three choices worth quantifying:

* **route-wide vs destination-only cache deposits** -- our greedy lets a
  stream open candidates at *every* storage it traverses; the weaker variant
  (destination only) is what a naive reading of the paper might implement;
* **heat metrics** -- head-to-head final costs of the four Eq. 8-11 metrics
  at a contended grid point (complementing Table 5's win rates);
* **bandwidth extension** -- admission/diversion behaviour as links tighten
  (the paper's future work; no baseline to compare against, so we sweep
  capacity and report rejection/diversion/cost).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.core.costmodel import CostModel
from repro.core.heat import HeatMetric
from repro.core.individual import IndividualScheduler
from repro.core.sorp import resolve_overflows
from repro.experiments.runner import ExperimentRunner
from repro.extensions.bandwidth import BandwidthAwareScheduler
from repro.topology.generators import paper_topology
from repro.topology.graph import Topology
from repro import units


@dataclass
class AblationRow:
    variant: str
    total_cost: float
    extra: dict = field(default_factory=dict)


@dataclass
class AblationResult:
    name: str
    rows: list[AblationRow] = field(default_factory=list)

    def cost_of(self, variant: str) -> float:
        for r in self.rows:
            if r.variant == variant:
                return r.total_cost
        raise KeyError(variant)

    def as_table(self) -> str:
        extras = sorted({k for r in self.rows for k in r.extra})
        headers = ["variant", "total cost ($)"] + extras
        body = [
            [r.variant, r.total_cost] + [r.extra.get(k, "") for k in extras]
            for r in self.rows
        ]
        return format_table(headers, body, title=f"ablation: {self.name}")


def ablation_deposit_scope(runner: ExperimentRunner) -> AblationResult:
    """Route-wide vs destination-only cache candidate deposits (Phase 1)."""
    cfg = runner.config
    topo = runner.topology()
    batch = runner.batch()
    cm = CostModel(topo, runner.catalog)
    out = AblationResult("cache-deposit scope (phase-1 cost)")
    for scope in ("route", "destination"):
        greedy = IndividualScheduler(cm, deposit_scope=scope)
        schedule = greedy.solve(batch)
        resolved, stats = resolve_overflows(
            schedule, batch, cm, metric=cfg.heat_metric
        )
        out.rows.append(
            AblationRow(
                scope,
                cm.total(resolved.pruned()),
                extra={
                    "phase1 ($)": round(stats.phase1_cost, 2),
                    "overflow iters": stats.iterations,
                },
            )
        )
    return out


def ablation_heat_metrics(runner: ExperimentRunner) -> AblationResult:
    """Final cost per heat metric at a deliberately contended grid point."""
    out = AblationResult("heat metric (final cost at tight capacity)")
    for metric in HeatMetric:
        rec = runner.run(capacity_gb=5.0, srate_per_gb_hour=3.0, heat_metric=metric)
        out.rows.append(
            AblationRow(
                f"method {metric.value} ({metric.name.lower()})",
                rec.total_cost,
                extra={
                    "resolution iters": rec.resolution_iterations,
                    "increase %": round(100 * rec.cost_increase_ratio, 3),
                },
            )
        )
    return out


def ablation_bandwidth(
    runner: ExperimentRunner,
    *,
    link_capacities_mbps: Sequence[float] = (6, 12, 24, 48, 96),
) -> AblationResult:
    """Admission behaviour of the bandwidth extension as links tighten."""
    cfg = runner.config
    batch = runner.batch()
    out = AblationResult("bandwidth extension (per-link capacity sweep)")
    for cap_mbps in link_capacities_mbps:
        topo = paper_topology(
            nrate=cfg.nrate,
            srate=cfg.srate,
            capacity=cfg.capacity,
        )
        limited = Topology()
        limited.add_warehouse(topo.warehouse.name)
        for s in topo.storages:
            limited.add_storage(s.name, srate=s.srate, capacity=s.capacity)
        for e in topo.edges:
            limited.add_edge(
                e.a, e.b, nrate=e.nrate, bandwidth=units.mbps(cap_mbps)
            )
        result = BandwidthAwareScheduler(limited, runner.catalog).solve(batch)
        out.rows.append(
            AblationRow(
                f"{cap_mbps:g} Mbps/link",
                result.total_cost,
                extra={
                    "admitted": result.admitted,
                    "rejected": len(result.rejected),
                    "diverted": result.diverted_streams,
                },
            )
        )
    return out
