"""Experiment 4: heat metrics and rescheduling cost (paper Table 5, Sec. 5.5).

For every combination of network rate, storage rate, storage size and access
pattern, run the full two-phase scheduler once per heat metric and compare
the final costs.  The paper reports, over 785 combinations of which 622
incurred overflow-resolution cost:

* method 2 (``chi/overhead``) best in 63 % of the cost-incurring cases,
* method 4 (``dS/overhead``)  best in 70 %,
* method 2 or 4 best in 98 %,
* resolution cost increase: 12 % average, 34 % worst case,
* end-to-end result empirically within ~30 % of optimal.

``table5`` reproduces the win-rate table; ``optimality_gap`` reproduces the
optimal-bound measurement on exhaustively solvable instances.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import format_table
from repro.baselines.optimal import OptimalScheduler
from repro.catalog.catalog import VideoCatalog, uniform_catalog
from repro.core.costmodel import CostModel
from repro.core.heat import HeatMetric
from repro.core.scheduler import VideoScheduler
from repro.experiments.runner import ExperimentRunner
from repro.topology.generators import chain_topology
from repro.workload.generators import WorkloadGenerator
from repro import units

#: Cost-equality tolerance when deciding which metric "won" a case.
_TIE_TOL = 1e-7


@dataclass
class HeatComparison:
    """Aggregated Table 5 results."""

    total_cases: int = 0
    cases_with_cost: int = 0
    wins: dict[HeatMetric, int] = field(
        default_factory=lambda: {m: 0 for m in HeatMetric}
    )
    wins_2_or_4: int = 0
    increase_ratios: list[float] = field(default_factory=list)

    def win_rate(self, metric: HeatMetric) -> float:
        if self.cases_with_cost == 0:
            return 0.0
        return self.wins[metric] / self.cases_with_cost

    @property
    def rate_2_or_4(self) -> float:
        if self.cases_with_cost == 0:
            return 0.0
        return self.wins_2_or_4 / self.cases_with_cost

    @property
    def increase_summary(self) -> Summary:
        return summarize(self.increase_ratios or [0.0])

    def as_table(self) -> str:
        rows: list[list[object]] = [
            ["Total number of cases", self.total_cases, ""],
            ["Cases with overflow-resolution cost", self.cases_with_cost, ""],
        ]
        for m in HeatMetric:
            rows.append(
                [
                    f"Method {m.value} best (Eq. {7 + m.value})",
                    self.wins[m],
                    f"{100 * self.win_rate(m):.0f} %",
                ]
            )
        rows.append(
            ["Method 2 or Method 4 best", self.wins_2_or_4, f"{100 * self.rate_2_or_4:.0f} %"]
        )
        s = self.increase_summary
        rows.append(
            [
                "Resolution cost increase (avg / max)",
                "",
                f"{100 * s.mean:.1f} % / {100 * s.maximum:.1f} %",
            ]
        )
        return format_table(
            ["quantity", "count", "share"],
            rows,
            title="Table 5: performance of each heat metric",
        )


def table5(
    runner: ExperimentRunner,
    *,
    nrates: Sequence[float] | None = None,
    srates: Sequence[float] | None = None,
    capacities: Sequence[float] | None = None,
    alphas: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
) -> HeatComparison:
    """Sweep the Table 4 grid and score the four heat metrics.

    A grid point is a *case*; only cases where overflow resolution changed
    the cost participate in the win-rate statistics (like the paper's
    622-of-785).  Every metric achieving the minimum final cost at a case is
    credited (ties count for all winners, which is how "method 2 or 4 wins
    98 %" can coexist with 63 % + 70 %).
    """
    cfg = runner.config
    nrates = list(nrates if nrates is not None else cfg.nrate_axis)
    srates = list(srates if srates is not None else cfg.srate_axis)
    capacities = list(capacities if capacities is not None else cfg.capacity_axis)
    alphas = list(alphas if alphas is not None else cfg.alpha_axis)
    seeds = list(seeds if seeds is not None else (cfg.workload_seed,))

    comparison = HeatComparison()
    for nrate, srate, cap, alpha, seed in itertools.product(
        nrates, srates, capacities, alphas, seeds
    ):
        comparison.total_cases += 1
        results: dict[HeatMetric, float] = {}
        any_increase = False
        for metric in HeatMetric:
            rec = runner.run(
                nrate_per_gb=nrate,
                srate_per_gb_hour=srate,
                capacity_gb=cap,
                alpha=alpha,
                heat_metric=metric,
                seed=seed,
            )
            results[metric] = rec.total_cost
            if rec.cost_increase_ratio > 1e-12:
                any_increase = True
                if metric is HeatMetric.SPACE_TIME_PER_COST:
                    comparison.increase_ratios.append(rec.cost_increase_ratio)
        if not any_increase:
            continue
        comparison.cases_with_cost += 1
        best = min(results.values())
        winners = {
            m for m, v in results.items() if v <= best * (1 + _TIE_TOL) + _TIE_TOL
        }
        for m in winners:
            comparison.wins[m] += 1
        if HeatMetric.TIME_PER_COST in winners or (
            HeatMetric.SPACE_TIME_PER_COST in winners
        ):
            comparison.wins_2_or_4 += 1
    return comparison


@dataclass
class GapResult:
    """Optimality-gap measurement over exhaustively solvable instances."""

    gaps: list[float] = field(default_factory=list)

    @property
    def summary(self) -> Summary:
        return summarize(self.gaps or [0.0])

    def as_table(self) -> str:
        s = self.summary
        return format_table(
            ["quantity", "value"],
            [
                ["instances", s.n],
                ["mean gap vs optimal", f"{100 * s.mean:.1f} %"],
                ["median gap", f"{100 * s.median:.1f} %"],
                ["max gap", f"{100 * s.maximum:.1f} %"],
            ],
            title="Sec. 5.5: two-phase heuristic vs exhaustive optimum",
        )


def optimality_gap(
    *,
    n_instances: int = 20,
    n_storages: int = 2,
    n_requests: int = 6,
    seed: int = 0,
) -> GapResult:
    """Measure ``(heuristic - optimal) / optimal`` on tiny random instances.

    Instances use a chain topology (where caching decisions matter most) with
    capacities tight enough that roughly half the instances hit overflow.
    The paper claims the heuristic lands within ~30 % of optimal on average;
    this measurement checks that bound directly on solvable sizes.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    result = GapResult()
    for _ in range(n_instances):
        srate = float(rng.uniform(0.5, 4.0)) * 1e-3
        nrate = float(rng.uniform(0.5, 3.0))
        capacity = float(rng.uniform(110.0, 260.0))
        topo = chain_topology(
            n_storages, nrate=nrate, srate=srate, capacity=capacity
        )
        n_videos = int(rng.integers(1, 3))
        catalog: VideoCatalog = uniform_catalog(
            n_videos, size=100.0, playback=10.0, prefix="m"
        )
        gen = WorkloadGenerator(
            topo, catalog, alpha=0.5, users_per_neighborhood=max(1, n_requests // n_storages)
        )
        batch = gen.generate(seed=int(rng.integers(0, 2**31)))
        cm = CostModel(topo, catalog)
        heur = VideoScheduler(topo, catalog).solve(batch).total_cost
        opt = OptimalScheduler(cm, max_nodes=5_000_000).optimal_cost(batch)
        if opt <= 0:
            continue
        result.gaps.append((heur - opt) / opt)
    return result
