"""Experiment configuration (paper Table 4).

The paper's parameter values, quoted in its "arbitrary charging system":

=============================  =======================================
Number of files                500
Average video file size        3.3 GB
Storage charging rate          3, 4, 5, 6, 7, 8   (per GB*sec in the
                               paper's table; we interpret the unit as
                               $/(GB*hour), which reproduces the paper's
                               cost magnitudes -- see DESIGN.md)
Intermediate storage size      5, 8, 11, 14 GB
Network charging rate          300 .. 1000 ($/GB)
Access pattern (Zipf alpha)    0.1, 0.271, 0.5, 0.7
Users per neighborhood         10
Topology                       20 nodes: 1 VW + 19 IS (Fig. 4)
=============================  =======================================

``paper_config()`` returns exactly this; ``quick_config()`` a scaled-down
variant (fewer files/users) for fast tests with the same qualitative
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.heat import HeatMetric
from repro.errors import ConfigError
from repro import units


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to instantiate one experimental environment."""

    # catalog
    n_files: int = 500
    mean_file_size: float = 3.3 * units.GB
    catalog_seed: int = 1

    # workload
    users_per_neighborhood: int = 10
    alpha: float = 0.271
    arrivals: str = "uniform"  # "uniform" | "peak" | "slotted"
    workload_seed: int = 1

    # environment defaults (single-run values; sweeps override per axis)
    nrate_per_gb: float = 500.0
    srate_per_gb_hour: float = 5.0
    capacity_gb: float = 5.0

    # scheduler
    heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST

    # sweep axes (Table 4)
    nrate_axis: tuple[float, ...] = (300, 400, 500, 600, 700, 800, 900, 1000)
    srate_axis: tuple[float, ...] = (3, 4, 5, 6, 7, 8)
    capacity_axis: tuple[float, ...] = (5, 8, 11, 14)
    alpha_axis: tuple[float, ...] = (0.1, 0.271, 0.5, 0.7)

    # storage-rate saturation sweep (Figs. 7-8 span a wider range)
    srate_wide_axis: tuple[float, ...] = (0, 25, 50, 100, 200, 400, 600)

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ConfigError(f"n_files must be >= 1, got {self.n_files}")
        if self.users_per_neighborhood < 1:
            raise ConfigError(
                "users_per_neighborhood must be >= 1, got "
                f"{self.users_per_neighborhood}"
            )
        if not (0.0 <= self.alpha <= 1.0):
            raise ConfigError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.arrivals not in ("uniform", "peak", "slotted"):
            raise ConfigError(f"unknown arrivals kind {self.arrivals!r}")

    def but(self, **kwargs) -> "ExperimentConfig":
        """Copy with fields replaced (sweeps use this per grid point)."""
        return replace(self, **kwargs)

    # -- unit conversions -------------------------------------------------

    @property
    def nrate(self) -> float:
        """Default network rate in $/byte."""
        return units.per_gb(self.nrate_per_gb)

    @property
    def srate(self) -> float:
        """Default storage rate in $/(byte*s)."""
        return units.per_gb_hour(self.srate_per_gb_hour)

    @property
    def capacity(self) -> float:
        """Default storage capacity in bytes."""
        return units.gb(self.capacity_gb)


def paper_config(**overrides) -> ExperimentConfig:
    """The exact Table 4 setup (keyword overrides applied on top)."""
    return ExperimentConfig(**overrides)


def quick_config(**overrides) -> ExperimentConfig:
    """Scaled-down configuration for fast tests.

    60 files, 4 users per neighborhood, shorter sweep axes; same topology
    and rate regimes, so every qualitative result shape is preserved.
    """
    defaults = dict(
        n_files=60,
        users_per_neighborhood=4,
        nrate_axis=(300, 500, 700, 1000),
        srate_axis=(3, 5, 8),
        capacity_axis=(5, 8, 11),
        alpha_axis=(0.1, 0.271, 0.5, 0.7),
        srate_wide_axis=(0, 50, 150, 400, 600),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
