"""Experiment 1: effect of the network charging rate (paper Figs. 5 & 6).

Fig. 5 plots total service cost against the network charging rate for
several storage charging rates, together with the cost of the environment
*without* intermediate storage.  The paper's findings, which the series
reproduce:

* total cost grows (essentially linearly) with the network rate;
* the no-cache line grows faster, so the advantage of intermediate storage
  becomes more significant as the network rate increases;
* cheaper storage shifts the cached curves down.

Fig. 6 repeats the sweep across Zipf skews: less biased access patterns
(larger alpha) yield more expensive schedules because fewer requests share a
cached copy.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.series import Series
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentRunner


def fig5(
    runner: ExperimentRunner,
    *,
    srates: Sequence[float] | None = None,
    nrates: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
) -> FigureResult:
    """Total cost vs network charging rate under different storage rates.

    ``seeds`` averages each point over several workloads (default: the
    configuration's single seed, like the paper).
    """
    cfg = runner.config
    srates = list(srates if srates is not None else cfg.srate_axis)
    nrates = list(nrates if nrates is not None else cfg.nrate_axis)
    seeds = list(seeds if seeds is not None else (cfg.workload_seed,))
    fig = FigureResult(
        figure_id="fig5",
        title=(
            f"network rate vs total cost (alpha={cfg.alpha}, "
            f"IS={cfg.capacity_gb} GB)"
        ),
        xlabel="network charging rate ($/GB)",
        ylabel="total service cost ($)",
    )
    for srate in srates:
        ys = [
            runner.mean_total_cost(seeds, nrate_per_gb=n, srate_per_gb_hour=srate)
            for n in nrates
        ]
        fig.series.append(
            Series(f"srate={srate:g}", tuple(nrates), tuple(ys))
        )
    baseline = [runner.mean_network_only(seeds, nrate_per_gb=n) for n in nrates]
    fig.series.append(
        Series("no intermediate storage", tuple(nrates), tuple(baseline))
    )
    fig.notes = (
        "Expected shape: all curves increase with the network rate; the "
        "no-storage line dominates and diverges, so caching's advantage "
        "grows with network cost (paper Sec. 5.2)."
    )
    return fig


def fig6(
    runner: ExperimentRunner,
    *,
    alphas: Sequence[float] | None = None,
    nrates: Sequence[float] | None = None,
    seeds: Sequence[int] | None = None,
) -> FigureResult:
    """Total cost vs network charging rate under different access skews."""
    cfg = runner.config
    alphas = list(alphas if alphas is not None else cfg.alpha_axis)
    nrates = list(nrates if nrates is not None else cfg.nrate_axis)
    seeds = list(seeds if seeds is not None else (cfg.workload_seed,))
    fig = FigureResult(
        figure_id="fig6",
        title=(
            f"network rate vs total cost per access pattern "
            f"(srate={cfg.srate_per_gb_hour:g}, IS={cfg.capacity_gb} GB)"
        ),
        xlabel="network charging rate ($/GB)",
        ylabel="total service cost ($)",
    )
    for alpha in alphas:
        ys = [
            runner.mean_total_cost(seeds, nrate_per_gb=n, alpha=alpha)
            for n in nrates
        ]
        fig.series.append(Series(f"alpha={alpha:g}", tuple(nrates), tuple(ys)))
    fig.notes = (
        "Expected shape: cost increases with the network rate for every "
        "alpha, and more evenly distributed requests (larger alpha) cost "
        "more at the same rate (paper Sec. 5.2)."
    )
    return fig
