"""Incremental price quoting against the partially-built cycle.

The gateway must price a reservation *before* the Phase-1/SORP solver has
seen the batch, so the quote is a marginal-cost estimate built from the
same memoized :class:`~repro.core.costmodel.CostModel` the solver will
bill against:

* **Fresh delivery** (always available): the cheapest-copy Ψ_D of an
  independent stream from a home warehouse to the request's neighborhood
  -- ``network_volume x cheapest-route rate x tariff`` -- i.e. the
  network-only baseline price of this one request.
* **Residency extension** (when the building batch already admitted the
  same video at the same neighborhood storage): the Ψ_C delta of
  stretching that storage's residency interval to cover the new showing.
  A showing inside the already-quoted span is marginal-free.

The quote is the *cheaper* of the two -- the solver will never do worse
than either single-copy strategy for this request, so the quote is a
deterministic upper-bound estimate the gateway can reconcile against the
realized (billed) Ψ after cycle seal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.network_only import cheapest_home_route
from repro.core.costmodel import CostModel
from repro.errors import ScheduleError
from repro.workload.requests import Request

#: Quote bases, in the order the engine prefers them on a price tie.
QUOTE_BASES = ("residency-extension", "delivery")


@dataclass(frozen=True)
class Quote:
    """A priced reservation: the marginal Ψ estimate and its provenance.

    Attributes:
        price: Quoted marginal cost in $ (the min of the bases below).
        basis: ``"delivery"`` (fresh cheapest-copy stream) or
            ``"residency-extension"`` (stretch an already-admitted copy).
        psi_d_fresh: The fresh-delivery Ψ_D estimate.
        psi_c_extension: The residency-extension Ψ_C delta, or ``None``
            when the batch holds no copy of this video at this storage yet.
    """

    price: float
    basis: str
    psi_d_fresh: float
    psi_c_extension: float | None = None

    def to_json_dict(self) -> dict:
        return {
            "price": self.price,
            "basis": self.basis,
            "psi_d_fresh": self.psi_d_fresh,
            "psi_c_extension": self.psi_c_extension,
        }


class QuoteEngine:
    """Prices reservations incrementally against the building batch.

    The engine tracks, per ``(video_id, local_storage)``, the showing-time
    span of the requests *admitted so far* this cycle; :meth:`quote` prices
    a candidate against that state and :meth:`admit` folds an accepted
    request into it.  Quoting never mutates state, so reject/shed paths
    need no compensation.  All arithmetic goes through the shared cost
    model's memoized caches and the deterministic cheapest-home route, so
    equal intake orders produce bit-equal quotes.
    """

    def __init__(self, cost_model: CostModel):
        self._cost_model = cost_model
        #: (video_id, local_storage) -> (min showing start, max showing start)
        self._spans: dict[tuple[str, str], tuple[float, float]] = {}

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def reset(self) -> None:
        """Forget the building batch (called at cycle seal)."""
        self._spans.clear()

    def quote(self, request: Request) -> Quote:
        """Price one reservation against the current batch state.

        Raises :class:`~repro.errors.ScheduleError` (propagated from the
        router) when no home warehouse can reach the neighborhood --
        callers pre-screen reachability so this marks a topology hole,
        not a policy decision.
        """
        cm = self._cost_model
        video = cm.catalog[request.video_id]
        route = cheapest_home_route(cm, request)
        multiplier = cm.network_multiplier(request.start_time)
        psi_d_fresh = video.network_volume * route.rate * multiplier

        key = (request.video_id, request.local_storage)
        span = self._spans.get(key)
        if span is None:
            return Quote(price=psi_d_fresh, basis="delivery", psi_d_fresh=psi_d_fresh)
        lo, hi = span
        t = request.start_time
        base = cm.residency_cost_for(request.video_id, request.local_storage, lo, hi)
        grown = cm.residency_cost_for(
            request.video_id, request.local_storage, min(lo, t), max(hi, t)
        )
        psi_c_extension = max(0.0, grown - base)
        if psi_c_extension <= psi_d_fresh:
            return Quote(
                price=psi_c_extension,
                basis="residency-extension",
                psi_d_fresh=psi_d_fresh,
                psi_c_extension=psi_c_extension,
            )
        return Quote(
            price=psi_d_fresh,
            basis="delivery",
            psi_d_fresh=psi_d_fresh,
            psi_c_extension=psi_c_extension,
        )

    def admit(self, request: Request) -> None:
        """Fold an admitted reservation into the building-batch state."""
        key = (request.video_id, request.local_storage)
        t = request.start_time
        span = self._spans.get(key)
        if span is None:
            self._spans[key] = (t, t)
        else:
            self._spans[key] = (min(span[0], t), max(span[1], t))

    def reachable(self, request: Request) -> bool:
        """Whether any home warehouse can stream to this neighborhood."""
        try:
            cheapest_home_route(self._cost_model, request)
        except ScheduleError:
            return False
        return True


__all__ = ["QUOTE_BASES", "Quote", "QuoteEngine"]
