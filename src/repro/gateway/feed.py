"""Live reservation intake: booking requests arriving over (virtual) time.

A :class:`RequestFeed` is an ordered stream of :class:`RequestEvent`
records -- each a :class:`~repro.workload.requests.Request` plus the
virtual instant ``at`` at which the user *booked* it.  Where a
:class:`~repro.workload.requests.RequestBatch` is the frozen cycle
workload the solver consumes, a feed is how that workload comes into
being: booking by booking, each some lead time before its showing.  The
reservation gateway (:mod:`repro.gateway.gateway`) consumes feeds and
quotes/admits/queues/sheds requests as they arrive.

Feeds are plain data and fully deterministic, mirroring
:class:`~repro.faults.feed.FaultFeed`:

* a **JSONL file feed** (:meth:`RequestFeed.load` / :meth:`RequestFeed.save`)
  replays a committed scenario bit-identically -- one header line, one event
  per subsequent line, so malformed input is diagnosable as ``path:lineno``;
* a **seeded generator feed** (:meth:`RequestFeed.generate`) draws the
  requests through :class:`~repro.workload.generators.WorkloadGenerator`
  (neighborhoods x users x Zipf x an arrival process) and derives each
  booking's arrival instant from the same seed, so equal arguments always
  yield an equal feed.
"""

from __future__ import annotations

import json
import math
import pathlib
import random
from dataclasses import dataclass

from repro.catalog.catalog import VideoCatalog
from repro.errors import GatewayError
from repro.topology.graph import Topology
from repro.workload.arrival import ArrivalProcess
from repro.workload.generators import WorkloadGenerator
from repro.workload.requests import Request, RequestBatch

_FEED_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RequestEvent:
    """One booking: the request plus its virtual arrival instant.

    Attributes:
        at: When the user booked the reservation (virtual seconds, the
            same clock as the request start times and cycle boundaries).
        request: The booked :class:`~repro.workload.requests.Request`.
    """

    at: float
    request: Request

    def __post_init__(self) -> None:
        if not math.isfinite(self.at):
            raise GatewayError(f"booking arrival time must be finite, got {self.at}")

    @property
    def lead(self) -> float:
        """Seconds between booking and showing (may be negative)."""
        return self.request.start_time - self.at

    def _sort_key(self) -> tuple:
        r = self.request
        return (self.at, r.start_time, r.video_id, r.user_id, r.local_storage)

    def to_dict(self) -> dict:
        r = self.request
        return {
            "at": self.at,
            "request": {
                "start_time": r.start_time,
                "video_id": r.video_id,
                "user_id": r.user_id,
                "local_storage": r.local_storage,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestEvent":
        try:
            r = data["request"]
            return cls(
                at=float(data["at"]),
                request=Request(
                    start_time=float(r["start_time"]),
                    video_id=str(r["video_id"]),
                    user_id=str(r["user_id"]),
                    local_storage=str(r["local_storage"]),
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GatewayError(f"malformed request event: {exc}") from exc


@dataclass(frozen=True)
class RequestFeed:
    """An ordered, replayable stream of booking requests.

    Events are kept in canonical arrival order (ties broken by the
    request's identifying fields), so two feeds with the same events
    compare equal and replay identically regardless of construction
    order.  Duplicate bookings are *kept* -- two identical reservations
    are two streams of demand, and deduplication (if any) is an
    admission policy's job.
    """

    events: tuple[RequestEvent, ...] = ()
    name: str = ""
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=RequestEvent._sort_key)),
        )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def span(self) -> tuple[float, float]:
        """(first arrival, last arrival); raises when empty."""
        if not self.events:
            raise GatewayError("empty request feed has no span")
        return (self.events[0].at, self.events[-1].at)

    @property
    def showing_span(self) -> tuple[float, float]:
        """(earliest, latest) showing start time; raises when empty."""
        if not self.events:
            raise GatewayError("empty request feed has no showings")
        starts = [e.request.start_time for e in self.events]
        return (min(starts), max(starts))

    def batch(self) -> RequestBatch:
        """Every booked request as one frozen batch (the offline view)."""
        return RequestBatch(e.request for e in self.events)

    def until(self, t: float) -> "RequestFeed":
        """The sub-feed of bookings arriving at or before instant ``t``."""
        return RequestFeed(
            events=tuple(e for e in self.events if e.at <= t),
            name=self.name,
            seed=self.seed,
        )

    # -- serialization -----------------------------------------------------

    def save(self, path) -> None:
        """Write the feed as JSONL: one header line, then one event/line."""
        header: dict = {
            "format_version": _FEED_FORMAT_VERSION,
            "name": self.name,
        }
        if self.seed is not None:
            header["seed"] = self.seed
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(e.to_dict(), sort_keys=True) for e in self.events
        )
        pathlib.Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path) -> "RequestFeed":
        """Read a feed written by :meth:`save`.

        Raises :class:`~repro.errors.GatewayError` with a ``path:lineno``
        diagnostic on unreadable files, non-JSON lines, bad header
        versions, or malformed event records.
        """
        try:
            text = pathlib.Path(path).read_text()
        except OSError as exc:
            raise GatewayError(f"cannot read request feed {path}: {exc}") from exc
        header: dict | None = None
        events: list[RequestEvent] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise GatewayError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(doc, dict):
                raise GatewayError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(doc).__name__}"
                )
            if header is None:
                if "format_version" not in doc:
                    raise GatewayError(
                        f"{path}:1: missing feed header (format_version)"
                    )
                if doc["format_version"] != _FEED_FORMAT_VERSION:
                    raise GatewayError(
                        f"{path}:1: unsupported feed format version "
                        f"{doc['format_version']!r} "
                        f"(expected {_FEED_FORMAT_VERSION})"
                    )
                header = doc
                continue
            try:
                events.append(RequestEvent.from_dict(doc))
            except GatewayError as exc:
                raise GatewayError(f"{path}:{lineno}: {exc}") from exc
        if header is None:
            raise GatewayError(f"{path}:1: empty feed file (no header line)")
        seed = header.get("seed")
        return cls(
            events=tuple(events),
            name=str(header.get("name", "")),
            seed=int(seed) if seed is not None else None,
        )

    # -- seeded generation -------------------------------------------------

    @classmethod
    def generate(
        cls,
        topology: Topology,
        catalog: VideoCatalog,
        *,
        seed: int,
        alpha: float = 0.271,
        users_per_neighborhood: int = 4,
        requests_per_user: int = 1,
        arrivals: ArrivalProcess | None = None,
        lead_range: tuple[float, float] = (3600.0, 14400.0),
    ) -> "RequestFeed":
        """Draw a deterministic booking feed from ``seed``.

        The requests come from
        :class:`~repro.workload.generators.WorkloadGenerator` with the
        same arguments (so the feed's :meth:`batch` equals the offline
        workload a direct run would schedule); each booking's arrival is
        the showing's start time minus a seeded lead uniform in
        ``lead_range`` (clamped to 0) -- VOR users book "some time in
        advance".  Equal arguments always yield an equal feed.
        """
        lo, hi = lead_range
        if not (0.0 <= lo <= hi):
            raise GatewayError(
                f"lead_range must satisfy 0 <= lo <= hi, got {lead_range!r}"
            )
        batch = WorkloadGenerator(
            topology,
            catalog,
            alpha=alpha,
            users_per_neighborhood=users_per_neighborhood,
            arrivals=arrivals,
            requests_per_user=requests_per_user,
        ).generate(seed)
        # Derived arithmetically (never via hash()) so feeds replay
        # bit-identically across interpreter runs.
        rng = random.Random(seed * 1_000_003 + 29)
        events = tuple(
            RequestEvent(
                at=max(0.0, r.start_time - rng.uniform(lo, hi)),
                request=r,
            )
            for r in batch
        )
        return cls(events=events, name=f"requests-seed{seed}", seed=seed)


__all__ = ["RequestEvent", "RequestFeed"]
