"""The reservation admission gateway: the service's front door.

:class:`ReservationGateway` sits between a live booking stream
(:class:`~repro.gateway.feed.RequestFeed`) and :class:`~repro.service.VORService`.
For every arriving booking it

1. **pre-screens validity** (unknown title, unknown neighborhood storage,
   lead time against the booking instant, unreachable neighborhood) so the
   sealed batch never makes the service raise;
2. **quotes** an incremental price through
   :class:`~repro.gateway.quote.QuoteEngine` (cheapest-copy Ψ_D vs.
   residency-extension Ψ_C against the partially-built cycle);
3. runs the priced reservation through a pluggable
   :class:`~repro.gateway.policies.AdmissionPolicy`;
4. applies **backpressure**: admitted reservations join the solver-bound
   batch until it reaches ``max_batch``, then a bounded pending queue,
   then priority-aware shedding (latest showing first -- the same urgency
   order as :meth:`~repro.service.VORService.shed_pending`).

At each cycle boundary :meth:`seal` books the batch into the service,
closes the cycle, reconciles quoted vs. realized Ψ per delivered request
(deliveries billed directly, residency cost via the billing split), and
journals the whole intake lifecycle (``quoted``, ``gate-admitted``,
``gate-rejected``, ``gate-queued``, ``gate-shed``, ``cycle-sealed``)
with ``vor_gateway_*`` metric families.  Queued reservations carry over
and are promoted (earliest showing first) into the next cycle's batch.

Everything runs on the feed's virtual clock: replaying a feed yields a
byte-identical journal and report, on every Phase-1 backend.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

from repro.errors import GatewayError
from repro.gateway.feed import RequestEvent, RequestFeed
from repro.gateway.policies import AcceptAllPolicy, AdmissionPolicy
from repro.gateway.quote import Quote, QuoteEngine
from repro.obs.events import request_key
from repro.obs.metrics import DOLLAR_BUCKETS
from repro.service import CycleReport, VORService
from repro.workload.requests import RequestBatch

_log = logging.getLogger(__name__)

#: Reasons the gateway itself rejects or sheds (policies add their own).
GATE_REASONS = (
    "unknown-title",
    "unknown-storage",
    "lead-time",
    "unreachable",
    "queue-overflow",
    "expired",     # queued past its showing window: a later cycle can't book it
    "final-seal",
)


@dataclass(frozen=True)
class GatewayConfig:
    """Backpressure envelope of the gateway.

    Attributes:
        max_batch: Solver-bound batch depth per cycle; ``0`` = unbounded
            (no backpressure, every admission goes straight to the batch).
        queue_depth: Bounded pending queue that absorbs admissions once
            the batch is full; ``0`` disables queueing (overflow sheds).
        lead_time: Minimum booking-to-showing lead enforced at intake;
            ``None`` adopts the service's own lead time.
    """

    max_batch: int = 0
    queue_depth: int = 0
    lead_time: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 0:
            raise GatewayError(f"max_batch must be >= 0, got {self.max_batch}")
        if self.queue_depth < 0:
            raise GatewayError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.lead_time is not None and self.lead_time < 0:
            raise GatewayError(
                f"lead_time must be >= 0, got {self.lead_time}"
            )


@dataclass(frozen=True)
class _Intake:
    """A priced booking moving through the gate."""

    event: RequestEvent
    quote: Quote
    promoted_from: int | None = None  # cycle index it was queued in

    def shed_key(self) -> tuple:
        # Same urgency order as VORService.shed_pending: latest showing is
        # lowest priority (most time to rebook); ties on video then user.
        r = self.event.request
        return (r.start_time, r.video_id, r.user_id)


@dataclass(frozen=True)
class Reconciliation:
    """Quote-vs-realized Ψ of one delivered request key."""

    request_id: str
    quoted: float
    realized: float

    @property
    def error(self) -> float:
        """Relative quote error against realized Ψ (0 when both are 0)."""
        if self.realized > 0.0:
            return abs(self.quoted - self.realized) / self.realized
        return 0.0 if self.quoted == 0.0 else math.inf

    def to_json_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "quoted": self.quoted,
            "realized": self.realized,
        }


@dataclass
class GatewayCycleReport:
    """One sealed cycle: intake counters, reconciliation, solver outcome."""

    index: int
    cycle_end: float
    offered: int
    admitted: int
    promoted: int
    rejected: dict[str, int]
    queued: int
    shed: int
    quote_total: float
    realized_total: float
    reconciliation: tuple[Reconciliation, ...] = ()
    #: The solver-side report; ``None`` for intake-only sealing (the
    #: horizon chaining path, where the orchestrator runs the solve).
    report: CycleReport | None = None

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def admission_ratio(self) -> float:
        """Admitted (incl. promoted) / offered; 1.0 on an idle cycle."""
        if not self.offered and not self.promoted:
            return 1.0
        return self.admitted / max(1, self.offered + self.promoted)

    @property
    def shed_rate(self) -> float:
        if not self.offered:
            return 0.0
        return self.shed / self.offered

    @property
    def quote_error(self) -> float:
        """Relative error of the summed quotes against realized Ψ."""
        if self.realized_total > 0.0:
            return abs(self.quote_total - self.realized_total) / self.realized_total
        return 0.0 if self.quote_total == 0.0 else math.inf

    @property
    def feasible(self) -> bool:
        return self.report is None or self.report.feasible

    def to_json_dict(self) -> dict:
        return {
            "index": self.index,
            "cycle_end": self.cycle_end,
            "offered": self.offered,
            "admitted": self.admitted,
            "promoted": self.promoted,
            "rejected": dict(sorted(self.rejected.items())),
            "queued": self.queued,
            "shed": self.shed,
            "quote_total": self.quote_total,
            "realized_total": self.realized_total,
            "quote_error": self.quote_error,
            "admission_ratio": self.admission_ratio,
            "shed_rate": self.shed_rate,
            "feasible": self.feasible,
            "reconciliation": [
                r.to_json_dict()
                for r in sorted(self.reconciliation, key=lambda r: r.request_id)
            ],
        }


@dataclass
class GatewayRunReport:
    """A whole gateway run: one report per sealed cycle plus totals."""

    feed_name: str
    cycles: list[GatewayCycleReport] = field(default_factory=list)
    unconsumed: int = 0

    @property
    def offered(self) -> int:
        return sum(c.offered for c in self.cycles)

    @property
    def admitted(self) -> int:
        return sum(c.admitted for c in self.cycles)

    @property
    def shed(self) -> int:
        return sum(c.shed for c in self.cycles)

    @property
    def rejected(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.cycles:
            for reason, n in c.rejected.items():
                out[reason] = out.get(reason, 0) + n
        return dict(sorted(out.items()))

    @property
    def admission_ratio(self) -> float:
        if not self.offered:
            return 1.0
        return self.admitted / self.offered

    @property
    def shed_rate(self) -> float:
        if not self.offered:
            return 0.0
        return self.shed / self.offered

    @property
    def quote_error(self) -> float:
        """Worst per-cycle relative quote error (the SLO indicator)."""
        errors = [c.quote_error for c in self.cycles if math.isfinite(c.quote_error)]
        return max(errors, default=0.0)

    @property
    def feasible(self) -> bool:
        return all(c.feasible for c in self.cycles)

    def to_json_dict(self) -> dict:
        return {
            "feed": self.feed_name,
            "feasible": self.feasible,
            "deterministic": {
                "cycles": [c.to_json_dict() for c in self.cycles],
                "offered": self.offered,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "admission_ratio": self.admission_ratio,
                "shed_rate": self.shed_rate,
                "quote_error": self.quote_error,
                "unconsumed": self.unconsumed,
            },
        }

    def summary(self) -> str:
        lines = [
            f"gateway run over {self.feed_name or 'feed'}: "
            f"{self.offered} offered, {self.admitted} admitted "
            f"({100 * self.admission_ratio:.1f} %), "
            f"{self.rejected and sum(self.rejected.values()) or 0} rejected, "
            f"{self.shed} shed",
            f"  worst cycle quote error: {100 * self.quote_error:.1f} %",
            f"  feasible: {self.feasible}",
        ]
        for reason, n in self.rejected.items():
            lines.append(f"    rejected[{reason}]: {n}")
        if self.unconsumed:
            lines.append(
                f"  {self.unconsumed} booking(s) arrived after the last seal"
            )
        return "\n".join(lines)


class ReservationGateway:
    """Live intake in front of a :class:`~repro.service.VORService`.

    Args:
        service: The service whose cycles this gateway feeds.  The
            gateway shares its observability handle (journal + metrics)
            and its cost model (through the quote engine), so intake
            pricing and solver billing use the same memoized caches.
        policy: Admission policy (default accept-all).
        config: Backpressure envelope (default: unbounded batch).
    """

    def __init__(
        self,
        service: VORService,
        *,
        policy: AdmissionPolicy | None = None,
        config: GatewayConfig | None = None,
    ):
        self.service = service
        self.policy = policy if policy is not None else AcceptAllPolicy()
        self.config = config if config is not None else GatewayConfig()
        self.obs = service.obs
        self.quotes = QuoteEngine(service.cost_model)
        self._storage_names = {s.name for s in service.topology.storages}
        self._lead_time = (
            self.config.lead_time
            if self.config.lead_time is not None
            else service.lead_time
        )
        self._batch: list[_Intake] = []
        self._queue: list[_Intake] = []
        self._cycle_index = 0
        self._counters = self._fresh_counters()

    @staticmethod
    def _fresh_counters() -> dict:
        return {
            "offered": 0,
            "admitted": 0,
            "promoted": 0,
            "rejected": {},
            "queued": 0,
            "shed": 0,
        }

    @property
    def batch_depth(self) -> int:
        return len(self._batch)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- intake --------------------------------------------------------------

    def intake(self, event: RequestEvent) -> str:
        """Gate one booking; returns its disposition.

        Dispositions: ``"admitted"``, ``"queued"``, ``"rejected"``,
        ``"shed"`` (the newcomer displaced nothing and was itself shed).
        """
        self._counters["offered"] += 1
        request = event.request
        reason = self._prescreen(event)
        if reason is not None:
            self._reject(event, reason)
            return "rejected"
        quote = self.quotes.quote(request)
        self.obs.journal.emit(
            "quoted",
            request=request,
            at=event.at,
            basis=quote.basis,
            price=quote.price,
            psi_d_fresh=quote.psi_d_fresh,
        )
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_gateway_quotes_total",
                help="Reservations priced by the admission gateway",
                basis=quote.basis,
            ).inc()
            metrics.histogram(
                "vor_gateway_quote_dollars",
                boundaries=DOLLAR_BUCKETS,
                help="Quoted marginal price per reservation",
            ).observe(quote.price)
        admit, reason = self.policy.decide(request, quote, event.at)
        if not admit:
            self._reject(event, reason, price=quote.price)
            return "rejected"
        intake = _Intake(event=event, quote=quote)
        if self.config.max_batch == 0 or len(self._batch) < self.config.max_batch:
            self._admit(intake)
            return "admitted"
        if len(self._queue) < self.config.queue_depth:
            self._enqueue(intake)
            return "queued"
        return self._overflow(intake)

    def _prescreen(self, event: RequestEvent) -> str | None:
        request = event.request
        if request.video_id not in self.service.catalog:
            return "unknown-title"
        if request.local_storage not in self._storage_names:
            return "unknown-storage"
        if request.start_time < event.at + self._lead_time:
            return "lead-time"
        if not self.quotes.reachable(request):
            return "unreachable"
        return None

    def _reject(self, event: RequestEvent, reason: str, **attrs) -> None:
        rejected = self._counters["rejected"]
        rejected[reason] = rejected.get(reason, 0) + 1
        self.obs.journal.emit(
            "gate-rejected",
            request=event.request,
            at=event.at,
            reason=reason,
            **attrs,
        )
        self._count_disposition("rejected")

    def _admit(self, intake: _Intake, *, promoted: bool = False) -> None:
        self._batch.append(intake)
        self.quotes.admit(intake.event.request)
        self.policy.admitted(intake.event.request, intake.quote, intake.event.at)
        self._counters["admitted"] += 1
        if promoted:
            self._counters["promoted"] += 1
        self.obs.journal.emit(
            "gate-admitted",
            request=intake.event.request,
            at=intake.event.at,
            price=intake.quote.price,
            promoted=promoted,
        )
        self._count_disposition("admitted")

    def _enqueue(self, intake: _Intake) -> None:
        self._queue.append(intake)
        self._counters["queued"] += 1
        self.obs.journal.emit(
            "gate-queued",
            request=intake.event.request,
            at=intake.event.at,
            depth=len(self._queue),
        )
        self._count_disposition("queued")

    def _overflow(self, intake: _Intake) -> str:
        """Batch and queue both full: shed the lowest-priority booking."""
        victim = intake
        victim_at = -1  # newcomer by default
        for i, queued in enumerate(self._queue):
            if queued.shed_key() > victim.shed_key():
                victim = queued
                victim_at = i
        self._shed(victim, "queue-overflow")
        if victim_at < 0:
            return "shed"
        del self._queue[victim_at]
        self._enqueue(intake)
        return "queued"

    def _shed(self, intake: _Intake, reason: str) -> None:
        self._counters["shed"] += 1
        self.obs.journal.emit(
            "gate-shed",
            request=intake.event.request,
            at=intake.event.at,
            reason=reason,
        )
        self._count_disposition("shed")

    def _count_disposition(self, disposition: str) -> None:
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_gateway_requests_total",
                help="Bookings processed by the admission gateway",
                disposition=disposition,
            ).inc()

    def _promote(self) -> None:
        """Move carryover queue into the (fresh) batch, most urgent first."""
        if not self._queue:
            return
        self._queue.sort(key=_Intake.shed_key)
        while self._queue and (
            self.config.max_batch == 0
            or len(self._batch) < self.config.max_batch
        ):
            self._admit(self._queue.pop(0), promoted=True)

    # -- sealing -------------------------------------------------------------

    def seal(self, *, cycle_end: float, final: bool = False) -> GatewayCycleReport:
        """Book the admitted batch, close the cycle, reconcile quotes.

        Queued reservations stay queued for promotion into the next
        cycle, unless ``final`` -- the last seal of a run -- sheds them
        (reason ``"final-seal"``): there is no next cycle to rebook into.
        """
        for intake in self._batch:
            request = intake.event.request
            self.service.reserve(
                request.user_id,
                request.video_id,
                request.start_time,
                local_storage=request.local_storage,
                now=min(intake.event.at, request.start_time - self.service.lead_time),
            )
        report = self.service.close_cycle(cycle_end=cycle_end)
        quoted = {
            request_key(i.event.request): 0.0 for i in self._batch
        }
        for intake in self._batch:
            quoted[request_key(intake.event.request)] += intake.quote.price
        realized = _realized_psi(report, self.service.cost_model)
        reconciliation = tuple(
            Reconciliation(
                request_id=rid,
                quoted=quoted.get(rid, 0.0),
                realized=psi,
            )
            for rid, psi in sorted(realized.items())
        )
        delivered = set(realized)
        quote_total = math.fsum(q for rid, q in quoted.items() if rid in delivered)
        realized_total = math.fsum(realized.values())
        if final:
            self._shed_queue("final-seal")
        else:
            self._expire_queue(cycle_end)
        return self._sealed_report(
            cycle_end,
            quote_total=quote_total,
            realized_total=realized_total,
            reconciliation=reconciliation,
            report=report,
        )

    def intake_cycles(
        self, feed: RequestFeed, boundaries: list[float]
    ) -> list[tuple[RequestBatch, float]]:
        """Run intake only, returning ``(batch, cycle_end)`` pairs.

        This is the :class:`~repro.horizon.orchestrator.HorizonOrchestrator`
        chaining path: the gateway gates and journals the intake
        lifecycle, the orchestrator reserves/solves the returned cycles.
        The last boundary sheds the leftover queue (``"final-seal"``).
        """
        cycles: list[tuple[RequestBatch, float]] = []
        events = list(feed)
        cursor = 0
        for i, end in enumerate(_checked_boundaries(boundaries)):
            self._promote()
            while cursor < len(events) and events[cursor].at <= end:
                self.intake(events[cursor])
                cursor += 1
            batch = RequestBatch(intake.event.request for intake in self._batch)
            if i == len(boundaries) - 1:
                self._shed_queue("final-seal")
            else:
                self._expire_queue(end)
            self._sealed_report(end, report=None)
            cycles.append((batch, end))
        if cursor < len(events):
            _log.warning(
                "%d booking(s) arrived after the last cycle boundary",
                len(events) - cursor,
            )
        return cycles

    def run(self, feed: RequestFeed, boundaries: list[float]) -> GatewayRunReport:
        """Gate a whole feed through the service, sealing at each boundary."""
        run = GatewayRunReport(feed_name=feed.name)
        events = list(feed)
        cursor = 0
        for i, end in enumerate(_checked_boundaries(boundaries)):
            self._promote()
            while cursor < len(events) and events[cursor].at <= end:
                self.intake(events[cursor])
                cursor += 1
            run.cycles.append(
                self.seal(cycle_end=end, final=(i == len(boundaries) - 1))
            )
        run.unconsumed = len(events) - cursor
        if run.unconsumed:
            _log.warning(
                "%d booking(s) arrived after the last cycle boundary",
                run.unconsumed,
            )
        return run

    # -- internals -----------------------------------------------------------

    def _shed_queue(self, reason: str) -> None:
        for intake in sorted(self._queue, key=_Intake.shed_key):
            self._shed(intake, reason)
        self._queue.clear()

    def _expire_queue(self, cycle_end: float) -> None:
        """Shed queued bookings the sealed cycle just closed over.

        The rolling scheduler requires cycle batches to move forward in
        time, so a queued showing at or before this boundary can never be
        promoted into a later cycle -- it expires here instead of
        poisoning the next seal.
        """
        keep: list[_Intake] = []
        for intake in sorted(self._queue, key=_Intake.shed_key):
            if intake.event.request.start_time < cycle_end:
                self._shed(intake, "expired")
            else:
                keep.append(intake)
        self._queue = keep

    def _sealed_report(
        self,
        cycle_end: float,
        *,
        quote_total: float = 0.0,
        realized_total: float = 0.0,
        reconciliation: tuple[Reconciliation, ...] = (),
        report: CycleReport | None,
    ) -> GatewayCycleReport:
        c = self._counters
        cycle = GatewayCycleReport(
            index=self._cycle_index,
            cycle_end=cycle_end,
            offered=c["offered"],
            admitted=c["admitted"],
            promoted=c["promoted"],
            rejected=dict(sorted(c["rejected"].items())),
            queued=len(self._queue),
            shed=c["shed"],
            quote_total=quote_total,
            realized_total=realized_total,
            reconciliation=reconciliation,
            report=report,
        )
        self.obs.journal.emit(
            "cycle-sealed",
            cycle=self._cycle_index,
            cycle_end=cycle_end,
            offered=cycle.offered,
            admitted=cycle.admitted,
            promoted=cycle.promoted,
            rejected=cycle.rejected_total,
            queued=cycle.queued,
            shed=cycle.shed,
            quote_total=quote_total,
            realized_total=realized_total,
            solved=report is not None,
        )
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(
                "vor_gateway_sealed_cycles_total",
                help="Cycles sealed by the admission gateway",
            ).inc()
            metrics.gauge(
                "vor_gateway_queue_depth",
                help="Pending-queue depth at cycle seal",
                mode="max",
            ).set(len(self._queue))
            metrics.gauge(
                "vor_gateway_admission_ratio",
                help="Admitted / offered at the last sealed cycle",
            ).set(cycle.admission_ratio)
            if math.isfinite(cycle.quote_error):
                metrics.gauge(
                    "vor_gateway_quote_error_ratio",
                    help="Relative quote-vs-realized Ψ error, worst cycle",
                    mode="max",
                ).set(cycle.quote_error)
        self._batch.clear()
        self.quotes.reset()
        self.policy.reset()
        self._counters = self._fresh_counters()
        self._cycle_index += 1
        return cycle


def _checked_boundaries(boundaries: list[float]) -> list[float]:
    if not boundaries:
        raise GatewayError("at least one cycle boundary is required")
    out = [float(b) for b in boundaries]
    if out != sorted(out):
        raise GatewayError(f"cycle boundaries must be ascending: {out}")
    return out


def _realized_psi(report: CycleReport, cost_model) -> dict[str, float]:
    """Billed Ψ per request key: own deliveries + residency-cost shares.

    Mirrors :func:`repro.billing.allocate_costs`: each delivery's network
    cost goes to its request; each consumed residency's storage cost is
    split evenly across its ``service_list`` user entries, and a user's
    share is split evenly across that user's delivered requests of the
    video.  Unconsumed residencies (overhead) are not attributed, exactly
    as billing absorbs them.
    """
    realized: dict[str, float] = {}
    for fs in report.cycle.schedule:
        by_user: dict[str, list[str]] = {}
        for d in fs.deliveries:
            rid = request_key(d.request)
            realized[rid] = realized.get(rid, 0.0) + cost_model.delivery_cost(d)
            by_user.setdefault(d.request.user_id, []).append(rid)
        for c in fs.residencies:
            if not c.service_list:
                continue
            share = cost_model.residency_cost(c) / len(c.service_list)
            for user_id in c.service_list:
                rids = by_user.get(user_id)
                if not rids:
                    continue
                per_request = share / len(rids)
                for rid in rids:
                    realized[rid] = realized.get(rid, 0.0) + per_request
    return realized


__all__ = [
    "GATE_REASONS",
    "GatewayConfig",
    "GatewayCycleReport",
    "GatewayRunReport",
    "Reconciliation",
    "ReservationGateway",
]
