"""Pluggable admission policies for the reservation gateway.

Each policy sees a priced reservation -- the request, its
:class:`~repro.gateway.quote.Quote`, and the virtual booking instant --
and answers admit/reject with a stable machine-readable reason.  Policies
chain: a composite admits only when every member admits, and the reported
reason is the first rejector's, so the chain order is part of the
configuration.  Every policy is a pure function of its own fold-in state
(updated only on admission), which keeps replays bit-identical.

Policies are built from compact specs so the CLI, benchmarks, and CI can
name a configuration in one string::

    accept-all
    headroom              # IS-headroom screen at the default 1.0 fraction
    headroom:0.5          # ... at half the storage capacity
    price-ceiling:25.0    # reject quotes above $25
    rate-limit:0.01:5     # per-neighborhood token bucket: rate/s, burst
    headroom:0.8,price-ceiling:40,rate-limit:0.02:8   # chained

The token bucket runs on the feed's virtual clock (the booking ``at``
instants), never the wall clock.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import GatewayError
from repro.gateway.quote import Quote
from repro.topology.graph import Topology
from repro.workload.requests import Request

#: Machine-readable rejection reasons the bundled policies emit.
POLICY_REASONS = ("is-headroom", "price-ceiling", "rate-limit")


class AdmissionPolicy(ABC):
    """Decides whether a priced reservation may join the building batch."""

    name: str = "policy"

    @abstractmethod
    def decide(self, request: Request, quote: Quote, at: float) -> tuple[bool, str]:
        """Return ``(admit, reason)``; reason is ``""`` on admission."""

    def admitted(self, request: Request, quote: Quote, at: float) -> None:
        """Fold an admitted reservation into policy state (default: none)."""

    def reset(self) -> None:
        """Forget per-cycle state at cycle seal (default: none)."""


class AcceptAllPolicy(AdmissionPolicy):
    """Admits everything that passed the gateway's validity pre-screen."""

    name = "accept-all"

    def decide(self, request: Request, quote: Quote, at: float) -> tuple[bool, str]:
        return (True, "")


class HeadroomPolicy(AdmissionPolicy):
    """Screens on projected IS cache occupancy.

    Tracks the distinct videos admitted per neighborhood storage this
    cycle and projects their total bytes (one cached copy per distinct
    video -- the solver shares copies, so this is the cycle's plausible
    footprint).  A request whose video is *new* to its storage is rejected
    once the projection would exceed ``fraction`` of the storage's
    capacity; requests for already-admitted videos always fit (they share
    the existing copy).
    """

    name = "headroom"

    def __init__(self, topology: Topology, catalog, *, fraction: float = 1.0):
        if not (0.0 < fraction):
            raise GatewayError(f"headroom fraction must be > 0, got {fraction}")
        self._topo = topology
        self._catalog = catalog
        self._fraction = fraction
        #: storage name -> {video_id: size}
        self._resident: dict[str, dict[str, float]] = {}

    def decide(self, request: Request, quote: Quote, at: float) -> tuple[bool, str]:
        resident = self._resident.get(request.local_storage, {})
        if request.video_id in resident:
            return (True, "")
        budget = self._fraction * self._topo.capacity(request.local_storage)
        if math.isinf(budget):
            return (True, "")
        projected = math.fsum(resident.values()) + self._catalog[request.video_id].size
        if projected > budget:
            return (False, "is-headroom")
        return (True, "")

    def admitted(self, request: Request, quote: Quote, at: float) -> None:
        self._resident.setdefault(request.local_storage, {})[
            request.video_id
        ] = self._catalog[request.video_id].size

    def reset(self) -> None:
        self._resident.clear()


class PriceCeilingPolicy(AdmissionPolicy):
    """Rejects reservations whose quoted marginal price exceeds a ceiling."""

    name = "price-ceiling"

    def __init__(self, ceiling: float):
        if not (ceiling >= 0.0):
            raise GatewayError(f"price ceiling must be >= 0, got {ceiling}")
        self._ceiling = ceiling

    def decide(self, request: Request, quote: Quote, at: float) -> tuple[bool, str]:
        if quote.price > self._ceiling:
            return (False, "price-ceiling")
        return (True, "")


class TokenBucketPolicy(AdmissionPolicy):
    """Per-neighborhood token-bucket rate limiting on the virtual clock.

    Each neighborhood storage owns a bucket of ``burst`` tokens refilled
    at ``rate`` tokens per virtual second; an admission spends one token.
    Refill is computed from the booking instants (``at``), so replaying a
    feed reproduces the same token trajectories bit-for-bit.
    """

    name = "rate-limit"

    def __init__(self, *, rate: float, burst: float):
        if rate <= 0.0:
            raise GatewayError(f"token rate must be > 0, got {rate}")
        if burst < 1.0:
            raise GatewayError(f"token burst must be >= 1, got {burst}")
        self._rate = rate
        self._burst = burst
        #: storage name -> (tokens, last refill instant)
        self._buckets: dict[str, tuple[float, float]] = {}

    def _refilled(self, storage: str, at: float) -> float:
        tokens, last = self._buckets.get(storage, (self._burst, at))
        if at > last:
            tokens = min(self._burst, tokens + (at - last) * self._rate)
        return tokens

    def decide(self, request: Request, quote: Quote, at: float) -> tuple[bool, str]:
        if self._refilled(request.local_storage, at) < 1.0:
            return (False, "rate-limit")
        return (True, "")

    def admitted(self, request: Request, quote: Quote, at: float) -> None:
        storage = request.local_storage
        self._buckets[storage] = (self._refilled(storage, at) - 1.0, at)

    def reset(self) -> None:
        self._buckets.clear()


class PolicyChain(AdmissionPolicy):
    """All member policies must admit; first rejector names the reason."""

    name = "chain"

    def __init__(self, policies: list[AdmissionPolicy]):
        if not policies:
            raise GatewayError("policy chain must contain at least one policy")
        self._policies = list(policies)

    @property
    def policies(self) -> tuple[AdmissionPolicy, ...]:
        return tuple(self._policies)

    def decide(self, request: Request, quote: Quote, at: float) -> tuple[bool, str]:
        for policy in self._policies:
            admit, reason = policy.decide(request, quote, at)
            if not admit:
                return (False, reason)
        return (True, "")

    def admitted(self, request: Request, quote: Quote, at: float) -> None:
        for policy in self._policies:
            policy.admitted(request, quote, at)

    def reset(self) -> None:
        for policy in self._policies:
            policy.reset()


def build_policy(spec: str, *, topology: Topology, catalog) -> AdmissionPolicy:
    """Parse a comma-chained policy spec string into a policy.

    Raises :class:`~repro.errors.GatewayError` on unknown policy names or
    malformed arguments (message names the offending segment).
    """
    segments = [s.strip() for s in spec.split(",") if s.strip()]
    if not segments:
        raise GatewayError(f"empty policy spec: {spec!r}")
    policies: list[AdmissionPolicy] = []
    for segment in segments:
        name, _, argtext = segment.partition(":")
        args = argtext.split(":") if argtext else []
        try:
            if name == "accept-all":
                if args:
                    raise GatewayError("accept-all takes no arguments")
                policies.append(AcceptAllPolicy())
            elif name == "headroom":
                if len(args) > 1:
                    raise GatewayError("headroom takes at most one argument")
                fraction = float(args[0]) if args else 1.0
                policies.append(HeadroomPolicy(topology, catalog, fraction=fraction))
            elif name == "price-ceiling":
                if len(args) != 1:
                    raise GatewayError("price-ceiling takes exactly one argument")
                policies.append(PriceCeilingPolicy(float(args[0])))
            elif name == "rate-limit":
                if len(args) != 2:
                    raise GatewayError("rate-limit takes rate:burst")
                policies.append(
                    TokenBucketPolicy(rate=float(args[0]), burst=float(args[1]))
                )
            else:
                raise GatewayError(f"unknown admission policy {name!r}")
        except ValueError as exc:
            raise GatewayError(f"bad policy argument in {segment!r}: {exc}") from exc
        except GatewayError as exc:
            raise GatewayError(f"bad policy spec {segment!r}: {exc}") from exc
    if len(policies) == 1:
        return policies[0]
    return PolicyChain(policies)


__all__ = [
    "POLICY_REASONS",
    "AcceptAllPolicy",
    "AdmissionPolicy",
    "HeadroomPolicy",
    "PolicyChain",
    "PriceCeilingPolicy",
    "TokenBucketPolicy",
    "build_policy",
]
