"""Reservation admission gateway: live intake in front of the service.

The paper assumes each cycle's reservation batch simply exists; this
package is the front door that produces it.  A
:class:`~repro.gateway.feed.RequestFeed` carries bookings arriving on a
virtual clock, a :class:`~repro.gateway.quote.QuoteEngine` prices each
one incrementally against the partially-built cycle, pluggable
:mod:`~repro.gateway.policies` admit or reject, and
:class:`~repro.gateway.gateway.ReservationGateway` applies backpressure
(bounded batch, bounded queue, priority-aware shedding) before sealing
the cycle into :class:`~repro.service.VORService`.
"""

from repro.gateway.feed import RequestEvent, RequestFeed
from repro.gateway.gateway import (
    GATE_REASONS,
    GatewayConfig,
    GatewayCycleReport,
    GatewayRunReport,
    Reconciliation,
    ReservationGateway,
)
from repro.gateway.policies import (
    POLICY_REASONS,
    AcceptAllPolicy,
    AdmissionPolicy,
    HeadroomPolicy,
    PolicyChain,
    PriceCeilingPolicy,
    TokenBucketPolicy,
    build_policy,
)
from repro.gateway.quote import QUOTE_BASES, Quote, QuoteEngine

__all__ = [
    "GATE_REASONS",
    "POLICY_REASONS",
    "QUOTE_BASES",
    "AcceptAllPolicy",
    "AdmissionPolicy",
    "GatewayConfig",
    "GatewayCycleReport",
    "GatewayRunReport",
    "HeadroomPolicy",
    "PolicyChain",
    "PriceCeilingPolicy",
    "Quote",
    "QuoteEngine",
    "Reconciliation",
    "RequestEvent",
    "RequestFeed",
    "ReservationGateway",
    "TokenBucketPolicy",
    "build_policy",
]
