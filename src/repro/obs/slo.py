"""Declarative service-level objectives with error-budget accounting.

An :class:`SLOSpec` names one *indicator* (a ratio or latency computed
from a run), an *objective*, and a comparison direction::

    {"name": "deadline-hit-rate", "indicator": "deadline_hit_rate",
     "objective": 0.90, "op": ">="}

A :class:`SLOPolicy` (a list of specs, loadable from JSON via
:meth:`SLOPolicy.load`) evaluates a dict of measured indicators into an
:class:`SLOReport` carrying per-SLO burn rates and remaining error
budget:

* ``op=">="`` -- the objective is a floor on a *good* ratio.  The error
  budget is ``1 - objective`` and the burn rate is
  ``(1 - value) / (1 - objective)``: burn 1.0 means the budget is
  exactly spent, above 1.0 the SLO is breached.
* ``op="<="`` -- the objective is a ceiling on a *bad* ratio or a
  latency.  The budget is the objective itself and the burn rate is
  ``value / objective``.

Indicators missing from the measurement dict evaluate to *no-data*,
which counts as met (an SLO over a phase that never ran cannot burn
budget).  :meth:`SLOReport.record` publishes
``vor_slo_burn_rate{slo=...}`` and
``vor_slo_error_budget_remaining_ratio{slo=...}`` gauges, and
``vor-repro slo-check`` exits non-zero when :attr:`SLOReport.ok` is
false.

:func:`online_indicators` derives the standard indicator dict from an
:class:`~repro.online.loop.OnlineRunReport`; ratio indicators are
replay-deterministic, the latency indicators are wall time (excluded
from bench's deterministic gate).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError


class SLOError(ReproError):
    """Malformed SLO policy or evaluation input."""


_OPS = ("<=", ">=")

#: Indicators replayable bit-identically for a fixed (feed, seed) -- the
#: slice of an SLO evaluation that bench's ``--compare`` gate may diff.
DETERMINISTIC_INDICATORS = (
    "deadline_hit_rate",
    "rejection_rate",
    "amendment_failure_rate",
    "shed_rate",
    "gateway_admission_ratio",
    "gateway_quote_error",
    "gateway_shed_rate",
)

#: The admission gateway's own indicator names (a subset of the
#: deterministic indicators: gateway decisions replay bit-identically).
GATEWAY_INDICATORS = (
    "gateway_admission_ratio",
    "gateway_quote_error",
    "gateway_shed_rate",
)


@dataclass(frozen=True)
class SLOSpec:
    """One objective over one indicator."""

    name: str
    indicator: str
    objective: float
    op: str = ">="
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SLOError(f"SLO {self.name!r}: op must be one of {_OPS}, got {self.op!r}")
        if not math.isfinite(self.objective):
            raise SLOError(f"SLO {self.name!r}: objective must be finite")

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "indicator": self.indicator,
            "objective": self.objective,
            "op": self.op,
        }
        if self.description:
            doc["description"] = self.description
        return doc


@dataclass(frozen=True)
class SLOResult:
    """One evaluated SLO."""

    spec: SLOSpec
    value: float | None  # None = indicator absent from the measurement
    met: bool
    burn_rate: float
    budget_remaining: float  # max(0, 1 - burn_rate)

    @property
    def status(self) -> str:
        if self.value is None:
            return "no-data"
        return "ok" if self.met else "breach"

    def to_dict(self) -> dict[str, Any]:
        return {
            **self.spec.to_dict(),
            "value": self.value,
            "status": self.status,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
        }


@dataclass(frozen=True)
class SLOReport:
    """Every SLO of a policy evaluated against one run."""

    results: tuple[SLOResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.met for r in self.results)

    @property
    def breaches(self) -> tuple[SLOResult, ...]:
        return tuple(r for r in self.results if not r.met)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "breaches": len(self.breaches),
            "slos": [r.to_dict() for r in self.results],
        }

    def record(self, registry: Any) -> None:
        """Publish burn/budget gauges onto a metrics registry.

        Burn rates over latency indicators are wall time, so both
        gauges are registered non-deterministic.
        """
        if not getattr(registry, "enabled", False):
            return
        for r in self.results:
            registry.gauge(
                "vor_slo_burn_rate",
                help="Error-budget burn rate per SLO (1.0 = budget spent)",
                deterministic=False,
                slo=r.spec.name,
            ).set(r.burn_rate)
            registry.gauge(
                "vor_slo_error_budget_remaining_ratio",
                help="Remaining error budget per SLO (0 = exhausted)",
                deterministic=False,
                slo=r.spec.name,
            ).set(r.budget_remaining)

    def format_report(self) -> str:
        """Terminal rendering, one line per SLO."""
        if not self.results:
            return "slo: empty policy"
        width = max(len(r.spec.name) for r in self.results)
        lines = []
        for r in self.results:
            value = "n/a" if r.value is None else f"{r.value:g}"
            lines.append(
                f"  {'PASS' if r.met else 'FAIL'}  {r.spec.name:<{width}}  "
                f"value={value} objective{r.spec.op}{r.spec.objective:g}  "
                f"burn={r.burn_rate:.2f} budget-left={r.budget_remaining:.0%}"
            )
        verdict = "OK" if self.ok else f"BREACHED ({len(self.breaches)})"
        return "\n".join([f"slo: {verdict}"] + lines)


def _evaluate_one(spec: SLOSpec, value: float | None) -> SLOResult:
    if value is None:
        return SLOResult(spec, None, met=True, burn_rate=0.0, budget_remaining=1.0)
    if spec.op == ">=":
        met = value >= spec.objective
        bad, budget = 1.0 - value, 1.0 - spec.objective
    else:
        met = value <= spec.objective
        bad, budget = value, spec.objective
    if budget <= 0.0:
        burn = 0.0 if bad <= 0.0 else math.inf
    else:
        burn = max(0.0, bad / budget)
    return SLOResult(
        spec, value, met=met, burn_rate=burn,
        budget_remaining=max(0.0, 1.0 - burn),
    )


@dataclass(frozen=True)
class SLOPolicy:
    """An ordered set of :class:`SLOSpec` evaluated together."""

    specs: tuple[SLOSpec, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for s in self.specs:
            if s.name in seen:
                raise SLOError(f"duplicate SLO name {s.name!r}")
            seen.add(s.name)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    def evaluate(self, indicators: Mapping[str, float]) -> SLOReport:
        return SLOReport(
            results=tuple(
                _evaluate_one(s, indicators.get(s.indicator)) for s in self.specs
            )
        )

    def to_dict(self) -> dict[str, Any]:
        return {"slos": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SLOPolicy":
        if not isinstance(doc, Mapping) or "slos" not in doc:
            raise SLOError('SLO policy must be an object with an "slos" list')
        entries = doc["slos"]
        if not isinstance(entries, (list, tuple)):
            raise SLOError('"slos" must be a list')
        specs = []
        for i, entry in enumerate(entries):
            try:
                specs.append(
                    SLOSpec(
                        name=entry["name"],
                        indicator=entry["indicator"],
                        objective=float(entry["objective"]),
                        op=entry.get("op", ">="),
                        description=entry.get("description", ""),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SLOError(f"slos[{i}]: malformed spec: {exc}") from exc
        return cls(specs=tuple(specs))

    @classmethod
    def load(cls, path: str | Path) -> "SLOPolicy":
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SLOError(f"cannot read SLO policy {path}: {exc}") from exc
        return cls.from_dict(doc)

    @classmethod
    def default(cls) -> "SLOPolicy":
        """The built-in policy ``slo-check`` applies when no file is given."""
        return cls(
            specs=(
                SLOSpec(
                    "deadline-hit-rate", "deadline_hit_rate", 0.5, ">=",
                    "Fraction of admitted reservations neither lost nor shed.",
                ),
                SLOSpec(
                    "rejection-rate", "rejection_rate", 0.25, "<=",
                    "Fraction of booking attempts the service refused.",
                ),
                SLOSpec(
                    "amendment-failure-rate", "amendment_failure_rate", 0.5, "<=",
                    "Fraction of online batches that failed to amend.",
                ),
                SLOSpec(
                    "shed-rate", "shed_rate", 0.25, "<=",
                    "Fraction of admitted reservations shed under degradation.",
                ),
                SLOSpec(
                    "amendment-latency", "amendment_latency_seconds", 30.0, "<=",
                    "Slowest settled amendment batch (wall seconds).",
                ),
                SLOSpec(
                    "recovery-latency", "recovery_latency_seconds", 30.0, "<=",
                    "Slowest contingency recovery (wall seconds).",
                ),
            )
        )

    @classmethod
    def gateway_default(cls) -> "SLOPolicy":
        """The built-in policy for admission-gateway runs.

        Kept separate from :meth:`default` (whose specs are embedded in
        committed reports): gateway indicators measure the front door,
        not the amendment loop.
        """
        return cls(
            specs=(
                SLOSpec(
                    "gateway-admission-ratio", "gateway_admission_ratio",
                    0.5, ">=",
                    "Fraction of offered bookings admitted into a cycle.",
                ),
                SLOSpec(
                    "gateway-quote-error", "gateway_quote_error", 0.5, "<=",
                    "Worst per-cycle relative quote-vs-realized Ψ error.",
                ),
                SLOSpec(
                    "gateway-shed-rate", "gateway_shed_rate", 0.25, "<=",
                    "Fraction of offered bookings shed under backpressure.",
                ),
            )
        )


def gateway_indicators(run: Any) -> dict[str, float]:
    """Standard indicator dict from a gateway run.

    Args:
        run: A :class:`~repro.gateway.gateway.GatewayRunReport`.

    All three indicators are replay-deterministic: admission ratio
    (admitted / offered), shed rate (shed / offered), and the worst
    per-cycle relative quote-vs-realized Ψ error.
    """
    indicators = {
        "gateway_admission_ratio": run.admission_ratio,
        "gateway_shed_rate": run.shed_rate,
    }
    if math.isfinite(run.quote_error):
        indicators["gateway_quote_error"] = run.quote_error
    return indicators


def online_indicators(
    report: Any,
    *,
    reservations: int,
    rejected: int = 0,
) -> dict[str, float]:
    """Standard indicator dict from an online run.

    Args:
        report: An :class:`~repro.online.loop.OnlineRunReport`.
        reservations: Admitted reservations going into the cycle.
        rejected: Booking attempts refused at reserve time.

    Ratio indicators are deterministic for a fixed (feed, seed); the
    latency indicators come from wall-clock batch durations.
    """
    indicators: dict[str, float] = {}
    attempts = reservations + rejected
    if attempts:
        indicators["rejection_rate"] = rejected / attempts
    lost = sum(r.lost for r in report.records)
    if reservations:
        indicators["deadline_hit_rate"] = max(
            0.0, 1.0 - (lost + report.shed_total) / reservations
        )
        indicators["shed_rate"] = report.shed_total / reservations
    if report.batches_total:
        failed = sum(
            1 for r in report.records if r.outcome.endswith("failed")
        )
        indicators["amendment_failure_rate"] = failed / report.batches_total
    durations = [r.duration_s for r in report.records if r.duration_s > 0.0]
    if durations:
        indicators["amendment_latency_seconds"] = max(durations)
    return indicators


def deterministic_slice(indicators: Mapping[str, float]) -> dict[str, float]:
    """The replay-invariant indicators (bench's compared surface)."""
    return {
        k: indicators[k] for k in DETERMINISTIC_INDICATORS if k in indicators
    }


__all__ = [
    "DETERMINISTIC_INDICATORS",
    "GATEWAY_INDICATORS",
    "SLOError",
    "SLOPolicy",
    "SLOReport",
    "SLOResult",
    "SLOSpec",
    "deterministic_slice",
    "gateway_indicators",
    "online_indicators",
]
