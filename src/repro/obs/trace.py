"""Span-based tracing for the scheduling pipeline.

A *span* is one timed region of the pipeline -- a Phase-1 solve, one
SORP round, a simulation run -- recorded as an immutable
:class:`SpanRecord`.  Usage::

    with tracer.span("ivsp.video", video=video_id, requests=n) as span:
        fs = scheduler.schedule_file(...)
        span.set(deliveries=len(fs.deliveries))

Spans nest: the tracer keeps an active-span stack, so each record knows
its parent span's name.  Span *counts and attributes* are deterministic
for a seeded batch (they describe the work graph); *durations* are wall
time and are intentionally kept out of the metrics registry so that
cross-backend registry equality holds bit-exactly.

Worker processes and threads record into their own tracer and the
Phase-1 engine merges the records back in shard order
(:meth:`Tracer.absorb`), mirroring how worker cache statistics merge.
Records shipped from another process keep their durations but their
``start`` offsets live in that process's clock domain.

:class:`NullTracer` is the default everywhere: ``span()`` returns one
shared inert context manager, so disabled tracing costs a method call
and never allocates per span.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``span_id``/``parent_id`` stitch the records into a tree: ids are
    small integers allocated in span-open order (1-based; ``parent_id``
    0 marks a root).  Records absorbed from worker shards are remapped
    into the absorbing tracer's id space, so the merged trace is one
    consistent tree -- the input of the critical-path reducer
    (:mod:`repro.obs.critpath`).  ``parent`` keeps the enclosing span's
    *name* for human-readable filtering.
    """

    name: str
    start: float  # seconds since the tracer's epoch (perf_counter domain)
    duration: float  # seconds
    parent: str | None = None
    attrs: tuple[tuple[str, Any], ...] = ()
    span_id: int = 0
    parent_id: int = 0

    @property
    def attributes(self) -> dict[str, Any]:
        return dict(self.attrs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (one JSONL line in trace exports)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "parent": self.parent,
            "attrs": self.attributes,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class _ActiveSpan:
    """Context manager that measures one region and records it on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_parent", "_span_id",
                 "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._t0 = 0.0
        self._parent: str | None = None
        self._span_id = 0
        self._parent_id = 0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack
        self._parent = stack[-1] if stack else None
        self._parent_id = tracer._id_stack[-1] if tracer._id_stack else 0
        self._span_id = tracer._next_id
        tracer._next_id += 1
        stack.append(self._name)
        tracer._id_stack.append(self._span_id)
        self._t0 = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = self._tracer._clock()
        self._tracer._stack.pop()
        self._tracer._id_stack.pop()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._tracer._records.append(
            SpanRecord(
                name=self._name,
                start=self._t0 - self._tracer._epoch,
                duration=t1 - self._t0,
                parent=self._parent,
                attrs=tuple(sorted(self._attrs.items())),
                span_id=self._span_id,
                parent_id=self._parent_id,
            )
        )
        return False


class Tracer:
    """Collects :class:`SpanRecord` instances for one run.

    Args:
        clock: Monotonic time source (seconds); injectable for
            deterministic tests.  Defaults to :func:`time.perf_counter`.

    Not thread-safe: concurrent shard solves each get their own tracer
    (via :meth:`repro.obs.telemetry.Observability.child`) and are merged
    afterwards in deterministic shard order.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self._records: list[SpanRecord] = []
        self._stack: list[str] = []
        self._id_stack: list[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        return _ActiveSpan(self, name, attrs)

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """Finished spans in completion order."""
        return tuple(self._records)

    def counts(self) -> dict[str, int]:
        """Span count per name (deterministic for a seeded batch)."""
        out: dict[str, int] = {}
        for r in self._records:
            out[r.name] = out.get(r.name, 0) + 1
        return dict(sorted(out.items()))

    def absorb(self, records: Iterable[SpanRecord], *, parent: str | None = None) -> None:
        """Append records produced elsewhere (worker shards).

        ``parent`` re-parents *root* records (those without a parent of
        their own) under a local span name, so worker-side ``ivsp.video``
        spans hang off the engine's ``ivsp`` span in the merged trace.

        Span ids are remapped by a constant offset into this tracer's id
        space; root records additionally get the currently-open span's
        id as their ``parent_id`` (the engine absorbs shards *inside*
        its own ``ivsp`` span), so the merged records still form one
        consistent tree.
        """
        records = tuple(records)
        if not records:
            return
        offset = self._next_id - 1
        anchor_id = self._id_stack[-1] if self._id_stack else 0
        max_seen = 0
        for r in records:
            max_seen = max(max_seen, r.span_id)
            pname = r.parent
            if r.parent_id:
                pid = r.parent_id + offset
            else:
                pid = anchor_id if parent is not None else 0
                if parent is not None and pname is None:
                    pname = parent
            self._records.append(
                SpanRecord(
                    r.name,
                    r.start,
                    r.duration,
                    pname,
                    r.attrs,
                    span_id=r.span_id + offset if r.span_id else 0,
                    parent_id=pid,
                )
            )
        self._next_id = offset + max_seen + 1


class _NullSpan:
    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Inert tracer: one shared span object, records nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        return ()

    def counts(self) -> dict[str, int]:
        return {}

    def absorb(self, records: Iterable[SpanRecord], *, parent: str | None = None) -> None:
        pass


NULL_TRACER = NullTracer()
