"""Request-lifecycle audit journal: deterministic wide events.

The metrics registry answers "how many"; the :class:`RequestJournal`
answers "what happened to request R and why".  Every phase of the
pipeline emits *wide events* -- one self-contained record per decision:

=================  ==========================================================
kind               emitted when
=================  ==========================================================
``admitted``       :meth:`repro.service.VORService.reserve` accepts a booking
``rejected``       the same call refuses one (unknown title, lead time, ...)
``phase1-assigned``  the Phase-1 greedy commits a delivery (chosen source,
                   route, Ψ_C/Ψ_D split)
``overflowed``     SORP detects an initial overflow situation
``sorp-placed``    SORP commits a victim reschedule
``cycle-closed``   the rolling scheduler finishes a cycle
``fault-hit``      contingency recovery classifies a request of an impacted
                   video
``saved``/``lost``  ... and records its outcome
``amended``        :meth:`~repro.service.VORService.amend_cycle` patches the
                   cycle
``online-batch``   the online loop settles one debounced amendment batch
``shed``           :meth:`~repro.service.VORService.shed_pending` drops a
                   pending reservation
``horizon-cycle``  the horizon orchestrator settles one cycle of a
                   multi-cycle run
``migration``      the between-cycle migration planner decides one video's
                   replica move (accepted or rejected, with pricing)
``resumed``        the carryover ledger classifies an interrupted stream as
                   resumable (blocks survived; only the tail re-ships)
``restarted``      ... or as restarted from byte zero (and why)
``quoted``         the admission gateway prices a booking (basis + Ψ split)
``gate-admitted``  ... and admits it into the solver-bound batch
``gate-rejected``  ... or refuses it (validity pre-screen or policy reason)
``gate-queued``    ... or parks it in the bounded pending queue
``gate-shed``      ... or sheds it (queue overflow / final seal)
``cycle-sealed``   the gateway seals a cycle's batch (intake counters +
                   quote-vs-realized reconciliation totals)
=================  ==========================================================

Determinism contract: the journal is **append-only** and records *no wall
clock* -- only the decisions, which are bit-identical across Phase-1
backends for a seeded run.  Worker shards journal into their own child
journal and the engine absorbs them back in deterministic shard order
(exactly like :class:`~repro.obs.metrics.MetricsRegistry` merges), so the
merged event sequence equals the serial run's.  Replaying the same feed
twice therefore produces byte-identical JSONL exports.

Requests carry no synthetic id; :func:`request_key` derives a stable one
from the request's identifying fields.  Two identical reservations (same
user, title, start, neighborhood) share a key and therefore a timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ReproError


class JournalError(ReproError):
    """Invalid journal emission or query."""


#: Every event kind the pipeline emits (see the module docstring).
EVENT_KINDS = (
    "admitted",
    "rejected",
    "phase1-assigned",
    "overflowed",
    "sorp-placed",
    "cycle-closed",
    "fault-hit",
    "saved",
    "lost",
    "amended",
    "online-batch",
    "shed",
    "horizon-cycle",
    "migration",
    "resumed",
    "restarted",
    "quoted",
    "gate-admitted",
    "gate-rejected",
    "gate-queued",
    "gate-shed",
    "cycle-sealed",
)

_EVENT_KIND_SET = frozenset(EVENT_KINDS)


def request_key(request: Any) -> str:
    """Stable request id derived from the identifying fields.

    ``Request`` is a frozen value object without a synthetic id; the key
    is deterministic and survives pickling across process workers.
    """
    return (
        f"{request.user_id}/{request.video_id}"
        f"@{request.start_time:g}->{request.local_storage}"
    )


@dataclass(frozen=True)
class JournalEvent:
    """One wide event.  Immutable and picklable (worker shards ship them).

    ``seq`` is the event's position in its journal; on absorb the events
    are re-sequenced into the parent, so a merged journal's ``seq`` runs
    0..N-1 in the deterministic merged order.
    """

    seq: int
    kind: str
    request_id: str | None = None
    video_id: str | None = None
    attrs: tuple[tuple[str, Any], ...] = ()

    @property
    def attributes(self) -> dict[str, Any]:
        return dict(self.attrs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (one JSONL line in journal exports)."""
        return {
            "seq": self.seq,
            "event": self.kind,
            "request_id": self.request_id,
            "video_id": self.video_id,
            "attrs": {k: _jsonable(v) for k, v in self.attrs},
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


class RequestJournal:
    """Append-only, deterministic event log (see the module docstring).

    Not thread-safe: concurrent shard solves each get their own journal
    (via :meth:`repro.obs.telemetry.Observability.child`) and are merged
    afterwards in deterministic shard order via :meth:`absorb`.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: list[JournalEvent] = []

    def emit(
        self,
        kind: str,
        *,
        request: Any = None,
        request_id: str | None = None,
        video_id: str | None = None,
        **attrs: Any,
    ) -> None:
        """Record one event.

        ``request`` (a :class:`~repro.workload.requests.Request`) fills
        ``request_id`` and ``video_id``; attribute values must be
        JSON-serializable scalars or (nested) tuples of them.
        """
        if kind not in _EVENT_KIND_SET:
            raise JournalError(
                f"unknown event kind {kind!r} (expected one of {EVENT_KINDS})"
            )
        if request is not None:
            request_id = request_key(request)
            video_id = request.video_id
        self._events.append(
            JournalEvent(
                seq=len(self._events),
                kind=kind,
                request_id=request_id,
                video_id=video_id,
                attrs=tuple(sorted(attrs.items())),
            )
        )

    @property
    def events(self) -> tuple[JournalEvent, ...]:
        """Every event in append order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(self._events)

    def counts(self) -> dict[str, int]:
        """Event count per kind (deterministic for a seeded run)."""
        out: dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return dict(sorted(out.items()))

    def absorb(self, events: Iterable[JournalEvent]) -> None:
        """Append events journaled elsewhere (worker shards), re-sequenced.

        Callers absorb shards in deterministic shard order, so the merged
        sequence equals what a serial run would have appended directly.
        """
        for e in events:
            self._events.append(replace(e, seq=len(self._events)))

    # -- queries -------------------------------------------------------------

    def request_ids(self) -> tuple[str, ...]:
        """Distinct request ids in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self._events:
            if e.request_id is not None:
                seen.setdefault(e.request_id)
        return tuple(seen)

    def explain(self, request_id: str) -> tuple[JournalEvent, ...]:
        """The request's timeline, in journal order.

        Includes the request's own events plus video-scoped events (no
        ``request_id`` of their own) for any video the request touched --
        so a timeline shows the SORP victim commits and overflow
        situations that moved the request's file around.
        """
        videos = {
            e.video_id
            for e in self._events
            if e.request_id == request_id and e.video_id is not None
        }
        return tuple(
            e
            for e in self._events
            if e.request_id == request_id
            or (
                e.request_id is None
                and e.video_id is not None
                and e.video_id in videos
            )
        )

    def format_timeline(self, request_id: str) -> str:
        """Human-readable ``explain`` rendering (one line per event)."""
        events = self.explain(request_id)
        if not events:
            return f"no events for request {request_id!r}"
        lines = [f"timeline for {request_id}:"]
        for e in events:
            attrs = ", ".join(f"{k}={_fmt(v)}" for k, v in e.attrs)
            scope = "" if e.request_id is not None else f" [video {e.video_id}]"
            lines.append(f"  #{e.seq:<5d} {e.kind}{scope}" + (f"  {attrs}" if attrs else ""))
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, tuple):
        return "(" + ",".join(_fmt(v) for v in value) + ")"
    return str(value)


class NullJournal:
    """Inert journal: records nothing, answers every query empty."""

    enabled = False

    def emit(self, kind: str, **kw: Any) -> None:
        pass

    @property
    def events(self) -> tuple[JournalEvent, ...]:
        return ()

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(())

    def counts(self) -> dict[str, int]:
        return {}

    def absorb(self, events: Iterable[JournalEvent]) -> None:
        pass

    def request_ids(self) -> tuple[str, ...]:
        return ()

    def explain(self, request_id: str) -> tuple[JournalEvent, ...]:
        return ()

    def format_timeline(self, request_id: str) -> str:
        return "journal disabled"


NULL_JOURNAL = NullJournal()


def write_journal_jsonl(
    path: str | Path, journal: RequestJournal | NullJournal
) -> Path:
    """Write the journal as JSON Lines (one event object per line).

    Keys are sorted, so identical journals produce byte-identical files
    -- the replay-determinism artifact CI diffs.
    """
    path = Path(path)
    with path.open("w") as fh:
        for event in journal.events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
    return path


def load_journal_jsonl(path: str | Path) -> RequestJournal:
    """Rebuild a journal from a JSONL export (for offline ``explain``).

    Raises :class:`JournalError` (with a ``path:lineno`` diagnostic) on
    non-JSON lines, malformed events, and events whose kind is not in the
    current :data:`EVENT_KINDS` taxonomy -- a journal written by a newer
    (or incompatible older) version of this library must fail loudly, not
    crash downstream consumers with a raw ``KeyError``.
    """
    journal = RequestJournal()
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}:{lineno}: not JSON: {exc}") from exc
        try:
            kind = doc["event"]
        except (KeyError, TypeError) as exc:
            raise JournalError(
                f"{path}:{lineno}: malformed journal event: {exc}"
            ) from exc
        if kind not in _EVENT_KIND_SET:
            raise JournalError(
                f"{path}:{lineno}: unknown event kind {kind!r} -- this "
                f"journal does not match the current event taxonomy "
                f"({len(EVENT_KINDS)} kinds); re-export it with this "
                f"version of the library"
            )
        try:
            journal._events.append(
                JournalEvent(
                    seq=len(journal._events),
                    kind=kind,
                    request_id=doc.get("request_id"),
                    video_id=doc.get("video_id"),
                    attrs=tuple(
                        sorted(
                            (k, _tupled(v))
                            for k, v in doc.get("attrs", {}).items()
                        )
                    ),
                )
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise JournalError(
                f"{path}:{lineno}: malformed journal event: {exc}"
            ) from exc
    return journal


def _tupled(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


__all__ = [
    "EVENT_KINDS",
    "JournalError",
    "JournalEvent",
    "NullJournal",
    "NULL_JOURNAL",
    "RequestJournal",
    "load_journal_jsonl",
    "request_key",
    "write_journal_jsonl",
]
