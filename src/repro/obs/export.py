"""Exporters: Prometheus text exposition, JSON snapshot, JSONL trace log.

Three formats, one registry:

* :func:`prometheus_text` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``le`` histogram
  buckets, ``_sum``/``_count`` series), ready for a scrape endpoint or
  a textfile collector.
* :func:`json_snapshot` / :func:`write_metrics` -- the structured JSON
  dump of a :class:`~repro.obs.telemetry.RunTelemetry` bundle: metric
  families, per-phase wall-time totals, and the raw span list.
  ``write_metrics`` picks the format from the file suffix (``.prom`` /
  ``.txt`` → Prometheus text, everything else → JSON).
* :func:`write_trace_jsonl` -- one JSON object per span, append-friendly
  and greppable (the structured event log).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import Histogram, MetricsRegistry, NullRegistry
from repro.obs.telemetry import Observability, RunTelemetry
from repro.obs.trace import SpanRecord


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry | NullRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for fam in registry.families():
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for key in sorted(fam.children):
            child = fam.children[key]
            labels = dict(key)
            if isinstance(child, Histogram):
                for le, cumulative in child.cumulative_counts():
                    lines.append(
                        f"{fam.name}_bucket"
                        f"{_fmt_labels(labels, {'le': le})} {cumulative}"
                    )
                lines.append(f"{fam.name}_sum{_fmt_labels(labels)} {child.sum:g}")
                lines.append(f"{fam.name}_count{_fmt_labels(labels)} {child.count}")
            else:
                lines.append(f"{fam.name}{_fmt_labels(labels)} {child.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(telemetry: RunTelemetry, *, indent: int | None = 2) -> str:
    """Serialize a telemetry bundle as a JSON document."""
    return json.dumps(telemetry.to_json_dict(), indent=indent, sort_keys=False)


def write_metrics(path: str | Path, obs: Observability | RunTelemetry) -> Path:
    """Write a metrics snapshot; format chosen from the suffix.

    ``.prom``/``.txt`` files get the Prometheus exposition (metrics
    only); everything else gets the full JSON snapshot (metrics +
    phases + spans).
    """
    path = Path(path)
    telemetry = obs.telemetry() if isinstance(obs, Observability) else obs
    if path.suffix in (".prom", ".txt"):
        if isinstance(obs, Observability):
            path.write_text(prometheus_text(obs.metrics))
        else:  # re-render from the snapshot is lossy; require the handle
            raise ValueError(
                "Prometheus export needs the live Observability handle"
            )
    else:
        path.write_text(json_snapshot(telemetry) + "\n")
    return path


def write_trace_jsonl(path: str | Path, spans: Iterable[SpanRecord]) -> Path:
    """Write spans as JSON Lines (one span object per line)."""
    path = Path(path)
    with path.open("w") as fh:
        for record in spans:
            fh.write(json.dumps(record.to_dict(), sort_keys=False))
            fh.write("\n")
    return path
