"""Process-worker-safe metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`).  Three design rules make it fit the scheduling
pipeline:

* **Deterministic merges.**  Histograms use *fixed* bucket boundaries
  declared at first registration, counters are plain integer/float sums,
  and gauges carry an explicit merge mode (``last``/``max``/``min``/
  ``sum``).  Merging the registries returned by process-pool workers in
  shard order therefore yields exactly the numbers a serial run records
  (see ``tests/obs``), the same guarantee the Phase-1 engine already
  gives for schedules.

* **Determinism flags.**  Some families are *backend-invariant* for a
  seeded batch (Ψ evaluation counts, deliveries, residencies); others --
  cache hit/miss splits, shard counts -- legitimately depend on worker
  layout and cache temperature.  Families register with
  ``deterministic=False`` to be excluded from cross-backend equality
  checks (``snapshot(deterministic_only=True)``).

* **Null by default.**  :class:`NullRegistry` answers every call with a
  shared no-op instrument, so instrumented call sites cost one method
  call when observability is off and the Ψ_C hot path is never touched
  at all (the cost model keeps plain ``int`` counters; see
  ``tests/obs/test_null_overhead.py``).

Registries and instruments are picklable: process workers build a fresh
registry per shard and ship it back for merging.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.errors import ReproError


class MetricsError(ReproError):
    """Invalid metric registration, observation, or merge."""


#: Fixed bucket boundary presets (upper bounds; ``+Inf`` is implicit).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
DOLLAR_BUCKETS: tuple[float, ...] = (0, 1, 10, 100, 1e3, 1e4, 1e5, 1e6)
GIGABYTE = 1e9
BYTES_BUCKETS: tuple[float, ...] = (
    1e6, 1e7, 1e8, 1e9, 5e9, 1e10, 5e10, 1e11,
)
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

_GAUGE_MODES = ("last", "max", "min", "sum")

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (exact for integer increments)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _merge(self, other: "Counter") -> None:
        self._value += other._value


class Gauge:
    """Point-in-time value with an explicit merge mode.

    ``max``/``min`` gauges also apply their mode on :meth:`set`, so peak
    trackers can be set repeatedly; ``last`` overwrites and ``sum``
    accumulates.

    **Merge contract for ``mode="last"``:** shard merges happen in
    deterministic shard order (``RequestBatch.by_video()`` order, the
    same across serial/thread/process backends), and a shard that never
    touched the gauge does not overwrite it on merge.  "Last" across a
    sharded run therefore means *the last touched shard in shard order*
    -- NOT wall-clock last-writer, which would be racy under threads and
    meaningless across processes.  Consequence: a ``last`` gauge set by
    multiple shards to different values is order-defined but rarely what
    you want -- prefer ``max``/``min``/``sum`` for cross-shard
    aggregation, and reserve ``last`` for values set once per run (or
    only by the coordinating engine).  Pinned by
    ``tests/obs/test_metrics.py::TestGaugeLastMergeContract`` and the
    cross-backend test in ``tests/obs/test_pipeline.py``.
    """

    __slots__ = ("_value", "_mode", "_touched")

    def __init__(self, mode: str = "last") -> None:
        self._mode = mode
        self._value: float = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        if self._touched:
            if self._mode == "max":
                value = max(self._value, value)
            elif self._mode == "min":
                value = min(self._value, value)
            elif self._mode == "sum":
                value = self._value + value
        self._value = value
        self._touched = True

    @property
    def value(self) -> float:
        return self._value

    def _merge(self, other: "Gauge") -> None:
        if other._touched:
            self.set(other._value)


class Histogram:
    """Fixed-boundary histogram (merge-exact bucket counts).

    ``boundaries`` are inclusive upper bounds; an implicit ``+Inf``
    bucket catches the tail.  Bucket counts are integers, so merging is
    associative and exact; ``sum`` is a float and is exact whenever the
    observed values are integers (which is what worker-side call sites
    observe -- see the module docstring).
    """

    __slots__ = ("boundaries", "_counts", "_sum", "_count")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        if not boundaries:
            raise MetricsError("histogram needs at least one bucket boundary")
        ordered = tuple(float(b) for b in boundaries)
        if list(ordered) != sorted(set(ordered)):
            raise MetricsError(
                f"bucket boundaries must be strictly increasing: {boundaries}"
            )
        if any(math.isnan(b) for b in ordered):
            raise MetricsError("bucket boundaries must not be NaN")
        self.boundaries = ordered
        self._counts = [0] * (len(ordered) + 1)  # last slot = +Inf
        self._sum: float = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self._counts[i] += 1
                break
        else:
            self._counts[-1] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> dict[str, int]:
        """Non-cumulative per-bucket counts keyed by upper bound."""
        out = {_fmt_bound(b): c for b, c in zip(self.boundaries, self._counts)}
        out["+Inf"] = self._counts[-1]
        return out

    def cumulative_counts(self) -> list[tuple[str, int]]:
        """Prometheus-style cumulative ``le`` buckets (ends at +Inf)."""
        out: list[tuple[str, int]] = []
        running = 0
        for b, c in zip(self.boundaries, self._counts):
            running += c
            out.append((_fmt_bound(b), running))
        out.append(("+Inf", running + self._counts[-1]))
        return out

    def _merge(self, other: "Histogram") -> None:
        if other.boundaries != self.boundaries:
            raise MetricsError(
                f"cannot merge histograms with different boundaries: "
                f"{self.boundaries} vs {other.boundaries}"
            )
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self._sum += other._sum
        self._count += other._count


def _fmt_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


class _Family:
    """One named metric with its labelled children."""

    __slots__ = ("name", "kind", "help", "deterministic", "mode", "boundaries",
                 "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        deterministic: bool,
        mode: str | None = None,
        boundaries: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.deterministic = deterministic
        self.mode = mode
        self.boundaries = boundaries
        self.children: dict[LabelKey, Counter | Gauge | Histogram] = {}

    def signature(self) -> tuple:
        return (self.name, self.kind, self.mode, self.boundaries)

    def child(self, key: LabelKey) -> Counter | Gauge | Histogram:
        inst = self.children.get(key)
        if inst is None:
            if self.kind == "counter":
                inst = Counter()
            elif self.kind == "gauge":
                inst = Gauge(self.mode or "last")
            else:
                inst = Histogram(self.boundaries or COUNT_BUCKETS)
            self.children[key] = inst
        return inst


class MetricsRegistry:
    """A collection of named, labelled metric families.

    Instruments are created lazily on first access::

        reg = MetricsRegistry()
        reg.counter("vor_deliveries_total").inc()
        reg.gauge("vor_storage_peak_reserved_bytes", mode="max",
                  location="IS3").set(4.2e9)
        reg.histogram("vor_requests_per_video",
                      boundaries=COUNT_BUCKETS).observe(12)

    Re-registering a name with a conflicting kind, gauge mode, or bucket
    layout raises :class:`MetricsError`; re-registering compatibly
    returns the existing child, so call sites need no setup phase.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(
        self,
        name: str,
        *,
        help: str = "",
        deterministic: bool = True,
        **labels: Any,
    ) -> Counter:
        fam = self._family(name, "counter", help, deterministic)
        return fam.child(_label_key(labels))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        *,
        mode: str = "last",
        help: str = "",
        deterministic: bool = True,
        **labels: Any,
    ) -> Gauge:
        if mode not in _GAUGE_MODES:
            raise MetricsError(
                f"gauge mode must be one of {_GAUGE_MODES}, got {mode!r}"
            )
        fam = self._family(name, "gauge", help, deterministic, mode=mode)
        return fam.child(_label_key(labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        *,
        boundaries: tuple[float, ...] = COUNT_BUCKETS,
        help: str = "",
        deterministic: bool = True,
        **labels: Any,
    ) -> Histogram:
        fam = self._family(
            name, "histogram", help, deterministic,
            boundaries=tuple(float(b) for b in boundaries),
        )
        return fam.child(_label_key(labels))  # type: ignore[return-value]

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        deterministic: bool,
        mode: str | None = None,
        boundaries: tuple[float, ...] | None = None,
    ) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help, deterministic, mode, boundaries)
            self._families[name] = fam
            return fam
        candidate = (name, kind, mode if kind == "gauge" else None,
                     boundaries if kind == "histogram" else None)
        if fam.signature() != candidate:
            raise MetricsError(
                f"metric {name!r} re-registered incompatibly: "
                f"{fam.signature()} vs {candidate}"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry | NullRegistry") -> None:
        """Absorb ``other`` (e.g. a worker-shard registry) into this one."""
        if isinstance(other, NullRegistry):
            return
        for name, fam in other._families.items():
            mine = self._family(
                name, fam.kind, fam.help, fam.deterministic,
                fam.mode, fam.boundaries,
            )
            for key, child in fam.children.items():
                mine.child(key)._merge(child)  # type: ignore[arg-type]

    def families(self) -> Iterator[_Family]:
        """Families in registration-independent (sorted-name) order."""
        for name in sorted(self._families):
            yield self._families[name]

    def snapshot(self, *, deterministic_only: bool = False) -> dict:
        """JSON-serializable dump of every family.

        With ``deterministic_only=True`` the dump contains exactly the
        families whose values are invariant across Phase-1 backends for a
        seeded batch -- the subset the cross-backend equality tests (and
        the PR acceptance criteria) compare.
        """
        out: dict[str, dict] = {}
        for fam in self.families():
            if deterministic_only and not fam.deterministic:
                continue
            values = []
            for key in sorted(fam.children):
                child = fam.children[key]
                entry: dict[str, Any] = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    entry["buckets"] = child.bucket_counts()
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                else:
                    entry["value"] = child.value
                values.append(entry)
            out[fam.name] = {
                "kind": fam.kind,
                "help": fam.help,
                "deterministic": fam.deterministic,
                "values": values,
            }
        return out


# -- the disabled-by-default null implementation ------------------------------


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    value = 0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    value = 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    count = 0
    sum = 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """No-op registry: every accessor returns a shared inert instrument.

    Instrumented call sites pay one attribute lookup and one call; no
    allocation, no bookkeeping.  ``snapshot()`` is empty and ``merge``
    discards its argument.
    """

    enabled = False

    def counter(self, name: str, **kw: Any) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **kw: Any) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **kw: Any) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def merge(self, other: object) -> None:
        pass

    def families(self) -> Iterator[_Family]:
        return iter(())

    def snapshot(self, *, deterministic_only: bool = False) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()
