"""The observability handle threaded through the pipeline.

:class:`Observability` bundles a metrics registry with a tracer and is
what every instrumented component accepts (``obs=``).  The module-level
:data:`NULL_OBS` -- a null registry plus a null tracer -- is the default
everywhere, so uninstrumented callers pay near-zero cost and produce
bit-identical schedules.

Enable it explicitly::

    obs = Observability.on()
    result = VideoScheduler(topo, catalog, obs=obs).solve(batch)
    telemetry = obs.telemetry()          # RunTelemetry snapshot
    print(telemetry.phase_totals()["sorp"]["total_seconds"])

:class:`RunTelemetry` is the export-ready snapshot: the metrics dump,
the span list, and per-phase wall-time totals.  Cycle closes attach one
to :class:`repro.service.CycleReport`, simulation runs to
:class:`repro.sim.engine.SimulationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.events import NullJournal, RequestJournal, NULL_JOURNAL
from repro.obs.metrics import MetricsRegistry, NullRegistry, NULL_REGISTRY
from repro.obs.trace import NullTracer, SpanRecord, Tracer, NULL_TRACER


@dataclass(frozen=True)
class RunTelemetry:
    """Point-in-time bundle of everything the observability layer saw."""

    metrics: dict
    spans: tuple[SpanRecord, ...] = ()

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Wall-time aggregation per span name.

        Returns ``{name: {"count": n, "total_seconds": s,
        "max_seconds": m}}`` -- the per-phase wall-time view the JSON
        snapshot exposes (ivsp, sorp, overflow, simulate, ...).
        """
        out: dict[str, dict[str, float]] = {}
        for r in self.spans:
            agg = out.setdefault(
                r.name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            agg["count"] += 1
            agg["total_seconds"] += r.duration
            agg["max_seconds"] = max(agg["max_seconds"], r.duration)
        return dict(sorted(out.items()))

    def to_json_dict(self) -> dict[str, Any]:
        """The ``--metrics-out`` JSON snapshot layout."""
        return {
            "metrics": self.metrics,
            "phases": self.phase_totals(),
            "spans": [r.to_dict() for r in self.spans],
        }


class Observability:
    """One registry + one tracer + one journal, passed down the stack.

    The request journal (:class:`repro.obs.events.RequestJournal`) is
    opt-in even on a live handle -- ``Observability.on(journal=True)`` --
    because journaling allocates one record per scheduling decision,
    which metrics-only callers should not pay for.
    """

    __slots__ = ("metrics", "tracer", "journal")

    def __init__(
        self,
        metrics: MetricsRegistry | NullRegistry,
        tracer: Tracer | NullTracer,
        journal: RequestJournal | NullJournal | None = None,
    ):
        self.metrics = metrics
        self.tracer = tracer
        self.journal = journal if journal is not None else NULL_JOURNAL

    @classmethod
    def on(
        cls,
        *,
        clock: Callable[[], float] | None = None,
        journal: bool = False,
    ) -> "Observability":
        """A live observability handle (fresh registry + tracer).

        ``journal=True`` additionally attaches a fresh
        :class:`~repro.obs.events.RequestJournal` recording the
        request-lifecycle wide events.
        """
        return cls(
            MetricsRegistry(),
            Tracer(clock),
            RequestJournal() if journal else NULL_JOURNAL,
        )

    @classmethod
    def off(cls) -> "Observability":
        """The inert handle (shared null instruments)."""
        return NULL_OBS

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    def child(self) -> "Observability":
        """A fresh handle of the same enabledness for one worker shard.

        Shard solves record into their child and the engine merges the
        children back in shard order, keeping the parent tracer's span
        stack single-threaded.
        """
        if not self.enabled:
            return NULL_OBS
        return Observability.on(journal=self.journal.enabled)

    def absorb(self, other: "Observability", *, parent: str | None = None) -> None:
        """Merge a child handle's metrics, spans and journal into this one."""
        if not self.enabled or not other.enabled:
            return
        self.metrics.merge(other.metrics)
        self.tracer.absorb(other.tracer.records, parent=parent)
        self.journal.absorb(other.journal.events)

    def telemetry(self, *, deterministic_only: bool = False) -> RunTelemetry:
        """Snapshot the current metrics + spans as a :class:`RunTelemetry`."""
        return RunTelemetry(
            metrics=self.metrics.snapshot(deterministic_only=deterministic_only),
            spans=self.tracer.records,
        )


#: The default, inert handle.  Shared: never mutated, never records.
NULL_OBS = Observability(NULL_REGISTRY, NULL_TRACER, NULL_JOURNAL)
