"""End-to-end observability for the VOR scheduling pipeline.

Layout:

* :mod:`repro.obs.metrics`   -- counters, gauges, fixed-bucket histograms;
  deterministic merges; :class:`NullRegistry` no-op default
* :mod:`repro.obs.trace`     -- span-based tracing (``ivsp``, ``sorp``,
  ``overflow``, ``simulate``, ...); :class:`NullTracer` no-op default
* :mod:`repro.obs.telemetry` -- the :class:`Observability` handle threaded
  through the pipeline and the :class:`RunTelemetry` snapshot bundle
* :mod:`repro.obs.export`    -- Prometheus text, JSON snapshot, JSONL trace
* :mod:`repro.obs.logs`      -- stdlib-logging conventions + CLI configuration

The metric catalog and span taxonomy are documented in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    json_snapshot,
    prometheus_text,
    write_metrics,
    write_trace_jsonl,
)
from repro.obs.logs import configure_logging, parse_level
from repro.obs.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    DOLLAR_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.telemetry import NULL_OBS, Observability, RunTelemetry
from repro.obs.trace import NullTracer, SpanRecord, Tracer, NULL_TRACER

__all__ = [
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "DOLLAR_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "NULL_TRACER",
    "NULL_OBS",
    "Observability",
    "RunTelemetry",
    "configure_logging",
    "parse_level",
    "json_snapshot",
    "prometheus_text",
    "write_metrics",
    "write_trace_jsonl",
]
