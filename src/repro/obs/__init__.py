"""End-to-end observability for the VOR scheduling pipeline.

Layout:

* :mod:`repro.obs.metrics`   -- counters, gauges, fixed-bucket histograms;
  deterministic merges; :class:`NullRegistry` no-op default
* :mod:`repro.obs.trace`     -- span-based tracing (``ivsp``, ``sorp``,
  ``overflow``, ``simulate``, ...) with stitched span ids;
  :class:`NullTracer` no-op default
* :mod:`repro.obs.events`    -- the deterministic request-lifecycle
  :class:`RequestJournal` of wide events + ``explain(request_id)``
* :mod:`repro.obs.slo`       -- declarative SLOs with error-budget /
  burn-rate accounting (``vor-repro slo-check``)
* :mod:`repro.obs.critpath`  -- critical-path reducer over stitched traces
* :mod:`repro.obs.telemetry` -- the :class:`Observability` handle threaded
  through the pipeline and the :class:`RunTelemetry` snapshot bundle
* :mod:`repro.obs.export`    -- Prometheus text, JSON snapshot, JSONL trace
* :mod:`repro.obs.logs`      -- stdlib-logging conventions + CLI configuration

The metric catalog, event taxonomy, SLO schema, and span taxonomy are
documented in ``docs/OBSERVABILITY.md``.
"""

from repro.obs.critpath import (
    CriticalPath,
    critical_paths,
    dominant_path,
    format_critical_path,
    format_critical_paths,
)
from repro.obs.events import (
    EVENT_KINDS,
    JournalError,
    JournalEvent,
    NullJournal,
    NULL_JOURNAL,
    RequestJournal,
    load_journal_jsonl,
    request_key,
    write_journal_jsonl,
)
from repro.obs.export import (
    json_snapshot,
    prometheus_text,
    write_metrics,
    write_trace_jsonl,
)
from repro.obs.logs import configure_logging, parse_level
from repro.obs.slo import (
    GATEWAY_INDICATORS,
    SLOError,
    SLOPolicy,
    SLOReport,
    SLOResult,
    SLOSpec,
    gateway_indicators,
    online_indicators,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    DOLLAR_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.telemetry import NULL_OBS, Observability, RunTelemetry
from repro.obs.trace import NullTracer, SpanRecord, Tracer, NULL_TRACER

__all__ = [
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "DOLLAR_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "CriticalPath",
    "EVENT_KINDS",
    "GATEWAY_INDICATORS",
    "Gauge",
    "Histogram",
    "JournalError",
    "JournalEvent",
    "MetricsError",
    "MetricsRegistry",
    "NullJournal",
    "NULL_JOURNAL",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "RequestJournal",
    "SLOError",
    "SLOPolicy",
    "SLOReport",
    "SLOResult",
    "SLOSpec",
    "SpanRecord",
    "Tracer",
    "NULL_TRACER",
    "NULL_OBS",
    "Observability",
    "RunTelemetry",
    "configure_logging",
    "critical_paths",
    "dominant_path",
    "format_critical_path",
    "format_critical_paths",
    "gateway_indicators",
    "json_snapshot",
    "load_journal_jsonl",
    "online_indicators",
    "parse_level",
    "prometheus_text",
    "request_key",
    "write_journal_jsonl",
    "write_metrics",
    "write_trace_jsonl",
]
