"""Critical-path analysis over stitched span trees.

:class:`~repro.obs.trace.SpanRecord` carries ``span_id``/``parent_id``
ids that survive thread/process worker merges, so the finished records
of a run form one (or several, one per root) consistent trees.  This
module reduces those trees to the question profilers ask: *which chain
of spans dominated the wall time?*

The reducer walks each root, always descending into the child with the
largest duration (ties broken by start time, then name, then span id --
so the report is deterministic for a fixed trace), and reports the
chain with per-span *self time* (duration minus direct children,
clamped at zero) so the dominating frame inside the chain is visible::

    paths = critical_paths(obs.tracer.records)
    print(format_critical_path(paths[0]))

Durations are wall time, so the numbers vary run to run -- the *shape*
(which spans exist, who parents whom) is deterministic for a seeded
batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.trace import SpanRecord


@dataclass(frozen=True)
class PathStep:
    """One span on a critical path."""

    name: str
    duration: float
    self_time: float
    span_id: int
    depth: int
    share: float  # fraction of the path root's duration

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration": self.duration,
            "self_time": self.self_time,
            "span_id": self.span_id,
            "depth": self.depth,
            "share": self.share,
        }


@dataclass(frozen=True)
class CriticalPath:
    """The dominating span chain under one root span."""

    steps: tuple[PathStep, ...]

    @property
    def root(self) -> PathStep:
        return self.steps[0]

    @property
    def total_seconds(self) -> float:
        return self.steps[0].duration if self.steps else 0.0

    @property
    def dominant(self) -> PathStep:
        """The step with the largest self time (the actual hot frame)."""
        return max(self.steps, key=lambda s: (s.self_time, -s.depth))

    def to_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "dominant": self.dominant.name,
            "steps": [s.to_dict() for s in self.steps],
        }


def _children_index(
    records: tuple[SpanRecord, ...],
) -> dict[int, list[SpanRecord]]:
    ids = {r.span_id for r in records if r.span_id}
    children: dict[int, list[SpanRecord]] = {}
    for r in records:
        parent = r.parent_id if r.parent_id in ids else 0
        children.setdefault(parent, []).append(r)
    for kids in children.values():
        # Deterministic descent order: biggest first, ties by start/name/id.
        kids.sort(key=lambda r: (-r.duration, r.start, r.name, r.span_id))
    return children


def _self_time(record: SpanRecord, children: dict[int, list[SpanRecord]]) -> float:
    kids = children.get(record.span_id, ()) if record.span_id else ()
    return max(0.0, record.duration - sum(k.duration for k in kids))


def critical_paths(records: Iterable[SpanRecord]) -> tuple[CriticalPath, ...]:
    """One :class:`CriticalPath` per root span, longest root first.

    Records without ids (legacy traces) are treated as roots of their
    own single-step paths.
    """
    records = tuple(records)
    if not records:
        return ()
    children = _children_index(records)
    paths = []
    for root in children.get(0, ()):
        total = root.duration or 1e-12
        steps: list[PathStep] = []
        node, depth = root, 0
        while node is not None:
            steps.append(
                PathStep(
                    name=node.name,
                    duration=node.duration,
                    self_time=_self_time(node, children),
                    span_id=node.span_id,
                    depth=depth,
                    share=node.duration / total,
                )
            )
            kids = children.get(node.span_id, []) if node.span_id else []
            node = kids[0] if kids else None
            depth += 1
        paths.append(CriticalPath(steps=tuple(steps)))
    paths.sort(key=lambda p: (-p.total_seconds, p.root.name, p.root.span_id))
    return tuple(paths)


def dominant_path(records: Iterable[SpanRecord]) -> CriticalPath | None:
    """The longest critical path of the trace, or ``None`` if empty."""
    paths = critical_paths(records)
    return paths[0] if paths else None


def format_critical_path(path: CriticalPath) -> str:
    """Terminal rendering: one indented line per step, hot frame marked."""
    hot = path.dominant
    lines = [f"critical path ({path.total_seconds * 1e3:.2f} ms total):"]
    for step in path.steps:
        marker = " *" if step is hot else ""
        lines.append(
            f"  {'  ' * step.depth}{step.name}  "
            f"{step.duration * 1e3:.2f} ms "
            f"({step.share:5.1%} of root, self {step.self_time * 1e3:.2f} ms)"
            f"{marker}"
        )
    return "\n".join(lines)


def format_critical_paths(
    records: Iterable[SpanRecord], *, limit: int = 3
) -> str:
    """Render the top ``limit`` critical paths of a trace."""
    paths = critical_paths(records)
    if not paths:
        return "no spans recorded"
    return "\n\n".join(format_critical_path(p) for p in paths[:limit])


__all__ = [
    "CriticalPath",
    "PathStep",
    "critical_paths",
    "dominant_path",
    "format_critical_path",
    "format_critical_paths",
]
