"""Stdlib-logging conventions for the ``repro`` package.

Every module that wants to log does the standard thing::

    import logging
    _log = logging.getLogger(__name__)

which roots all library loggers under ``"repro"``.  The library itself
never configures handlers (library best practice); applications -- the
CLI, benchmark harnesses, notebooks -- call :func:`configure_logging`
once to get a human-readable stderr stream at a chosen level::

    from repro.obs.logs import configure_logging
    configure_logging("debug")          # or "info", "warning", ...

The CLI exposes this as ``--log-level``.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: Human-readable default format: time, level, logger, message.
DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DEFAULT_DATEFMT = "%H:%M:%S"

LEVELS = ("debug", "info", "warning", "error", "critical")


def parse_level(level: str | int) -> int:
    """Map a ``--log-level`` string (case-insensitive) to a logging level."""
    if isinstance(level, int):
        return level
    name = level.strip().upper()
    value = logging.getLevelName(name)
    if not isinstance(value, int):
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LEVELS)}"
        )
    return value


def configure_logging(
    level: str | int = "info",
    *,
    stream: TextIO | None = None,
    fmt: str = DEFAULT_FORMAT,
    datefmt: str = DEFAULT_DATEFMT,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previous handler rather than
    stacking duplicates, so tests and REPL sessions can call it freely.
    Returns the ``repro`` logger.
    """
    root = logging.getLogger("repro")
    root.setLevel(parse_level(level))
    for handler in list(root.handlers):
        if getattr(handler, "_repro_managed", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt, datefmt=datefmt))
    handler._repro_managed = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
    return root
