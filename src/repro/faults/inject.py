"""Mapping fault scenarios onto concrete resource effects.

Two consumers need to know *what* a fault breaks:

* the degraded-mode analyzer (:mod:`repro.faults.report`) resolves each
  fault individually and respects its time window;
* the contingency scheduler (:mod:`repro.faults.contingency`) combines the
  whole plan into one conservative :func:`masked_topology` -- failed
  resources removed, degraded ones shrunk -- that the existing Phase-1 +
  SORP machinery can re-solve against without knowing faults exist.

Severity is the remaining fraction of the resource (see
:mod:`repro.faults.plan`); a warehouse brownout scales every link incident
to the warehouse, which is how "the archive can only push so many streams"
is expressed in a model whose warehouses are otherwise infinite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.topology.graph import Topology, edge_key


@dataclass(frozen=True)
class ResourceEffects:
    """The concrete resource impact of one fault (or a combined plan).

    Attributes:
        down_nodes: Nodes completely unusable while the fault is active.
        down_edges: Links completely unusable (canonical keys).
        bandwidth_factors: Per-link remaining-bandwidth fraction in (0, 1).
        capacity_factors: Per-storage remaining-capacity fraction in (0, 1].
    """

    down_nodes: frozenset[str] = frozenset()
    down_edges: frozenset[tuple[str, str]] = frozenset()
    bandwidth_factors: tuple[tuple[tuple[str, str], float], ...] = ()
    capacity_factors: tuple[tuple[str, float], ...] = ()

    @property
    def bandwidth_factor_map(self) -> dict[tuple[str, str], float]:
        return dict(self.bandwidth_factors)

    @property
    def capacity_factor_map(self) -> dict[str, float]:
        return dict(self.capacity_factors)

    def touches_node(self, name: str) -> bool:
        return name in self.down_nodes

    def touches_edge(self, key: tuple[str, str]) -> bool:
        return key in self.down_edges

    @property
    def empty(self) -> bool:
        return not (
            self.down_nodes
            or self.down_edges
            or self.bandwidth_factors
            or self.capacity_factors
        )


@dataclass
class _EffectsBuilder:
    down_nodes: set = field(default_factory=set)
    down_edges: set = field(default_factory=set)
    bandwidth: dict = field(default_factory=dict)
    capacity: dict = field(default_factory=dict)

    def scale_bandwidth(self, key: tuple[str, str], factor: float) -> None:
        if factor <= 0.0:
            self.down_edges.add(key)
            self.bandwidth.pop(key, None)
        else:
            self.bandwidth[key] = min(self.bandwidth.get(key, 1.0), factor)

    def frozen(self) -> ResourceEffects:
        bandwidth = {
            k: v for k, v in self.bandwidth.items() if k not in self.down_edges
        }
        return ResourceEffects(
            down_nodes=frozenset(self.down_nodes),
            down_edges=frozenset(self.down_edges),
            bandwidth_factors=tuple(sorted(bandwidth.items())),
            capacity_factors=tuple(sorted(self.capacity.items())),
        )


def _apply(builder: _EffectsBuilder, topology: Topology, fault: FaultSpec) -> None:
    kind = fault.kind
    if kind is FaultKind.IS_OUTAGE:
        spec = topology.node(_require_node(topology, fault))
        if not spec.is_storage:
            raise FaultError(
                f"is_outage target {spec.name!r} is not an intermediate storage"
            )
        builder.down_nodes.add(spec.name)
    elif kind is FaultKind.CAPACITY_SHRINK:
        spec = topology.node(_require_node(topology, fault))
        if not spec.is_storage:
            raise FaultError(
                f"capacity_shrink target {spec.name!r} is not a storage"
            )
        builder.capacity[spec.name] = min(
            builder.capacity.get(spec.name, 1.0), fault.severity
        )
    elif kind is FaultKind.WAREHOUSE_BROWNOUT:
        spec = topology.node(_require_node(topology, fault))
        if not spec.is_warehouse:
            raise FaultError(
                f"warehouse_brownout target {spec.name!r} is not a warehouse"
            )
        for neighbor in topology.neighbors(spec.name):
            builder.scale_bandwidth(edge_key(spec.name, neighbor), fault.severity)
    elif kind is FaultKind.WAREHOUSE_LOSS:
        spec = topology.node(_require_node(topology, fault))
        if not spec.is_warehouse:
            raise FaultError(
                f"warehouse_loss target {spec.name!r} is not a warehouse"
            )
        builder.down_nodes.add(spec.name)
    elif kind is FaultKind.LINK_DOWN:
        builder.down_edges.add(_require_edge(topology, fault))
    elif kind is FaultKind.LINK_DEGRADED:
        builder.scale_bandwidth(_require_edge(topology, fault), fault.severity)
    else:  # pragma: no cover - exhaustive over FaultKind
        raise FaultError(f"unhandled fault kind {kind!r}")


def _require_node(topology: Topology, fault: FaultSpec) -> str:
    if fault.target not in topology:
        raise FaultError(
            f"fault {fault.key} targets unknown node {fault.target!r}"
        )
    return fault.target  # type: ignore[return-value]


def _require_edge(topology: Topology, fault: FaultSpec) -> tuple[str, str]:
    a, b = fault.target  # type: ignore[misc]
    if not topology.has_edge(a, b):
        raise FaultError(f"fault {fault.key} targets unknown link {(a, b)}")
    return edge_key(a, b)


def effects_of(topology: Topology, fault: FaultSpec) -> ResourceEffects:
    """Resolve a single fault against the topology (window ignored)."""
    builder = _EffectsBuilder()
    _apply(builder, topology, fault)
    return builder.frozen()


def combined_effects(
    topology: Topology,
    plan: FaultPlan | FaultSpec,
    *,
    window: tuple[float, float] | None = None,
) -> ResourceEffects:
    """Union of every fault's effects: down sets merge, factors take the min.

    ``window`` optionally restricts the union to faults whose windows
    intersect the half-open ``[t0, t1)`` -- the *windowed* view a time-aware
    recovery masks against, as opposed to the default whole-plan union.
    """
    faults = [plan] if isinstance(plan, FaultSpec) else list(plan)
    if window is not None:
        t0, t1 = window
        faults = [f for f in faults if f.overlaps(t0, t1)]
    builder = _EffectsBuilder()
    for fault in faults:
        _apply(builder, topology, fault)
    return builder.frozen()


def masked_topology(
    topology: Topology,
    plan: FaultPlan | FaultSpec,
    *,
    window: tuple[float, float] | None = None,
) -> Topology:
    """A copy of ``topology`` with the plan's failed resources removed.

    Down nodes disappear (with every incident link), down links disappear,
    degraded links keep ``severity * bandwidth``, shrunk storages keep
    ``severity * capacity``.  Explicit end-to-end pair rates survive for
    pairs whose endpoints both survive.  By default the mask is
    *time-agnostic*: any resource the plan ever fails is masked for the
    whole cycle, the conservative stance of whole-cycle recovery.  With
    ``window=(t0, t1)`` only faults intersecting the half-open window
    contribute, so callers can mask per service interval.

    Raises :class:`~repro.errors.FaultError` when the mask would leave no
    warehouse, since no schedule can exist without an archive.
    """
    effects = combined_effects(topology, plan, window=window)
    bw = effects.bandwidth_factor_map
    cap = effects.capacity_factor_map
    out = Topology(charging_basis=topology.charging_basis)
    for spec in topology.nodes:
        if spec.name in effects.down_nodes:
            continue
        if spec.is_warehouse:
            out.add_warehouse(spec.name)
        else:
            out.add_storage(
                spec.name,
                srate=spec.srate,
                capacity=spec.capacity * cap.get(spec.name, 1.0),
            )
    if not out.warehouses:
        raise FaultError(
            "fault plan leaves no warehouse standing: recovery impossible"
        )
    for e in topology.edges:
        if e.key in effects.down_edges:
            continue
        if e.a in effects.down_nodes or e.b in effects.down_nodes:
            continue
        out.add_edge(
            e.a, e.b, nrate=e.nrate, bandwidth=e.bandwidth * bw.get(e.key, 1.0)
        )
    for (a, b), rate in sorted(topology._pair_rates.items()):
        if a in out and b in out:
            out.set_pair_rate(a, b, rate)
    return out


__all__ = [
    "ResourceEffects",
    "effects_of",
    "combined_effects",
    "masked_topology",
]
