"""Declarative, seeded fault scenarios.

A :class:`FaultPlan` is an ordered set of :class:`FaultSpec` records, each
describing one resource failure over a half-open time window ``[t_start,
t_end)``.  Plans are plain data: they serialize to JSON, reload to an equal
object, and replay bit-identically -- the simulator and the contingency
scheduler both consume the same spec, so a scenario exercised in CI is
exactly the scenario a recovery was computed for.

Severity follows a *remaining-fraction* convention: ``severity`` is the
fraction of the resource that keeps working during the fault.  ``0.0`` means
the resource is fully down; ``0.4`` on a link means 40 % of its bandwidth
survives; ``0.4`` on a storage means capacity shrinks to 40 %.  Kinds whose
resource is binary (:attr:`FaultKind.IS_OUTAGE`, :attr:`FaultKind.LINK_DOWN`)
ignore severity and are always total.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
import pathlib
import random
from dataclasses import dataclass

from repro.errors import FaultError
from repro.topology.graph import Topology, edge_key


class FaultKind(enum.Enum):
    """What kind of resource degradation a fault inflicts."""

    IS_OUTAGE = "is_outage"  # an intermediate storage is fully down
    LINK_DOWN = "link_down"  # a link is unusable (partition)
    LINK_DEGRADED = "link_degraded"  # a link keeps only severity * bandwidth
    WAREHOUSE_BROWNOUT = "warehouse_brownout"  # warehouse egress degraded
    CAPACITY_SHRINK = "capacity_shrink"  # a storage keeps severity * capacity
    WAREHOUSE_LOSS = "warehouse_loss"  # a warehouse is fully down (site loss)


#: Kinds whose target is a node name.
NODE_KINDS = frozenset(
    {
        FaultKind.IS_OUTAGE,
        FaultKind.WAREHOUSE_BROWNOUT,
        FaultKind.CAPACITY_SHRINK,
        FaultKind.WAREHOUSE_LOSS,
    }
)
#: Kinds whose target is an undirected link ``(a, b)``.
LINK_KINDS = frozenset({FaultKind.LINK_DOWN, FaultKind.LINK_DEGRADED})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a target resource, a window, and a severity.

    Attributes:
        kind: What fails.
        target: Node name for node kinds, ``(a, b)`` edge pair for link
            kinds (normalized to the canonical sorted order).
        t_start: When the fault begins (inclusive).
        t_end: When the resource recovers (exclusive).
        severity: Remaining fraction of the resource during the fault (see
            module docstring).  Ignored (treated as 0) by binary kinds.
        label: Optional human-readable scenario annotation.
    """

    kind: FaultKind
    target: str | tuple[str, str]
    t_start: float
    t_end: float
    severity: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if not (math.isfinite(self.t_start) and math.isfinite(self.t_end)):
            raise FaultError("fault window must be finite")
        if self.t_end <= self.t_start:
            raise FaultError(
                f"fault window reversed or empty: [{self.t_start}, {self.t_end})"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise FaultError(
                f"severity must be a remaining fraction in [0, 1], "
                f"got {self.severity}"
            )
        if self.kind in LINK_KINDS:
            if not (isinstance(self.target, (tuple, list)) and len(self.target) == 2):
                raise FaultError(
                    f"{self.kind.value} target must be an (a, b) edge pair, "
                    f"got {self.target!r}"
                )
            object.__setattr__(self, "target", edge_key(*self.target))
        elif not isinstance(self.target, str) or not self.target:
            raise FaultError(
                f"{self.kind.value} target must be a node name, "
                f"got {self.target!r}"
            )
        if self.kind is FaultKind.CAPACITY_SHRINK and self.severity <= 0.0:
            raise FaultError(
                "capacity_shrink needs severity > 0 (use is_outage for a "
                "total storage loss)"
            )

    @property
    def window(self) -> tuple[float, float]:
        return (self.t_start, self.t_end)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def is_total(self) -> bool:
        """Whether the target resource is completely unusable while faulted."""
        if self.kind in (
            FaultKind.IS_OUTAGE,
            FaultKind.LINK_DOWN,
            FaultKind.WAREHOUSE_LOSS,
        ):
            return True
        return self.severity == 0.0

    @property
    def key(self) -> str:
        """Stable identifier used in traces, reports and metrics labels."""
        target = (
            "-".join(self.target)
            if isinstance(self.target, tuple)
            else self.target
        )
        return f"{self.kind.value}:{target}@{self.t_start:g}"

    def active_at(self, t: float) -> bool:
        """Whether the fault is in effect at instant ``t`` (half-open)."""
        return self.t_start <= t < self.t_end

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the fault window intersects the half-open ``[t0, t1)``."""
        return t0 < self.t_end and self.t_start < t1

    def _sort_key(self) -> tuple:
        target = (
            "-".join(self.target)
            if isinstance(self.target, tuple)
            else self.target
        )
        return (self.t_start, self.t_end, self.kind.value, target, self.severity)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "target": list(self.target)
            if isinstance(self.target, tuple)
            else self.target,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "severity": self.severity,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        try:
            kind = FaultKind(data["kind"])
            target = data["target"]
            if isinstance(target, list):
                target = tuple(target)
            return cls(
                kind=kind,
                target=target,
                t_start=float(data["t_start"]),
                t_end=float(data["t_end"]),
                severity=float(data.get("severity", 0.0)),
                label=str(data.get("label", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault record: {exc}") from exc


_FORMAT_VERSION = 1


def _merge_overlapping(faults) -> tuple[FaultSpec, ...]:
    """Canonicalize a fault set: merge same-resource overlapping windows.

    Two specs of the same kind, target, and severity whose windows overlap
    (or touch -- the windows are half-open, so ``[0, 5)`` + ``[5, 9)`` is one
    continuous fault) collapse into a single spec spanning their union.  The
    merged spec keeps the earliest contributor's label.  Equal-resource specs
    with *different* severities are kept apart: they legitimately express
    piecewise degradation, and ``combined_effects`` resolves the overlap by
    taking the minimum remaining fraction.
    """
    groups: dict[tuple, list[FaultSpec]] = {}
    for f in sorted(faults, key=FaultSpec._sort_key):
        groups.setdefault((f.kind, f.target, f.severity), []).append(f)
    merged: list[FaultSpec] = []
    for group in groups.values():
        current = group[0]
        for f in group[1:]:
            if f.t_start <= current.t_end:
                if f.t_end > current.t_end:
                    current = dataclasses.replace(current, t_end=f.t_end)
            else:
                merged.append(current)
                current = f
        merged.append(current)
    return tuple(sorted(merged, key=FaultSpec._sort_key))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable fault scenario.

    Faults are kept in a canonical deterministic order (by window, kind,
    target), so two plans with the same faults compare equal and replay
    identically regardless of construction order.  Overlapping windows of
    the same kind/target/severity are merged into one spec (see
    :func:`_merge_overlapping`), so duplicated or amended feeds never
    double-count a fault and dedup keys stay stable.
    """

    faults: tuple[FaultSpec, ...] = ()
    name: str = ""
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", _merge_overlapping(self.faults))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def horizon(self) -> tuple[float, float]:
        """(earliest fault start, latest fault end); raises when empty."""
        if not self.faults:
            raise FaultError("empty fault plan has no horizon")
        return (
            min(f.t_start for f in self.faults),
            max(f.t_end for f in self.faults),
        )

    def active_at(self, t: float) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.active_at(t))

    def overlapping(self, t0: float, t1: float) -> "FaultPlan":
        """The sub-plan of faults intersecting the half-open ``[t0, t1)``."""
        return FaultPlan(
            faults=tuple(f for f in self.faults if f.overlaps(t0, t1)),
            name=self.name,
            seed=self.seed,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        doc = {
            "format_version": _FORMAT_VERSION,
            "name": self.name,
            "faults": [f.to_dict() for f in self.faults],
        }
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        version = data.get("format_version", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise FaultError(
                f"unsupported fault-plan format version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        try:
            faults = tuple(FaultSpec.from_dict(f) for f in data["faults"])
        except (KeyError, TypeError) as exc:
            raise FaultError(f"malformed fault plan document: {exc}") from exc
        seed = data.get("seed")
        return cls(
            faults=faults,
            name=str(data.get("name", "")),
            seed=int(seed) if seed is not None else None,
        )

    def save(self, path) -> None:
        """Write the plan as pretty-printed JSON."""
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan written by :meth:`save` (raises on malformed input)."""
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_dict(doc)

    # -- seeded generation -------------------------------------------------

    @classmethod
    def generate(
        cls,
        topology: Topology,
        *,
        seed: int,
        horizon: tuple[float, float],
        n_faults: int = 3,
        kinds: tuple[FaultKind, ...] | None = None,
        duration_range: tuple[float, float] = (0.05, 0.25),
        severity_range: tuple[float, float] = (0.2, 0.8),
    ) -> "FaultPlan":
        """Draw a deterministic scenario for ``topology`` from ``seed``.

        Targets are drawn from the topology's storages/links/warehouses in
        sorted-name order, windows from ``horizon`` with durations uniform in
        ``duration_range`` (as fractions of the horizon span), partial
        severities uniform in ``severity_range``.  The same arguments always
        yield an equal plan.
        """
        if n_faults < 1:
            raise FaultError(f"n_faults must be >= 1, got {n_faults}")
        t0, t1 = horizon
        if not (math.isfinite(t0) and math.isfinite(t1)) or t1 <= t0:
            raise FaultError(f"invalid horizon ({t0}, {t1})")
        rng = random.Random(seed)
        storages = sorted(s.name for s in topology.storages)
        warehouses = sorted(w.name for w in topology.warehouses)
        edges = sorted(e.key for e in topology.edges)
        if kinds is None:
            # WAREHOUSE_LOSS is opt-in (pass kinds= explicitly): adding it
            # here would reshuffle every seeded plan generated so far.
            kinds = (
                FaultKind.IS_OUTAGE,
                FaultKind.LINK_DOWN,
                FaultKind.LINK_DEGRADED,
                FaultKind.WAREHOUSE_BROWNOUT,
                FaultKind.CAPACITY_SHRINK,
            )
        pools: dict[FaultKind, list] = {
            FaultKind.IS_OUTAGE: storages,
            FaultKind.CAPACITY_SHRINK: storages,
            FaultKind.WAREHOUSE_BROWNOUT: warehouses,
            FaultKind.WAREHOUSE_LOSS: warehouses,
            FaultKind.LINK_DOWN: edges,
            FaultKind.LINK_DEGRADED: edges,
        }
        usable = [k for k in kinds if pools[k]]
        if not usable:
            raise FaultError("topology offers no target for any requested kind")
        span = t1 - t0
        faults: list[FaultSpec] = []
        attempts = 0
        # Redraw candidates that would canonical-merge with an already-drawn
        # fault (same kind/target/severity, overlapping or touching window),
        # so the plan always holds exactly ``n_faults`` distinct specs.  The
        # rng sequence is only consumed further when a collision occurs, so
        # collision-free seeds generate bit-identical plans as before.
        while len(faults) < n_faults:
            attempts += 1
            if attempts > 100 * n_faults:
                raise FaultError(
                    f"cannot place {n_faults} non-overlapping fault(s) in "
                    f"horizon ({t0}, {t1}) for the requested kinds"
                )
            kind = rng.choice(usable)
            target = rng.choice(pools[kind])
            duration = span * rng.uniform(*duration_range)
            start = t0 + rng.uniform(0.0, max(span - duration, 0.0))
            if kind in (
                FaultKind.IS_OUTAGE,
                FaultKind.LINK_DOWN,
                FaultKind.WAREHOUSE_LOSS,
            ):
                severity = 0.0
            else:
                severity = rng.uniform(*severity_range)
            if any(
                f.kind is kind
                and f.target == target
                and f.severity == severity
                and start <= f.t_end
                and f.t_start <= start + duration
                for f in faults
            ):
                continue
            faults.append(
                FaultSpec(
                    kind=kind,
                    target=target,
                    t_start=start,
                    t_end=start + duration,
                    severity=severity,
                    label=f"gen-{len(faults)}",
                )
            )
        return cls(faults=tuple(faults), name=f"generated-seed{seed}", seed=seed)


__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "NODE_KINDS", "LINK_KINDS"]
