"""Online fault feeds: fault reports arriving over (virtual) time.

A :class:`FaultFeed` is an ordered stream of :class:`FaultEvent` records --
each a :class:`~repro.faults.plan.FaultSpec` plus the virtual instant ``at``
at which the monitoring plane *reported* it.  Where a
:class:`~repro.faults.plan.FaultPlan` is the omniscient after-the-fact
scenario, a feed is how the scenario becomes known: fault by fault, usually
shortly before (or exactly when) each window opens.  The online amendment
loop (:mod:`repro.online.loop`) consumes feeds and amends the running cycle
incrementally as events arrive.

Feeds are plain data and fully deterministic:

* a **JSONL file feed** (:meth:`FaultFeed.load` / :meth:`FaultFeed.save`)
  replays a committed scenario bit-identically -- one header line, one event
  per subsequent line, so malformed input is diagnosable as ``path:lineno``;
* a **seeded generator feed** (:meth:`FaultFeed.generate`) draws the faults
  through :meth:`FaultPlan.generate` and derives each report's arrival time
  from the same seed, so equal arguments always yield an equal feed.
"""

from __future__ import annotations

import json
import math
import pathlib
import random
from dataclasses import dataclass

from repro.errors import FaultError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.topology.graph import Topology

_FEED_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One fault report: the spec plus its virtual arrival instant.

    Attributes:
        at: When the monitoring plane reported the fault (virtual seconds,
            same clock as the fault windows and request start times).
        fault: The reported :class:`~repro.faults.plan.FaultSpec`.
    """

    at: float
    fault: FaultSpec

    def __post_init__(self) -> None:
        if not math.isfinite(self.at):
            raise FaultError(f"event arrival time must be finite, got {self.at}")

    def _sort_key(self) -> tuple:
        return (self.at, *self.fault._sort_key())

    def to_dict(self) -> dict:
        return {"at": self.at, "fault": self.fault.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        try:
            return cls(
                at=float(data["at"]),
                fault=FaultSpec.from_dict(data["fault"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault event: {exc}") from exc


@dataclass(frozen=True)
class FaultFeed:
    """An ordered, replayable stream of fault reports.

    Events are kept in canonical arrival order (ties broken by the fault's
    sort key), so two feeds with the same events compare equal and replay
    identically regardless of construction order.  Unlike
    :class:`FaultPlan`, duplicate reports are *kept* -- deduplication is the
    amendment loop's job (it amends with the cumulative
    :meth:`plan`, whose canonicalization merges same-fault repeats).
    """

    events: tuple[FaultEvent, ...] = ()
    name: str = ""
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=FaultEvent._sort_key)),
        )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def span(self) -> tuple[float, float]:
        """(first arrival, last arrival); raises when empty."""
        if not self.events:
            raise FaultError("empty fault feed has no span")
        return (self.events[0].at, self.events[-1].at)

    def plan(self) -> FaultPlan:
        """The cumulative :class:`FaultPlan` of every reported fault.

        Canonicalization merges duplicate/overlapping same-fault reports,
        so replaying a feed and loading its plan agree on the scenario.
        """
        return FaultPlan(
            faults=tuple(e.fault for e in self.events),
            name=self.name,
            seed=self.seed,
        )

    def until(self, t: float) -> "FaultFeed":
        """The sub-feed of events reported at or before instant ``t``."""
        return FaultFeed(
            events=tuple(e for e in self.events if e.at <= t),
            name=self.name,
            seed=self.seed,
        )

    # -- serialization -----------------------------------------------------

    def save(self, path) -> None:
        """Write the feed as JSONL: one header line, then one event/line."""
        header: dict = {
            "format_version": _FEED_FORMAT_VERSION,
            "name": self.name,
        }
        if self.seed is not None:
            header["seed"] = self.seed
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(e.to_dict(), sort_keys=True) for e in self.events
        )
        pathlib.Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path) -> "FaultFeed":
        """Read a feed written by :meth:`save`.

        Raises :class:`~repro.errors.FaultError` with a ``path:lineno``
        diagnostic on unreadable files, non-JSON lines, bad header
        versions, or malformed event records.
        """
        try:
            text = pathlib.Path(path).read_text()
        except OSError as exc:
            raise FaultError(f"cannot read fault feed {path}: {exc}") from exc
        header: dict | None = None
        events: list[FaultEvent] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise FaultError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(doc, dict):
                raise FaultError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(doc).__name__}"
                )
            if header is None:
                if "format_version" not in doc:
                    raise FaultError(
                        f"{path}:1: missing feed header (format_version)"
                    )
                if doc["format_version"] != _FEED_FORMAT_VERSION:
                    raise FaultError(
                        f"{path}:1: unsupported feed format version "
                        f"{doc['format_version']!r} "
                        f"(expected {_FEED_FORMAT_VERSION})"
                    )
                header = doc
                continue
            try:
                events.append(FaultEvent.from_dict(doc))
            except FaultError as exc:
                raise FaultError(f"{path}:{lineno}: {exc}") from exc
        if header is None:
            raise FaultError(f"{path}:1: empty feed file (no header line)")
        seed = header.get("seed")
        return cls(
            events=tuple(events),
            name=str(header.get("name", "")),
            seed=int(seed) if seed is not None else None,
        )

    # -- seeded generation -------------------------------------------------

    @classmethod
    def generate(
        cls,
        topology: Topology,
        *,
        seed: int,
        horizon: tuple[float, float],
        n_events: int = 4,
        kinds: tuple[FaultKind, ...] | None = None,
        duration_range: tuple[float, float] = (0.05, 0.25),
        severity_range: tuple[float, float] = (0.2, 0.8),
        lead_fraction: float = 0.05,
    ) -> "FaultFeed":
        """Draw a deterministic feed for ``topology`` from ``seed``.

        The faults come from :meth:`FaultPlan.generate` with the same
        arguments; each report's arrival is the fault's ``t_start`` minus a
        seeded lead uniform in ``[0, lead_fraction * span]`` (clamped to the
        horizon start) -- monitoring usually warns shortly before the
        window opens.  Equal arguments always yield an equal feed.
        """
        plan = FaultPlan.generate(
            topology,
            seed=seed,
            horizon=horizon,
            n_faults=n_events,
            kinds=kinds,
            duration_range=duration_range,
            severity_range=severity_range,
        )
        # Derived arithmetically (never via hash()) so feeds replay
        # bit-identically across interpreter runs.
        rng = random.Random(seed * 1_000_003 + 17)
        t0, t1 = horizon
        span = t1 - t0
        events = tuple(
            FaultEvent(
                at=max(t0, f.t_start - rng.uniform(0.0, lead_fraction * span)),
                fault=f,
            )
            for f in plan
        )
        return cls(events=events, name=f"feed-seed{seed}", seed=seed)


__all__ = ["FaultEvent", "FaultFeed"]
