"""Degraded-mode analysis: what a fault scenario does to a schedule.

:func:`build_degraded_report` replays a schedule through the simulation
engine with the fault plan injected (``FAULT_START``/``FAULT_END`` events in
the trace) and classifies the damage *window-aware*:

* **dropped** requests -- a delivery whose source, route node or route link
  is totally down at the moment the stream starts: the service cannot begin;
* **late** requests -- the fault begins mid-stream; the service is
  interrupted and, restarted after recovery, finishes ``delay`` seconds
  late;
* **stranded** residencies -- a cache whose storage goes down while its
  blocks are resident: the copy is lost and every service it would have fed
  is at risk;
* **saturated links** -- degraded links (or browned-out warehouse egress)
  whose concurrent-stream load exceeds the *remaining* bandwidth during the
  fault window;
* **storage overflows** -- shrunk storages whose Eq. 6 reserved usage
  exceeds the remaining capacity during the window.

The report is pure data (deterministic for a given schedule + plan) and
feeds both the CLI's degraded-mode output and
:func:`repro.sim.validate.fault_violations`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.costmodel import CostModel
from repro.core.schedule import Schedule
from repro.faults.inject import ResourceEffects, effects_of
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import NULL_OBS, Observability
from repro.sim.engine import SimulationEngine, SimulationReport
from repro.topology.graph import edge_key

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceImpact:
    """One request whose delivery a fault drops or delays."""

    user_id: str
    video_id: str
    start_time: float
    fault: str  # FaultSpec.key
    resource: str  # the failed node or "a-b" link the route uses
    outcome: str  # "dropped" | "late"
    delay: float = 0.0  # restart-after-recovery lateness (0 when dropped)


@dataclass(frozen=True)
class StrandedResidency:
    """A cached copy lost to a storage outage while blocks were resident."""

    video_id: str
    location: str
    t_start: float
    t_last: float
    fault: str


@dataclass(frozen=True)
class LinkStress:
    """A link whose load exceeds its degraded bandwidth during a fault."""

    edge: tuple[str, str]
    fault: str
    effective_bandwidth: float
    peak: float
    intervals: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class StorageStress:
    """A storage whose reserved usage exceeds its shrunk capacity."""

    location: str
    fault: str
    effective_capacity: float
    peak: float
    intervals: tuple[tuple[float, float], ...]


@dataclass
class DegradedModeReport:
    """Everything a fault scenario breaks in one schedule replay."""

    n_requests: int = 0
    n_faults: int = 0
    dropped: tuple[ServiceImpact, ...] = ()
    late: tuple[ServiceImpact, ...] = ()
    stranded: tuple[StrandedResidency, ...] = ()
    saturated_links: tuple[LinkStress, ...] = ()
    storage_overflows: tuple[StorageStress, ...] = ()
    #: Videos with at least one dropped/late delivery or stranded residency.
    impacted_videos: tuple[str, ...] = ()
    #: The fault-annotated replay (trace includes FAULT_* events).  Excluded
    #: from equality: two identical analyses may carry different telemetry.
    simulation: SimulationReport | None = field(default=None, compare=False)

    @property
    def requests_dropped(self) -> int:
        return len(self.dropped)

    @property
    def requests_late(self) -> int:
        return len(self.late)

    @property
    def degraded(self) -> bool:
        """Whether the scenario damages the schedule at all."""
        return bool(
            self.dropped
            or self.late
            or self.stranded
            or self.saturated_links
            or self.storage_overflows
        )

    def summary(self) -> str:
        lines = [
            f"degraded mode: {self.n_faults} fault(s) against "
            f"{self.n_requests} request(s)",
            f"  dropped: {self.requests_dropped}, late: {self.requests_late}, "
            f"stranded residencies: {len(self.stranded)}",
            f"  saturated links: {len(self.saturated_links)}, "
            f"storage overflows: {len(self.storage_overflows)}",
            f"  impacted videos: {len(self.impacted_videos)}",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "n_faults": self.n_faults,
            "requests_dropped": self.requests_dropped,
            "requests_late": self.requests_late,
            "dropped": [vars(i) for i in self.dropped],
            "late": [vars(i) for i in self.late],
            "stranded": [vars(s) for s in self.stranded],
            "saturated_links": [
                {
                    "edge": list(s.edge),
                    "fault": s.fault,
                    "effective_bandwidth": s.effective_bandwidth,
                    "peak": s.peak,
                    "intervals": [list(i) for i in s.intervals],
                }
                for s in self.saturated_links
            ],
            "storage_overflows": [
                {
                    "location": s.location,
                    "fault": s.fault,
                    "effective_capacity": s.effective_capacity,
                    "peak": s.peak,
                    "intervals": [list(i) for i in s.intervals],
                }
                for s in self.storage_overflows
            ],
            "impacted_videos": list(self.impacted_videos),
        }


def _clip(
    intervals: list[tuple[float, float]], lo: float, hi: float
) -> tuple[tuple[float, float], ...]:
    out = []
    for a, b in intervals:
        a2, b2 = max(a, lo), min(b, hi)
        if b2 > a2:
            out.append((a2, b2))
    return tuple(out)


def _route_failure(
    route: tuple[str, ...], effects: ResourceEffects
) -> str | None:
    """The first totally-failed resource a route uses, or ``None``."""
    for node in route:
        if node in effects.down_nodes:
            return node
    for a, b in zip(route, route[1:]):
        key = edge_key(a, b)
        if key in effects.down_edges:
            return f"{key[0]}-{key[1]}"
    return None


def build_degraded_report(
    schedule: Schedule,
    cost_model: CostModel,
    plan: FaultPlan,
    *,
    obs: Observability | None = None,
) -> DegradedModeReport:
    """Replay ``schedule`` under ``plan`` and classify the damage."""
    obs = obs if obs is not None else NULL_OBS
    catalog = cost_model.catalog
    topology = cost_model.topology
    engine = SimulationEngine(cost_model, obs=obs)
    simulation = engine.run(schedule, faults=plan)

    per_fault = [(f, effects_of(topology, f)) for f in plan]
    dropped: list[ServiceImpact] = []
    late: list[ServiceImpact] = []
    stranded: list[StrandedResidency] = []
    impacted: dict[str, None] = {}

    for fs in schedule:
        video = catalog[fs.video_id]
        for d in fs.deliveries:
            t0, t1 = d.start_time, d.start_time + video.playback
            verdict: ServiceImpact | None = None
            for fault, effects in per_fault:
                if not fault.overlaps(t0, t1):
                    continue
                resource = _route_failure(d.route, effects)
                if resource is None:
                    continue
                if fault.active_at(t0):
                    verdict = ServiceImpact(
                        user_id=d.request.user_id,
                        video_id=d.video_id,
                        start_time=t0,
                        fault=fault.key,
                        resource=resource,
                        outcome="dropped",
                    )
                    break  # dropped dominates any lateness
                delay = fault.t_end - t0
                if verdict is None or delay > verdict.delay:
                    verdict = ServiceImpact(
                        user_id=d.request.user_id,
                        video_id=d.video_id,
                        start_time=t0,
                        fault=fault.key,
                        resource=resource,
                        outcome="late",
                        delay=delay,
                    )
            if verdict is not None:
                impacted.setdefault(fs.video_id)
                (dropped if verdict.outcome == "dropped" else late).append(verdict)
        for c in fs.residencies:
            occ0, occ1 = c.t_start, c.t_last + video.playback
            for fault, effects in per_fault:
                if c.location in effects.down_nodes and fault.overlaps(occ0, occ1):
                    impacted.setdefault(fs.video_id)
                    stranded.append(
                        StrandedResidency(
                            video_id=c.video_id,
                            location=c.location,
                            t_start=c.t_start,
                            t_last=c.t_last,
                            fault=fault.key,
                        )
                    )
                    break  # one stranding per residency is enough

    saturated: list[LinkStress] = []
    overflows: list[StorageStress] = []
    for fault, effects in per_fault:
        bw = effects.bandwidth_factor_map
        for key, load in sorted(simulation.links.items()):
            if key in effects.down_edges:
                remaining = 0.0
            elif key in bw and load.capacity != float("inf"):
                remaining = load.capacity * bw[key]
            else:
                continue
            intervals = _clip(
                load.timeline.intervals_above(remaining),
                fault.t_start,
                fault.t_end,
            )
            if intervals:
                saturated.append(
                    LinkStress(
                        edge=key,
                        fault=fault.key,
                        effective_bandwidth=remaining,
                        peak=load.timeline.max_over(fault.t_start, fault.t_end),
                        intervals=intervals,
                    )
                )
        for location, factor in effects.capacity_factors:
            load = simulation.storages.get(location)
            if load is None or load.capacity == float("inf"):
                continue
            remaining = load.capacity * factor
            intervals = _clip(
                load.reserved.intervals_above(remaining),
                fault.t_start,
                fault.t_end,
            )
            if intervals:
                overflows.append(
                    StorageStress(
                        location=location,
                        fault=fault.key,
                        effective_capacity=remaining,
                        peak=load.reserved.max_over(fault.t_start, fault.t_end),
                        intervals=intervals,
                    )
                )

    report = DegradedModeReport(
        n_requests=len(schedule.deliveries),
        n_faults=len(plan),
        dropped=tuple(dropped),
        late=tuple(late),
        stranded=tuple(stranded),
        saturated_links=tuple(saturated),
        storage_overflows=tuple(overflows),
        impacted_videos=tuple(impacted),
        simulation=simulation,
    )
    metrics = obs.metrics
    if metrics.enabled:
        for outcome, count in (
            ("dropped", report.requests_dropped),
            ("late", report.requests_late),
        ):
            metrics.counter(
                "vor_degraded_requests_total",
                help="Requests impacted by injected faults, by outcome",
                outcome=outcome,
            ).inc(count)
        metrics.counter(
            "vor_stranded_residencies_total",
            help="Cache residencies lost to storage outages",
        ).inc(len(report.stranded))
    _log.info(
        "degraded-mode analysis: %d dropped, %d late, %d stranded under "
        "%d fault(s)",
        report.requests_dropped,
        report.requests_late,
        len(report.stranded),
        report.n_faults,
    )
    return report


__all__ = [
    "ServiceImpact",
    "StrandedResidency",
    "LinkStress",
    "StorageStress",
    "DegradedModeReport",
    "build_degraded_report",
]
