"""Contingency re-scheduling: patch a schedule around an active fault plan.

Given a committed schedule and a :class:`~repro.faults.plan.FaultPlan`, the
:class:`ContingencyScheduler`

1. computes the **impacted video set** -- every file whose deliveries route
   through a failed node/link or whose residencies sit at a failed or
   shrunk storage;
2. builds a **masked** topology/cost model (failed resources removed,
   degraded ones shrunk, see :func:`repro.faults.inject.masked_topology`);
3. splits the impacted files' requests into **lost** (the user's local
   storage is down or unreachable from every surviving *home* of the
   video's replica set -- no schedule can serve them) and **recoverable**;
   without a :class:`~repro.replication.ReplicaMap` on the cost model every
   surviving warehouse counts as a home, the single-warehouse behaviour;
4. re-solves *only* the recoverable impacted requests through the existing
   parallel Phase-1 + SORP machinery against the masked model, grafting the
   fresh per-file schedules over the old ones;
5. reports the patched schedule together with its cost delta (Ψ before vs
   after, both priced on the *original* model so the delta is
   apples-to-apples) and the SLA outcome (requests saved vs lost).

Unimpacted files are untouched bit-for-bit: recovery is incremental, and the
same seeded plan yields the same patched schedule on every Phase-1 backend.

A :attr:`~repro.faults.plan.FaultKind.WAREHOUSE_LOSS` removes a warehouse
node entirely; with replicated warehouses recovery re-solves every impacted
request from the surviving homes.  When the plan downs *every* warehouse the
impacted requests are all lost but recovery still returns gracefully with
the unimpacted files intact (only :func:`~repro.faults.inject.masked_topology`
itself insists on a standing warehouse).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig, ParallelIndividualScheduler
from repro.core.schedule import Schedule
from repro.core.sorp import ResolutionStats, resolve_overflows
from repro.faults.inject import ResourceEffects, combined_effects, masked_topology
from repro.faults.plan import FaultPlan
from repro.obs import NULL_OBS, Observability
from repro.topology.graph import Topology, edge_key
from repro.topology.routing import Router
from repro.workload.requests import Request, RequestBatch

_log = logging.getLogger(__name__)


def impacted_videos(schedule: Schedule, effects: ResourceEffects) -> tuple[str, ...]:
    """Video ids whose schedules touch a failed or shrunk resource.

    A file is impacted when any of its deliveries routes through a down
    node or down link, or any of its residencies sits at a down node or a
    capacity-shrunk storage.  Order follows the schedule's file order, so
    the result is deterministic for a given schedule.
    """
    shrunk = set(effects.capacity_factor_map)
    out: dict[str, None] = {}
    for fs in schedule:
        hit = False
        for d in fs.deliveries:
            if any(n in effects.down_nodes for n in d.route) or any(
                edge_key(a, b) in effects.down_edges
                for a, b in zip(d.route, d.route[1:])
            ):
                hit = True
                break
        if not hit:
            hit = any(
                c.location in effects.down_nodes or c.location in shrunk
                for c in fs.residencies
            )
        if hit:
            out.setdefault(fs.video_id)
    return tuple(out)


@dataclass
class RecoveryResult:
    """Outcome of one contingency re-scheduling pass."""

    plan: FaultPlan
    #: The amended schedule: unimpacted files verbatim, impacted files
    #: re-solved on the masked model (files whose every request is lost
    #: disappear entirely).
    schedule: Schedule
    impacted: tuple[str, ...] = ()
    #: Requests of impacted files that the patched schedule still serves.
    saved: tuple[Request, ...] = ()
    #: Requests no surviving topology can serve (local storage down or
    #: unreachable from every standing warehouse).
    lost: tuple[Request, ...] = ()
    #: Ψ of the original / patched schedule, both on the original pricing.
    cost_before: CostBreakdown = field(default_factory=lambda: CostBreakdown(0, 0))
    cost_after: CostBreakdown = field(default_factory=lambda: CostBreakdown(0, 0))
    #: Phase-2 statistics of the recovery solve (None when nothing was
    #: impacted and the schedule is returned unchanged).
    resolution: ResolutionStats | None = None
    backend: str = "serial"

    @property
    def videos_resolved(self) -> int:
        return len(self.impacted)

    @property
    def requests_saved(self) -> int:
        return len(self.saved)

    @property
    def requests_lost(self) -> int:
        return len(self.lost)

    @property
    def cost_delta(self) -> float:
        """Ψ(patched) - Ψ(original): the price paid to route around faults.

        Negative deltas are possible: lost requests take their deliveries
        (and cost) out of the schedule entirely.
        """
        return self.cost_after.total - self.cost_before.total

    def sla_summary(self) -> str:
        total = self.requests_saved + self.requests_lost
        lines = [
            f"recovery: {self.videos_resolved} video(s) re-solved under "
            f"{len(self.plan)} fault(s)",
            f"  requests saved: {self.requests_saved}/{total}, "
            f"lost: {self.requests_lost}/{total}",
            f"  psi before: ${self.cost_before.total:.2f}, "
            f"after: ${self.cost_after.total:.2f} "
            f"(delta {self.cost_delta:+.2f})",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "impacted_videos": list(self.impacted),
            "requests_saved": self.requests_saved,
            "requests_lost": self.requests_lost,
            "lost": [
                {
                    "user_id": r.user_id,
                    "video_id": r.video_id,
                    "start_time": r.start_time,
                    "local_storage": r.local_storage,
                }
                for r in self.lost
            ],
            "psi_before_dollars": self.cost_before.total,
            "psi_after_dollars": self.cost_after.total,
            "psi_delta_dollars": self.cost_delta,
            "overflow_iterations": (
                0 if self.resolution is None else self.resolution.iterations
            ),
            "backend": self.backend,
        }


class ContingencyScheduler:
    """Incremental re-scheduler for fault recovery.

    Args:
        cost_model: The *healthy* pricing model the original schedule was
            solved under; supplies topology + catalog and prices the
            before/after Ψ comparison.
        heat_metric: Victim-selection metric for the recovery SORP pass.
        parallel: Phase-1 execution plan for the re-solve; ``None`` runs
            serial.  Recovery output is bit-identical across backends.
        obs: Observability handle; a live handle records a ``recover`` span
            plus ``vor_recovery_*`` metrics.
    """

    def __init__(
        self,
        cost_model: CostModel,
        *,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
    ):
        self._cm = cost_model
        self._metric = heat_metric
        self._parallel = parallel if parallel is not None else ParallelConfig()
        self._obs = obs if obs is not None else NULL_OBS

    def recover(
        self,
        schedule: Schedule,
        plan: FaultPlan,
        *,
        batch: RequestBatch | None = None,
    ) -> RecoveryResult:
        """Patch ``schedule`` around ``plan``; the input is not mutated.

        Args:
            schedule: The committed schedule to amend.
            plan: The active fault scenario.
            batch: The cycle's request batch; when omitted it is
                reconstructed from the schedule's own deliveries.

        A plan that downs every warehouse does not raise: every impacted
        request is reported lost and the unimpacted files survive verbatim.
        """
        topology = self._cm.topology
        effects = combined_effects(topology, plan)
        if batch is None:
            batch = RequestBatch(d.request for d in schedule.deliveries)
        with self._obs.tracer.span(
            "recover", faults=len(plan), requests=len(batch)
        ) as span:
            result = self._recover(schedule, plan, effects, batch, topology)
            span.set(
                impacted=result.videos_resolved,
                saved=result.requests_saved,
                lost=result.requests_lost,
            )
        self._record_metrics(result)
        _log.info(
            "contingency: %d impacted video(s), %d saved / %d lost, "
            "psi delta %+.2f",
            result.videos_resolved,
            result.requests_saved,
            result.requests_lost,
            result.cost_delta,
        )
        return result

    def _recover(
        self,
        schedule: Schedule,
        plan: FaultPlan,
        effects: ResourceEffects,
        batch: RequestBatch,
        topology: Topology,
    ) -> RecoveryResult:
        cost_before = self._cm.schedule_cost(schedule)
        impacted = impacted_videos(schedule, effects)
        if not impacted:
            return RecoveryResult(
                plan=plan,
                schedule=schedule.copy(),
                cost_before=cost_before,
                cost_after=cost_before,
                backend=self._parallel.backend,
            )

        impacted_set = set(impacted)
        replicas = self._cm.replicas
        if all(
            w.name in effects.down_nodes for w in topology.warehouses
        ):
            # Total warehouse loss: no copy of anything survives, so every
            # impacted request is lost.  Unimpacted files keep serving from
            # their already-filled caches verbatim.
            patched = Schedule(
                fs for fs in schedule if fs.video_id not in impacted_set
            )
            return RecoveryResult(
                plan=plan,
                schedule=patched,
                impacted=impacted,
                saved=(),
                lost=tuple(r for r in batch if r.video_id in impacted_set),
                cost_before=cost_before,
                cost_after=self._cm.schedule_cost(patched),
                resolution=None,
                backend=self._parallel.backend,
            )

        masked = masked_topology(topology, plan)
        masked_cm = CostModel(
            masked,
            self._cm.catalog,
            replicas=(
                replicas.restricted_to(masked.node_names)
                if replicas is not None
                else None
            ),
        )
        router = Router(masked)
        # reachable set of each surviving warehouse: a request is servable
        # iff its neighborhood is reachable from a surviving *home* of its
        # video (all warehouses count as homes without a replica map)
        reach = {w.name: router.reachable(w.name) for w in masked.warehouses}

        def servable(r: Request) -> bool:
            homes = (
                replicas.homes(r.video_id)
                if replicas is not None
                else tuple(reach)
            )
            return any(
                r.local_storage in reach[h] for h in homes if h in reach
            )

        saved: list[Request] = []
        lost: list[Request] = []
        surviving: list[Request] = []
        for r in batch:
            if r.video_id not in impacted_set:
                surviving.append(r)
                continue
            if servable(r):
                saved.append(r)
                surviving.append(r)
            else:
                lost.append(r)

        patched = Schedule(fs for fs in schedule if fs.video_id not in impacted_set)
        resolution: ResolutionStats | None = None
        if saved:
            sub_batch = RequestBatch(saved)
            engine = ParallelIndividualScheduler(
                masked_cm, self._parallel, obs=self._obs
            )
            phase1 = engine.run(sub_batch, self._cm.catalog)
            for fs in phase1.schedule:
                patched.set_file(fs)
            # SORP over the whole grafted schedule: the fresh files must fit
            # in what the shrunk storages have left *alongside* the
            # unimpacted files' residencies.
            patched, resolution = resolve_overflows(
                patched,
                RequestBatch(surviving),
                masked_cm,
                metric=self._metric,
                obs=self._obs,
            )
            patched = patched.pruned()

        return RecoveryResult(
            plan=plan,
            schedule=patched,
            impacted=impacted,
            saved=tuple(saved),
            lost=tuple(lost),
            cost_before=cost_before,
            cost_after=self._cm.schedule_cost(patched),
            resolution=resolution,
            backend=self._parallel.backend,
        )

    def _record_metrics(self, result: RecoveryResult) -> None:
        metrics = self._obs.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "vor_recovery_videos_resolved_total",
            help="Videos incrementally re-solved by contingency scheduling",
        ).inc(result.videos_resolved)
        for outcome, count in (
            ("saved", result.requests_saved),
            ("lost", result.requests_lost),
        ):
            metrics.counter(
                "vor_recovery_requests_total",
                help="Impacted requests by recovery outcome",
                outcome=outcome,
            ).inc(count)
        metrics.gauge(
            "vor_recovery_cost_delta_dollars",
            mode="last",
            help="Ψ(patched) - Ψ(original) of the last contingency pass",
        ).set(result.cost_delta)


__all__ = ["ContingencyScheduler", "RecoveryResult", "impacted_videos"]
