"""Contingency re-scheduling: patch a schedule around an active fault plan.

Given a committed schedule and a :class:`~repro.faults.plan.FaultPlan`, the
:class:`ContingencyScheduler`

1. computes the **impacted video set** -- every file whose deliveries route
   through a failed node/link or whose residencies sit at a failed or
   shrunk storage;
2. builds a **masked** topology/cost model (failed resources removed,
   degraded ones shrunk, see :func:`repro.faults.inject.masked_topology`);
3. splits the impacted files' requests into **lost** (the user's local
   storage is down or unreachable from every surviving *home* of the
   video's replica set -- no schedule can serve them) and **recoverable**;
   without a :class:`~repro.replication.ReplicaMap` on the cost model every
   surviving warehouse counts as a home, the single-warehouse behaviour;
4. re-solves *only* the recoverable impacted requests through the existing
   parallel Phase-1 + SORP machinery against the masked model, grafting the
   fresh per-file schedules over the old ones;
5. reports the patched schedule together with its cost delta (Ψ before vs
   after, both priced on the *original* model so the delta is
   apples-to-apples) and the SLA outcome (requests saved vs lost).

Unimpacted files are untouched bit-for-bit: recovery is incremental, and the
same seeded plan yields the same patched schedule on every Phase-1 backend.

Two masking stances are supported (``masking=``).  The default ``"cycle"``
mode is conservative: any resource the plan *ever* fails is treated as
unusable for the whole cycle, and every request of an impacted video is
re-solved (or lost) on the union mask.  ``"windowed"`` mode is time-aware
and surgical: only services whose stream or occupancy interval actually
intersects a fault window count as hit (:func:`windowed_impacted_videos`
at the video level, per-delivery/per-residency inside the recovery), so a
delivery scheduled around an outage keeps its original route verbatim and
only the genuinely-hit requests are re-solved -- against the conservative
union mask (seeded with the kept caches), so anything rebuilt avoids every
faulted resource outright and the patched schedule stays feasible under
every fault window.  Because windowed recovery loses a request only when a
*hit* request is unservable on the same union mask, its lost set is always
a subset of cycle mode's: windowed recovery saves at least as many
requests, and strictly more whenever a fault window leaves part of the
cycle untouched.  The windowed overflow pass (Phase 2) runs on the healthy
model -- window-shrunk capacity violations are surfaced by the degraded
replay at validation time rather than repaired.

A :attr:`~repro.faults.plan.FaultKind.WAREHOUSE_LOSS` removes a warehouse
node entirely; with replicated warehouses recovery re-solves every impacted
request from the surviving homes.  When the plan downs *every* warehouse the
impacted requests are all lost but recovery still returns gracefully with
the unimpacted files intact (only :func:`~repro.faults.inject.masked_topology`
itself insists on a standing warehouse).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.catalog.catalog import VideoCatalog
from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.heat import HeatMetric
from repro.core.parallel import ParallelConfig, ParallelIndividualScheduler
from repro.core.schedule import DeliveryInfo, FileSchedule, ResidencyInfo, Schedule
from repro.core.sorp import ResolutionStats, resolve_overflows
from repro.errors import FaultError
from repro.faults.inject import (
    ResourceEffects,
    combined_effects,
    effects_of,
    masked_topology,
)
from repro.faults.plan import FaultPlan
from repro.obs import NULL_OBS, Observability
from repro.topology.graph import Topology, edge_key
from repro.topology.routing import Router
from repro.workload.requests import Request, RequestBatch

_log = logging.getLogger(__name__)

#: Recognized masking modes for contingency recovery.
MASKING_MODES = ("cycle", "windowed")


def impacted_videos(schedule: Schedule, effects: ResourceEffects) -> tuple[str, ...]:
    """Video ids whose schedules touch a failed or shrunk resource.

    A file is impacted when any of its deliveries routes through a down
    node or down link, or any of its residencies sits at a down node or a
    capacity-shrunk storage.  Order follows the schedule's file order, so
    the result is deterministic for a given schedule.
    """
    shrunk = set(effects.capacity_factor_map)
    out: dict[str, None] = {}
    for fs in schedule:
        hit = False
        for d in fs.deliveries:
            if any(n in effects.down_nodes for n in d.route) or any(
                edge_key(a, b) in effects.down_edges
                for a, b in zip(d.route, d.route[1:])
            ):
                hit = True
                break
        if not hit:
            hit = any(
                c.location in effects.down_nodes or c.location in shrunk
                for c in fs.residencies
            )
        if hit:
            out.setdefault(fs.video_id)
    return tuple(out)


def windowed_impacted_videos(
    schedule: Schedule,
    catalog: VideoCatalog,
    topology: Topology,
    plan: FaultPlan,
) -> tuple[str, ...]:
    """Video ids whose schedules touch a faulted resource *during* a fault.

    The time-aware counterpart of :func:`impacted_videos`: a delivery is hit
    only when a fault is active somewhere in its stream interval ``[start,
    start + playback)`` and its route crosses the failed resource; a
    residency only when the fault window intersects its occupancy ``[t_start,
    t_last + playback)`` at a down or shrunk storage.  Services that merely
    *share a resource* with a fault at a disjoint time survive untouched --
    which is exactly why windowed recovery saves more requests than the
    conservative whole-cycle mask.
    """
    per_fault = [(f, effects_of(topology, f)) for f in plan]
    out: dict[str, None] = {}
    for fs in schedule:
        playback = catalog[fs.video_id].playback
        hit = False
        for d in fs.deliveries:
            t0, t1 = d.start_time, d.start_time + playback
            for fault, eff in per_fault:
                if not fault.overlaps(t0, t1):
                    continue
                if any(n in eff.down_nodes for n in d.route) or any(
                    edge_key(a, b) in eff.down_edges
                    for a, b in zip(d.route, d.route[1:])
                ):
                    hit = True
                    break
            if hit:
                break
        if not hit:
            for c in fs.residencies:
                occ0, occ1 = c.t_start, c.t_last + playback
                shrunk = False
                for fault, eff in per_fault:
                    if not fault.overlaps(occ0, occ1):
                        continue
                    if c.location in eff.down_nodes or any(
                        loc == c.location for loc, _ in eff.capacity_factors
                    ):
                        shrunk = True
                        break
                if shrunk:
                    hit = True
                    break
        if hit:
            out.setdefault(fs.video_id)
    return tuple(out)


def _split_hits(
    fs: FileSchedule,
    playback: float,
    per_fault: list,
) -> tuple[list[DeliveryInfo], list[DeliveryInfo], list[ResidencyInfo]]:
    """Split one file's schedule into fault-hit and untouched parts.

    Returns ``(hit_deliveries, kept_deliveries, kept_residencies)``.  A
    residency is hit when a fault window intersects its occupancy at a
    down or shrunk storage; hits propagate through fill chains (a cache
    filled from a hit location must refill too) and onto every delivery
    sourced from a hit location -- conservative over-marking only grows
    the re-solve set, never breaks the kept part's causality.
    """
    res = list(fs.residencies)
    hit = [False] * len(res)
    for i, c in enumerate(res):
        occ0, occ1 = c.t_start, c.t_last + playback
        for fault, eff in per_fault:
            if not fault.overlaps(occ0, occ1):
                continue
            if c.location in eff.down_nodes or any(
                loc == c.location for loc, _ in eff.capacity_factors
            ):
                hit[i] = True
                break
    changed = True
    while changed:
        changed = False
        hit_locs = {c.location for c, h in zip(res, hit) if h}
        for i, c in enumerate(res):
            if not hit[i] and c.source in hit_locs:
                hit[i] = True
                changed = True
    hit_locs = {c.location for c, h in zip(res, hit) if h}
    hit_del: list[DeliveryInfo] = []
    kept_del: list[DeliveryInfo] = []
    for d in fs.deliveries:
        t0, t1 = d.start_time, d.start_time + playback
        broken = d.source in hit_locs
        if not broken:
            for fault, eff in per_fault:
                if not fault.overlaps(t0, t1):
                    continue
                if any(n in eff.down_nodes for n in d.route) or any(
                    edge_key(a, b) in eff.down_edges
                    for a, b in zip(d.route, d.route[1:])
                ):
                    broken = True
                    break
        (hit_del if broken else kept_del).append(d)
    kept_res = [c for c, h in zip(res, hit) if not h]
    return hit_del, kept_del, kept_res


@dataclass
class RecoveryResult:
    """Outcome of one contingency re-scheduling pass."""

    plan: FaultPlan
    #: The amended schedule: unimpacted files verbatim, impacted files
    #: re-solved on the masked model (files whose every request is lost
    #: disappear entirely).
    schedule: Schedule
    impacted: tuple[str, ...] = ()
    #: Requests of impacted files that the patched schedule still serves.
    saved: tuple[Request, ...] = ()
    #: Requests no surviving topology can serve (local storage down or
    #: unreachable from every standing warehouse).
    lost: tuple[Request, ...] = ()
    #: Ψ of the original / patched schedule, both on the original pricing.
    cost_before: CostBreakdown = field(default_factory=lambda: CostBreakdown(0, 0))
    cost_after: CostBreakdown = field(default_factory=lambda: CostBreakdown(0, 0))
    #: Phase-2 statistics of the recovery solve (None when nothing was
    #: impacted and the schedule is returned unchanged).
    resolution: ResolutionStats | None = None
    backend: str = "serial"
    #: Which masking stance produced this recovery: ``"cycle"`` (any
    #: resource the plan ever fails is avoided for the whole cycle) or
    #: ``"windowed"`` (only services actually intersecting a fault window
    #: were re-solved).
    masking: str = "cycle"

    @property
    def videos_resolved(self) -> int:
        return len(self.impacted)

    @property
    def requests_saved(self) -> int:
        return len(self.saved)

    @property
    def requests_lost(self) -> int:
        return len(self.lost)

    @property
    def cost_delta(self) -> float:
        """Ψ(patched) - Ψ(original): the price paid to route around faults.

        Negative deltas are possible: lost requests take their deliveries
        (and cost) out of the schedule entirely.
        """
        return self.cost_after.total - self.cost_before.total

    def sla_summary(self) -> str:
        total = self.requests_saved + self.requests_lost
        lines = [
            f"recovery: {self.videos_resolved} video(s) re-solved under "
            f"{len(self.plan)} fault(s)",
            f"  requests saved: {self.requests_saved}/{total}, "
            f"lost: {self.requests_lost}/{total}",
            f"  psi before: ${self.cost_before.total:.2f}, "
            f"after: ${self.cost_after.total:.2f} "
            f"(delta {self.cost_delta:+.2f})",
        ]
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "impacted_videos": list(self.impacted),
            "requests_saved": self.requests_saved,
            "requests_lost": self.requests_lost,
            "lost": [
                {
                    "user_id": r.user_id,
                    "video_id": r.video_id,
                    "start_time": r.start_time,
                    "local_storage": r.local_storage,
                }
                for r in self.lost
            ],
            "psi_before_dollars": self.cost_before.total,
            "psi_after_dollars": self.cost_after.total,
            "psi_delta_dollars": self.cost_delta,
            "overflow_iterations": (
                0 if self.resolution is None else self.resolution.iterations
            ),
            "backend": self.backend,
            "masking": self.masking,
        }


class ContingencyScheduler:
    """Incremental re-scheduler for fault recovery.

    Args:
        cost_model: The *healthy* pricing model the original schedule was
            solved under; supplies topology + catalog and prices the
            before/after Ψ comparison.
        heat_metric: Victim-selection metric for the recovery SORP pass.
        parallel: Phase-1 execution plan for the re-solve; ``None`` runs
            serial.  Recovery output is bit-identical across backends.
        obs: Observability handle; a live handle records a ``recover`` span
            plus ``vor_recovery_*`` metrics.
        masking: ``"cycle"`` (default) treats any resource the plan ever
            fails as unusable for the whole cycle -- the conservative
            stance.  ``"windowed"`` re-solves only the services whose time
            interval actually intersects a fault window, so deliveries at
            disjoint times keep their original (cheaper) routes and
            strictly fewer requests are lost.
    """

    def __init__(
        self,
        cost_model: CostModel,
        *,
        heat_metric: HeatMetric = HeatMetric.SPACE_TIME_PER_COST,
        parallel: ParallelConfig | None = None,
        obs: Observability | None = None,
        masking: str = "cycle",
    ):
        if masking not in MASKING_MODES:
            raise FaultError(
                f"unknown masking mode {masking!r} (expected one of "
                f"{MASKING_MODES})"
            )
        self._cm = cost_model
        self._metric = heat_metric
        self._parallel = parallel if parallel is not None else ParallelConfig()
        self._obs = obs if obs is not None else NULL_OBS
        self._masking = masking

    def recover(
        self,
        schedule: Schedule,
        plan: FaultPlan,
        *,
        batch: RequestBatch | None = None,
    ) -> RecoveryResult:
        """Patch ``schedule`` around ``plan``; the input is not mutated.

        Args:
            schedule: The committed schedule to amend.
            plan: The active fault scenario.
            batch: The cycle's request batch; when omitted it is
                reconstructed from the schedule's own deliveries.

        A plan that downs every warehouse does not raise: every impacted
        request is reported lost and the unimpacted files survive verbatim.
        """
        topology = self._cm.topology
        effects = combined_effects(topology, plan)
        if batch is None:
            batch = RequestBatch(d.request for d in schedule.deliveries)
        with self._obs.tracer.span(
            "recover",
            faults=len(plan),
            requests=len(batch),
            masking=self._masking,
        ) as span:
            result = self._recover(schedule, plan, effects, batch, topology)
            span.set(
                impacted=result.videos_resolved,
                saved=result.requests_saved,
                lost=result.requests_lost,
            )
        journal = self._obs.journal
        if journal.enabled:
            for request in result.saved:
                journal.emit(
                    "fault-hit", request=request,
                    faults=len(plan), masking=self._masking,
                )
                journal.emit("saved", request=request)
            for request in result.lost:
                journal.emit(
                    "fault-hit", request=request,
                    faults=len(plan), masking=self._masking,
                )
                journal.emit("lost", request=request)
        self._record_metrics(result)
        _log.info(
            "contingency: %d impacted video(s), %d saved / %d lost, "
            "psi delta %+.2f",
            result.videos_resolved,
            result.requests_saved,
            result.requests_lost,
            result.cost_delta,
        )
        return result

    def _recover(
        self,
        schedule: Schedule,
        plan: FaultPlan,
        effects: ResourceEffects,
        batch: RequestBatch,
        topology: Topology,
    ) -> RecoveryResult:
        cost_before = self._cm.schedule_cost(schedule)
        if self._masking == "windowed":
            return self._recover_windowed(
                schedule, plan, effects, batch, topology, cost_before
            )
        impacted = impacted_videos(schedule, effects)
        if not impacted:
            return RecoveryResult(
                plan=plan,
                schedule=schedule.copy(),
                cost_before=cost_before,
                cost_after=cost_before,
                backend=self._parallel.backend,
                masking=self._masking,
            )

        impacted_set = set(impacted)
        replicas = self._cm.replicas
        if all(
            w.name in effects.down_nodes for w in topology.warehouses
        ):
            # Total warehouse loss: no copy of anything survives, so every
            # impacted request is lost.  Unimpacted files keep serving from
            # their already-filled caches verbatim.
            patched = Schedule(
                fs for fs in schedule if fs.video_id not in impacted_set
            )
            return RecoveryResult(
                plan=plan,
                schedule=patched,
                impacted=impacted,
                saved=(),
                lost=tuple(r for r in batch if r.video_id in impacted_set),
                cost_before=cost_before,
                cost_after=self._cm.schedule_cost(patched),
                resolution=None,
                backend=self._parallel.backend,
                masking=self._masking,
            )

        masked = masked_topology(topology, plan)
        masked_cm = CostModel(
            masked,
            self._cm.catalog,
            replicas=(
                replicas.restricted_to(masked.node_names)
                if replicas is not None
                else None
            ),
        )
        router = Router(masked)
        # reachable set of each surviving warehouse: a request is servable
        # iff its neighborhood is reachable from a surviving *home* of its
        # video (all warehouses count as homes without a replica map)
        reach = {w.name: router.reachable(w.name) for w in masked.warehouses}

        def servable(r: Request) -> bool:
            homes = (
                replicas.homes(r.video_id)
                if replicas is not None
                else tuple(reach)
            )
            return any(
                r.local_storage in reach[h] for h in homes if h in reach
            )

        saved: list[Request] = []
        lost: list[Request] = []
        surviving: list[Request] = []
        for r in batch:
            if r.video_id not in impacted_set:
                surviving.append(r)
                continue
            if servable(r):
                saved.append(r)
                surviving.append(r)
            else:
                lost.append(r)

        patched = Schedule(fs for fs in schedule if fs.video_id not in impacted_set)
        resolution: ResolutionStats | None = None
        if saved:
            sub_batch = RequestBatch(saved)
            engine = ParallelIndividualScheduler(
                masked_cm, self._parallel, obs=self._obs
            )
            phase1 = engine.run(sub_batch, self._cm.catalog)
            for fs in phase1.schedule:
                patched.set_file(fs)
            # SORP over the whole grafted schedule: the fresh files must fit
            # in what the shrunk storages have left *alongside* the
            # unimpacted files' residencies.
            patched, resolution = resolve_overflows(
                patched,
                RequestBatch(surviving),
                masked_cm,
                metric=self._metric,
                obs=self._obs,
            )
            patched = patched.pruned()

        return RecoveryResult(
            plan=plan,
            schedule=patched,
            impacted=impacted,
            saved=tuple(saved),
            lost=tuple(lost),
            cost_before=cost_before,
            cost_after=self._cm.schedule_cost(patched),
            resolution=resolution,
            backend=self._parallel.backend,
            masking=self._masking,
        )

    def _recover_windowed(
        self,
        schedule: Schedule,
        plan: FaultPlan,
        effects: ResourceEffects,
        batch: RequestBatch,
        topology: Topology,
        cost_before: CostBreakdown,
    ) -> RecoveryResult:
        """Time-aware surgical recovery (see the module docstring).

        Deliveries and residencies never touched *during* a fault window
        carry over verbatim; only the genuinely-hit requests are re-solved
        on the conservative union mask, seeded with the kept caches of
        their video so the rebuild pays just the incremental Eq. 2/3
        difference.
        """
        catalog = self._cm.catalog
        impacted = windowed_impacted_videos(schedule, catalog, topology, plan)
        if not impacted:
            return RecoveryResult(
                plan=plan,
                schedule=schedule.copy(),
                cost_before=cost_before,
                cost_after=cost_before,
                backend=self._parallel.backend,
                masking=self._masking,
            )
        impacted_set = set(impacted)
        per_fault = [(f, effects_of(topology, f)) for f in plan]
        replicas = self._cm.replicas

        if all(w.name in effects.down_nodes for w in topology.warehouses):
            # Total warehouse loss: hit services cannot refill from
            # anywhere, but services at disjoint times already streamed --
            # keep them, drop only what a fault actually touches.
            patched = Schedule(
                fs for fs in schedule if fs.video_id not in impacted_set
            )
            saved: list[Request] = []
            lost: list[Request] = []
            for video_id in impacted:
                fs = schedule.file(video_id)
                hit_del, kept_del, kept_res = _split_hits(
                    fs, catalog[video_id].playback, per_fault
                )
                lost.extend(d.request for d in hit_del)
                saved.extend(d.request for d in kept_del)
                if kept_del:
                    patched.set_file(
                        FileSchedule(
                            video_id, list(kept_del), list(kept_res)
                        ).pruned()
                    )
            return RecoveryResult(
                plan=plan,
                schedule=patched,
                impacted=impacted,
                saved=tuple(saved),
                lost=tuple(lost),
                cost_before=cost_before,
                cost_after=self._cm.schedule_cost(patched),
                resolution=None,
                backend=self._parallel.backend,
                masking=self._masking,
            )

        # Per-window reachability: a request is lost only when its
        # neighborhood is unreachable from every surviving home *during its
        # own service window* -- the union mask would also count outages at
        # disjoint times.  Masks are cached per sub-plan signature.
        mask_cache: dict[tuple, dict] = {}

        def window_view(sub: FaultPlan) -> dict:
            sig = tuple(f.key for f in sub)
            entry = mask_cache.get(sig)
            if entry is None:
                try:
                    m = masked_topology(topology, sub)
                except FaultError:
                    # No warehouse survives this window.
                    entry = {"topology": None, "reach": {}}
                else:
                    router = Router(m)
                    entry = {
                        "topology": m,
                        "reach": {
                            w.name: router.reachable(w.name)
                            for w in m.warehouses
                        },
                    }
                mask_cache[sig] = entry
            return entry

        def servable_in(r: Request, view: dict) -> bool:
            reach = view["reach"]
            homes = (
                replicas.homes(r.video_id)
                if replicas is not None
                else tuple(reach)
            )
            return any(
                r.local_storage in reach[h] for h in homes if h in reach
            )

        patched = Schedule(
            fs for fs in schedule if fs.video_id not in impacted_set
        )
        saved = []
        lost = []
        surviving = [r for r in batch if r.video_id not in impacted_set]
        kept: dict[str, tuple[list[DeliveryInfo], list[ResidencyInfo]]] = {}
        pending_resolve: dict[str, list[Request]] = {}
        for video_id in impacted:
            fs = schedule.file(video_id)
            playback = catalog[video_id].playback
            hit_del, kept_del, kept_res = _split_hits(fs, playback, per_fault)
            video_resolve: list[Request] = []
            for d in hit_del:
                r = d.request
                view = window_view(
                    plan.overlapping(r.start_time, r.start_time + playback)
                )
                if servable_in(r, view):
                    video_resolve.append(r)
                else:
                    lost.append(r)
            for d in kept_del:
                saved.append(d.request)
                surviving.append(d.request)
            kept[video_id] = (kept_del, kept_res)
            if video_resolve:
                pending_resolve[video_id] = video_resolve

        # Group the re-solves by the sub-plan active over each video's
        # resolve span: every group re-solves on a mask of exactly the
        # faults it can intersect, so a request after an outage may rebuild
        # on the very storage that was down earlier.  Requests that stop
        # being servable under their (wider) group mask demote to lost.
        groups: dict[tuple, dict] = {}
        for video_id in impacted:
            video_resolve = pending_resolve.get(video_id)
            if not video_resolve:
                continue
            playback = catalog[video_id].playback
            t0 = min(r.start_time for r in video_resolve)
            t1 = max(r.start_time for r in video_resolve) + playback
            sub = plan.overlapping(t0, t1)
            view = window_view(sub)
            kept_here: list[Request] = []
            for r in video_resolve:
                if servable_in(r, view):
                    kept_here.append(r)
                    saved.append(r)
                    surviving.append(r)
                else:
                    lost.append(r)
            if not kept_here:
                continue
            sig = tuple(f.key for f in sub)
            group = groups.setdefault(
                sig, {"view": view, "requests": [], "videos": []}
            )
            group["requests"].extend(kept_here)
            group["videos"].append(video_id)

        resolution: ResolutionStats | None = None
        solved: dict[str, FileSchedule] = {}
        seeds: dict[str, tuple[ResidencyInfo, ...]] = {}
        for sig in sorted(groups):
            group = groups[sig]
            g_topo = group["view"]["topology"]
            g_cm = CostModel(
                g_topo,
                catalog,
                replicas=(
                    replicas.restricted_to(g_topo.node_names)
                    if replicas is not None
                    else None
                ),
            )
            sub_batch = RequestBatch(group["requests"])
            firsts = {
                video_id: min(
                    r.start_time
                    for r in group["requests"]
                    if r.video_id == video_id
                )
                for video_id in group["videos"]
            }
            # Kept caches seed the re-solve, but the greedy only extends a
            # cache *forward* -- seed just those ending before the video's
            # first re-solved request and surviving the group mask.
            for video_id in group["videos"]:
                _, kept_res = kept[video_id]
                seeds[video_id] = tuple(
                    c
                    for c in kept_res
                    if c.location in g_topo
                    and c.t_last <= firsts[video_id]
                )
            engine = ParallelIndividualScheduler(
                g_cm, self._parallel, obs=self._obs
            )
            phase1 = engine.run(sub_batch, catalog, seeds=seeds)
            solved.update({fs.video_id: fs for fs in phase1.schedule})
        for video_id in impacted:
            kept_del, kept_res = kept[video_id]
            new_fs = solved.get(video_id)
            if new_fs is not None:
                deliveries = list(kept_del) + list(new_fs.deliveries)
                # The re-solve's residencies include the (possibly
                # extended) seeded caches; add back only the unseeded ones.
                seeded = {
                    (c.location, c.t_start) for c in seeds.get(video_id, ())
                }
                residencies = list(new_fs.residencies) + [
                    c
                    for c in kept_res
                    if (c.location, c.t_start) not in seeded
                ]
            else:
                deliveries = list(kept_del)
                residencies = list(kept_res)
            if deliveries:
                patched.set_file(
                    FileSchedule(video_id, deliveries, residencies).pruned()
                )
        if solved:
            # Phase 2 on the healthy model: the grafted files must fit
            # alongside everything kept.  Kept caches are committed --
            # victim rebuilds may extend but never shrink them.
            patched, resolution = resolve_overflows(
                patched,
                RequestBatch(surviving),
                self._cm,
                metric=self._metric,
                committed={
                    video_id: tuple(kept_res)
                    for video_id, (_, kept_res) in kept.items()
                    if kept_res
                },
                obs=self._obs,
            )
            patched = patched.pruned()

        return RecoveryResult(
            plan=plan,
            schedule=patched,
            impacted=impacted,
            saved=tuple(saved),
            lost=tuple(lost),
            cost_before=cost_before,
            cost_after=self._cm.schedule_cost(patched),
            resolution=resolution,
            backend=self._parallel.backend,
            masking=self._masking,
        )

    def _record_metrics(self, result: RecoveryResult) -> None:
        metrics = self._obs.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "vor_recovery_videos_resolved_total",
            help="Videos incrementally re-solved by contingency scheduling",
        ).inc(result.videos_resolved)
        for outcome, count in (
            ("saved", result.requests_saved),
            ("lost", result.requests_lost),
        ):
            metrics.counter(
                "vor_recovery_requests_total",
                help="Impacted requests by recovery outcome",
                outcome=outcome,
            ).inc(count)
        metrics.gauge(
            "vor_recovery_cost_delta_dollars",
            mode="last",
            help="Ψ(patched) - Ψ(original) of the last contingency pass",
        ).set(result.cost_delta)


__all__ = [
    "ContingencyScheduler",
    "MASKING_MODES",
    "RecoveryResult",
    "impacted_videos",
    "windowed_impacted_videos",
]
