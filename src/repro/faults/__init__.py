"""Fault injection and contingency re-scheduling.

Seeded, declarative fault scenarios (:mod:`repro.faults.plan`), online
fault-report feeds (:mod:`repro.faults.feed`), their resource-level effects
and topology masking (:mod:`repro.faults.inject`), degraded-mode replay
analysis (:mod:`repro.faults.report`), and incremental recovery through the
existing two-phase machinery (:mod:`repro.faults.contingency`).
"""

from repro.faults.contingency import (
    MASKING_MODES,
    ContingencyScheduler,
    RecoveryResult,
    impacted_videos,
    windowed_impacted_videos,
)
from repro.faults.feed import FaultEvent, FaultFeed
from repro.faults.inject import (
    ResourceEffects,
    combined_effects,
    effects_of,
    masked_topology,
)
from repro.faults.plan import (
    LINK_KINDS,
    NODE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.faults.report import (
    DegradedModeReport,
    LinkStress,
    ServiceImpact,
    StorageStress,
    StrandedResidency,
    build_degraded_report,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "NODE_KINDS",
    "LINK_KINDS",
    "ResourceEffects",
    "effects_of",
    "combined_effects",
    "masked_topology",
    "ServiceImpact",
    "StrandedResidency",
    "LinkStress",
    "StorageStress",
    "DegradedModeReport",
    "build_degraded_report",
    "ContingencyScheduler",
    "MASKING_MODES",
    "RecoveryResult",
    "impacted_videos",
    "windowed_impacted_videos",
    "FaultEvent",
    "FaultFeed",
]
