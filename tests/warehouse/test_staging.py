"""Tests for the hierarchical-warehouse staging planner."""

import pytest

from repro import (
    DeliveryInfo,
    FileSchedule,
    Request,
    Schedule,
    VideoCatalog,
    VideoFile,
    VideoScheduler,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.errors import ConfigError
from repro.warehouse import StagingPlanner, WarehouseSpec


def _vw_stream(vid: str, t: float, loc: str = "IS1") -> DeliveryInfo:
    return DeliveryInfo(vid, ("VW", loc), t, Request(t, vid, f"u@{t}", loc))


def _schedule(streams) -> Schedule:
    files: dict[str, FileSchedule] = {}
    for vid, t in streams:
        files.setdefault(vid, FileSchedule(vid)).add_delivery(_vw_stream(vid, t))
    return Schedule(files.values())


@pytest.fixture
def catalog():
    return VideoCatalog(
        [VideoFile(f"v{i}", size=10.0 * units.GB, playback=3600.0) for i in range(6)]
    )


@pytest.fixture
def spec():
    # 10 GB titles stage in 90 + 10e9/30e6 = 423.3 s
    return WarehouseSpec(
        disk_capacity=25 * units.GB,
        tape_drives=2,
        tape_bandwidth=30 * units.MB,
        tape_seek=90.0,
    )


class TestWarehouseSpec:
    def test_staging_duration(self, spec):
        assert spec.staging_duration(10 * units.GB) == pytest.approx(
            90.0 + 10e9 / 30e6
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            WarehouseSpec(disk_capacity=0)
        with pytest.raises(ConfigError):
            WarehouseSpec(tape_drives=0)
        with pytest.raises(ConfigError):
            WarehouseSpec(tape_bandwidth=-1)
        with pytest.raises(ConfigError):
            WarehouseSpec(tape_seek=-1)
        with pytest.raises(ConfigError):
            WarehouseSpec().staging_duration(0)


class TestStagingPlanner:
    def test_single_stream_staged_in_time(self, catalog, spec):
        planner = StagingPlanner(spec, catalog)
        report = planner.plan(_schedule([("v0", 1000.0)]))
        assert report.total_streams == 1
        assert len(report.tasks) == 1
        assert report.misses == []
        task = report.tasks[0]
        assert task.finish <= 1000.0
        assert not task.late

    def test_reuse_is_a_hit(self, catalog, spec):
        planner = StagingPlanner(spec, catalog)
        report = planner.plan(_schedule([("v0", 1000.0), ("v0", 2000.0)]))
        assert len(report.tasks) == 1
        assert report.hits == 1
        assert report.hit_rate == 0.5

    def test_late_staging_reported(self, catalog, spec):
        """A stream at t=0 cannot possibly have been staged."""
        planner = StagingPlanner(spec, catalog)
        report = planner.plan(_schedule([("v0", 0.0)]))
        assert len(report.misses) == 1
        assert report.misses[0].cause == "late"
        assert report.misses[0].detail > 0
        assert report.miss_rate == 1.0

    def test_drive_contention_causes_lateness(self, catalog):
        """Three distinct titles due at once on two drives: one is late."""
        roomy = WarehouseSpec(
            disk_capacity=100 * units.GB,  # space is not the constraint here
            tape_drives=2,
            tape_bandwidth=30 * units.MB,
            tape_seek=90.0,
        )
        t = 500.0  # enough time for one staging round (423 s) but not two
        planner = StagingPlanner(roomy, catalog)
        report = planner.plan(
            _schedule([("v0", t), ("v1", t + 1.0), ("v2", t + 2.0)])
        )
        late = [m for m in report.misses if m.cause == "late"]
        assert len(late) == 1
        assert late[0].video_id == "v2"

    def test_belady_eviction_keeps_sooner_reuse(self, catalog, spec):
        """Disk fits 2 titles; the one reused sooner survives eviction."""
        planner = StagingPlanner(spec, catalog)
        # v0 reused at 20000 (soon), v1 reused at 90000 (far), v2 forces evict
        report = planner.plan(
            _schedule(
                [
                    ("v0", 5000.0),
                    ("v1", 6000.0),
                    ("v2", 15000.0),  # needs space: evict v1 (farther reuse)
                    ("v0", 20000.0),  # should be a hit
                    ("v1", 90000.0),  # re-staged
                ]
            )
        )
        assert report.misses == []
        staged = [t.video_id for t in report.tasks]
        assert staged.count("v1") == 2  # evicted and staged again
        assert staged.count("v0") == 1  # survived on disk
        assert report.hits == 1

    def test_space_miss_when_all_in_use(self, catalog):
        """Disk holds one title; simultaneous streams can't both fit."""
        tiny = WarehouseSpec(
            disk_capacity=10 * units.GB,
            tape_drives=2,
            tape_bandwidth=30 * units.MB,
            tape_seek=90.0,
        )
        planner = StagingPlanner(tiny, catalog)
        report = planner.plan(
            _schedule([("v0", 5000.0), ("v1", 5100.0)])  # overlapping streams
        )
        causes = {m.cause for m in report.misses}
        assert "space" in causes

    def test_disk_never_overcommitted(self, catalog, spec):
        planner = StagingPlanner(spec, catalog)
        streams = [(f"v{i % 6}", 3000.0 * (i + 1)) for i in range(12)]
        report = planner.plan(_schedule(streams))
        assert report.peak_disk_usage <= spec.disk_capacity + 1e-6

    def test_empty_schedule(self, catalog, spec):
        report = StagingPlanner(spec, catalog).plan(Schedule())
        assert report.total_streams == 0
        assert report.miss_rate == 0.0 and report.hit_rate == 0.0

    def test_drive_utilization(self, catalog, spec):
        planner = StagingPlanner(spec, catalog)
        report = planner.plan(_schedule([("v0", 5000.0), ("v1", 6000.0)]))
        utils = report.drive_utilization(spec)
        assert len(utils) == 2
        assert all(0.0 <= u <= 1.0 for u in utils)


class TestEndToEndStaging:
    def test_plan_for_real_schedule(self):
        """Plan staging for a full paper-scale scheduler output."""
        topo = paper_topology(
            nrate=units.per_gb(500),
            srate=units.per_gb_hour(5),
            capacity=units.gb(8),
        )
        catalog = paper_catalog(seed=6)
        batch = WorkloadGenerator(topo, catalog, alpha=0.271).generate(seed=6)
        result = VideoScheduler(topo, catalog).solve(batch)
        spec = WarehouseSpec(
            disk_capacity=400 * units.GB,
            tape_drives=8,
            tape_bandwidth=60 * units.MB,
        )
        report = StagingPlanner(spec, catalog).plan(result.schedule)
        assert report.total_streams > 0
        assert report.total_streams == sum(
            1 for d in result.schedule.deliveries if d.source == "VW"
        )
        assert report.peak_disk_usage <= spec.disk_capacity + 1e-6
        # generous hardware: nearly everything staged on time
        assert report.miss_rate < 0.25

    def test_more_drives_never_more_misses(self):
        topo = paper_topology(
            nrate=units.per_gb(500),
            srate=units.per_gb_hour(5),
            capacity=units.gb(8),
        )
        catalog = paper_catalog(100, seed=8)
        batch = WorkloadGenerator(topo, catalog, alpha=0.271).generate(seed=8)
        result = VideoScheduler(topo, catalog).solve(batch)
        misses = []
        for drives in (1, 4, 16):
            spec = WarehouseSpec(
                disk_capacity=500 * units.GB,
                tape_drives=drives,
                tape_bandwidth=60 * units.MB,
            )
            report = StagingPlanner(spec, catalog).plan(result.schedule)
            misses.append(len(report.misses))
        assert misses[0] >= misses[1] >= misses[2]
