"""Critical-path reduction over stitched span trees."""

import pytest

from repro.obs import Observability
from repro.obs.critpath import (
    critical_paths,
    dominant_path,
    format_critical_path,
    format_critical_paths,
)
from repro.obs.trace import SpanRecord


def _span(name, span_id, parent_id, duration, start=0.0):
    return SpanRecord(
        name=name,
        start=start,
        duration=duration,
        parent=None,
        span_id=span_id,
        parent_id=parent_id,
    )


@pytest.fixture
def tree():
    # solve(1.0) -> ivsp(0.7) -> video-a(0.5), video-b(0.1); sorp(0.2)
    return (
        _span("solve", 1, 0, 1.0),
        _span("ivsp", 2, 1, 0.7, start=0.0),
        _span("video-a", 3, 2, 0.5, start=0.0),
        _span("video-b", 4, 2, 0.1, start=0.5),
        _span("sorp", 5, 1, 0.2, start=0.7),
    )


class TestDescent:
    def test_follows_longest_child_chain(self, tree):
        (path,) = critical_paths(tree)
        assert [s.name for s in path.steps] == ["solve", "ivsp", "video-a"]
        assert [s.depth for s in path.steps] == [0, 1, 2]

    def test_shares_relative_to_root(self, tree):
        (path,) = critical_paths(tree)
        assert path.steps[0].share == 1.0
        assert path.steps[1].share == pytest.approx(0.7)
        assert path.total_seconds == 1.0

    def test_self_time_subtracts_direct_children(self, tree):
        (path,) = critical_paths(tree)
        by_name = {s.name: s for s in path.steps}
        assert by_name["solve"].self_time == pytest.approx(0.1)  # 1.0-0.7-0.2
        assert by_name["ivsp"].self_time == pytest.approx(0.1)  # 0.7-0.5-0.1
        assert by_name["video-a"].self_time == pytest.approx(0.5)  # leaf

    def test_dominant_is_largest_self_time(self, tree):
        (path,) = critical_paths(tree)
        assert path.dominant.name == "video-a"

    def test_duration_ties_break_by_start_then_name(self):
        records = (
            _span("root", 1, 0, 1.0),
            _span("late", 2, 1, 0.4, start=0.5),
            _span("early", 3, 1, 0.4, start=0.1),
        )
        (path,) = critical_paths(records)
        assert [s.name for s in path.steps] == ["root", "early"]


class TestRootsAndOrphans:
    def test_one_path_per_root_longest_first(self):
        records = (
            _span("small", 1, 0, 0.2),
            _span("big", 2, 0, 0.9),
        )
        paths = critical_paths(records)
        assert [p.root.name for p in paths] == ["big", "small"]
        assert dominant_path(records).root.name == "big"

    def test_orphan_parent_id_treated_as_root(self):
        # a parent_id that matches no record (truncated trace) roots the span
        records = (_span("stray", 7, 99, 0.3),)
        (path,) = critical_paths(records)
        assert path.root.name == "stray"

    def test_legacy_records_without_ids_are_single_step_roots(self):
        records = (
            SpanRecord(name="old-a", start=0.0, duration=0.5),
            SpanRecord(name="old-b", start=0.0, duration=0.2),
        )
        paths = critical_paths(records)
        assert [p.root.name for p in paths] == ["old-a", "old-b"]
        assert all(len(p.steps) == 1 for p in paths)

    def test_empty_trace(self):
        assert critical_paths(()) == ()
        assert dominant_path(()) is None
        assert format_critical_paths(()) == "no spans recorded"


class TestRealTracerStitching:
    def test_nested_spans_reduce_to_expected_chain(self):
        obs = Observability.on()
        with obs.tracer.span("solve"):
            with obs.tracer.span("ivsp"):
                with obs.tracer.span("ivsp.video"):
                    pass
            with obs.tracer.span("sorp"):
                pass
        (path,) = critical_paths(obs.tracer.records)
        assert path.root.name == "solve"
        names = [s.name for s in path.steps]
        assert names[0] == "solve" and len(names) >= 2

    def test_absorbed_worker_spans_join_the_tree(self):
        obs = Observability.on()
        with obs.tracer.span("ivsp"):
            worker = obs.child()
            with worker.tracer.span("ivsp.video"):
                pass
            obs.absorb(worker, parent="ivsp")
        (path,) = critical_paths(obs.tracer.records)
        assert [s.name for s in path.steps] == ["ivsp", "ivsp.video"]


class TestFormatting:
    def test_marks_hot_frame_and_indents(self, tree):
        text = format_critical_path(critical_paths(tree)[0])
        lines = text.splitlines()
        assert lines[0].startswith("critical path (1000.00 ms total)")
        hot = [line for line in lines if line.endswith(" *")]
        assert len(hot) == 1 and "video-a" in hot[0]
        assert lines[2].startswith("    ivsp")  # depth-1 indent

    def test_limit_caps_rendered_paths(self):
        records = tuple(
            _span(f"root{i}", i + 1, 0, 1.0 - i * 0.1) for i in range(5)
        )
        text = format_critical_paths(records, limit=2)
        assert text.count("critical path") == 2
