"""Unit tests for span tracing: nesting, attributes, absorption."""

import pytest

from repro.obs.trace import NullTracer, SpanRecord, Tracer, NULL_TRACER


class FakeClock:
    """Deterministic clock: each read advances one second."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestTracer:
    def test_records_name_and_duration(self):
        tracer = Tracer(FakeClock())
        with tracer.span("solve", requests=3):
            pass
        (record,) = tracer.records
        assert record.name == "solve"
        assert record.duration == 1.0  # one clock tick inside the span
        assert record.attributes == {"requests": 3}

    def test_nesting_sets_parent(self):
        tracer = Tracer(FakeClock())
        with tracer.span("solve"):
            with tracer.span("ivsp"):
                with tracer.span("ivsp.video"):
                    pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["solve"].parent is None
        assert by_name["ivsp"].parent == "solve"
        assert by_name["ivsp.video"].parent == "ivsp"

    def test_completion_order_is_inner_first(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r.name for r in tracer.records] == ["inner", "outer"]

    def test_set_attaches_late_attributes(self):
        tracer = Tracer(FakeClock())
        with tracer.span("sorp", residencies=4) as span:
            span.set(iterations=2, victims=1)
        (record,) = tracer.records
        assert record.attributes == {
            "residencies": 4,
            "iterations": 2,
            "victims": 1,
        }

    def test_exception_recorded_with_error_attr(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("solve"):
                raise ValueError("boom")
        (record,) = tracer.records
        assert record.attributes["error"] == "ValueError"
        assert tracer._stack == []  # stack unwound despite the raise

    def test_counts(self):
        tracer = Tracer(FakeClock())
        for _ in range(3):
            with tracer.span("ivsp.video"):
                pass
        with tracer.span("ivsp"):
            pass
        assert tracer.counts() == {"ivsp": 1, "ivsp.video": 3}

    def test_absorb_reparents_roots_only(self):
        worker = Tracer(FakeClock())
        with worker.span("ivsp.video"):
            with worker.span("inner"):
                pass
        main = Tracer(FakeClock())
        main.absorb(worker.records, parent="ivsp")
        by_name = {r.name: r for r in main.records}
        assert by_name["ivsp.video"].parent == "ivsp"  # root re-parented
        assert by_name["inner"].parent == "ivsp.video"  # child kept

    def test_span_record_to_dict_round_trips_json(self):
        import json

        record = SpanRecord(
            "solve", 0.5, 1.5, parent=None, attrs=(("requests", 3),)
        )
        dumped = json.loads(json.dumps(record.to_dict()))
        assert dumped == {
            "name": "solve",
            "start": 0.5,
            "duration": 1.5,
            "parent": None,
            "attrs": {"requests": 3},
            "span_id": 0,
            "parent_id": 0,
        }


class TestNullTracer:
    def test_inert(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("anything", x=1) as span:
            span.set(y=2)
        assert null.records == ()
        assert null.counts() == {}

    def test_shared_span_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
