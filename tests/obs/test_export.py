"""Exporter tests: Prometheus text, JSON snapshot, JSONL trace."""

import json

import pytest

from repro.obs import Observability
from repro.obs.export import (
    json_snapshot,
    prometheus_text,
    write_metrics,
    write_trace_jsonl,
)


@pytest.fixture
def populated_obs():
    obs = Observability.on()
    obs.metrics.counter(
        "vor_deliveries_total", help="Deliveries scheduled"
    ).inc(5)
    obs.metrics.gauge(
        "vor_storage_peak_reserved_bytes", mode="max", location="IS1"
    ).set(2.5e9)
    h = obs.metrics.histogram("vor_requests_per_video", boundaries=(1, 10))
    h.observe(3)
    h.observe(40)
    with obs.tracer.span("solve", requests=5):
        with obs.tracer.span("ivsp"):
            pass
    return obs


class TestPrometheusText:
    def test_headers_and_series(self, populated_obs):
        text = prometheus_text(populated_obs.metrics)
        assert "# HELP vor_deliveries_total Deliveries scheduled" in text
        assert "# TYPE vor_deliveries_total counter" in text
        assert "vor_deliveries_total 5" in text
        assert (
            'vor_storage_peak_reserved_bytes{location="IS1"} 2.5e+09' in text
        )

    def test_histogram_buckets_cumulative_with_inf(self, populated_obs):
        text = prometheus_text(populated_obs.metrics)
        assert 'vor_requests_per_video_bucket{le="1"} 0' in text
        assert 'vor_requests_per_video_bucket{le="10"} 1' in text
        assert 'vor_requests_per_video_bucket{le="+Inf"} 2' in text
        assert "vor_requests_per_video_sum 43" in text
        assert "vor_requests_per_video_count 2" in text

    def test_label_values_escaped(self):
        obs = Observability.on()
        obs.metrics.counter("c_total", path='we"ird\\name').inc()
        text = prometheus_text(obs.metrics)
        assert r'path="we\"ird\\name"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(Observability.on().metrics) == ""


class TestPrometheusEscaping:
    """Label-value escaping per the text exposition format."""

    @staticmethod
    def _render(value):
        obs = Observability.on()
        obs.metrics.counter("c_total", path=value).inc()
        return prometheus_text(obs.metrics)

    def test_backslashes(self):
        assert r'path="a\\b"' in self._render("a\\b")

    def test_newlines(self):
        text = self._render("line1\nline2")
        assert r'path="line1\nline2"' in text
        # no raw newline may survive inside a label value
        for line in text.splitlines():
            assert not line.startswith("line2")

    def test_quotes(self):
        assert r'path="say \"hi\""' in self._render('say "hi"')

    def test_backslash_escaped_before_quote(self):
        # a pre-escaped quote in the value must not collapse: the
        # backslash pass runs first, so \" renders as \\\"
        assert 'path="\\\\\\""' in self._render('\\"')

    def test_all_three_combined(self):
        text = self._render('a\\b"c\nd')
        assert r'path="a\\b\"c\nd"' in text


class TestPrometheusOrdering:
    """# TYPE line order is sorted-by-name, not registration order."""

    def test_type_lines_sorted(self):
        obs = Observability.on()
        for name in ("z_total", "a_total", "m_total"):
            obs.metrics.counter(name).inc()
        names = [
            line.split()[2]
            for line in prometheus_text(obs.metrics).splitlines()
            if line.startswith("# TYPE")
        ]
        assert names == sorted(names) == ["a_total", "m_total", "z_total"]

    def test_registration_order_does_not_change_output(self):
        def build(order):
            obs = Observability.on()
            for name in order:
                obs.metrics.counter(name, help=f"{name} help").inc()
            return prometheus_text(obs.metrics)

        assert build(("z_total", "a_total")) == build(("a_total", "z_total"))

    def test_merge_order_does_not_change_output(self):
        def build(order):
            obs = Observability.on()
            for name in order:
                shard = Observability.on()
                shard.metrics.counter(name).inc()
                obs.metrics.merge(shard.metrics)
            return prometheus_text(obs.metrics)

        assert build(("z_total", "a_total")) == build(("a_total", "z_total"))


class TestJsonSnapshot:
    def test_layout(self, populated_obs):
        doc = json.loads(json_snapshot(populated_obs.telemetry()))
        assert set(doc) == {"metrics", "phases", "spans"}
        assert doc["metrics"]["vor_deliveries_total"]["kind"] == "counter"
        assert doc["phases"]["ivsp"]["count"] == 1
        names = [s["name"] for s in doc["spans"]]
        assert names == ["ivsp", "solve"]  # completion order


class TestWriteMetrics:
    def test_json_suffix_writes_telemetry_bundle(self, populated_obs, tmp_path):
        path = write_metrics(tmp_path / "metrics.json", populated_obs)
        doc = json.loads(path.read_text())
        assert "phases" in doc and "metrics" in doc

    def test_prom_suffix_writes_exposition(self, populated_obs, tmp_path):
        path = write_metrics(tmp_path / "metrics.prom", populated_obs)
        assert "# TYPE vor_deliveries_total counter" in path.read_text()

    def test_prom_from_snapshot_rejected(self, populated_obs, tmp_path):
        with pytest.raises(ValueError, match="live"):
            write_metrics(tmp_path / "m.prom", populated_obs.telemetry())


class TestWriteTraceJsonl:
    def test_one_line_per_span(self, populated_obs, tmp_path):
        path = write_trace_jsonl(
            tmp_path / "trace.jsonl", populated_obs.tracer.records
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "ivsp"
        assert parsed[0]["parent"] == "solve"
        assert parsed[1]["attrs"] == {"requests": 5}
