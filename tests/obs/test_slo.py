"""SLO policy evaluation, burn-rate math, and indicator derivation."""

import json
import math

import pytest

from repro.obs import Observability
from repro.obs.slo import (
    DETERMINISTIC_INDICATORS,
    SLOError,
    SLOPolicy,
    SLOSpec,
    deterministic_slice,
    online_indicators,
)


class TestSpecValidation:
    def test_valid_ops(self):
        SLOSpec("a", "x", 0.5, ">=")
        SLOSpec("b", "x", 0.5, "<=")

    def test_bad_op_rejected(self):
        with pytest.raises(SLOError, match="op"):
            SLOSpec("a", "x", 0.5, "==")

    def test_non_finite_objective_rejected(self):
        with pytest.raises(SLOError, match="finite"):
            SLOSpec("a", "x", math.inf)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SLOError, match="duplicate"):
            SLOPolicy(specs=(SLOSpec("a", "x", 0.5), SLOSpec("a", "y", 0.5)))


class TestBurnMath:
    def test_floor_objective_burn(self):
        # objective >= 0.9 leaves a 0.1 budget; value 0.95 burns half
        policy = SLOPolicy(specs=(SLOSpec("hit", "v", 0.9, ">="),))
        (r,) = policy.evaluate({"v": 0.95}).results
        assert r.met and r.status == "ok"
        assert r.burn_rate == pytest.approx(0.5)
        assert r.budget_remaining == pytest.approx(0.5)

    def test_floor_breach(self):
        policy = SLOPolicy(specs=(SLOSpec("hit", "v", 0.9, ">="),))
        (r,) = policy.evaluate({"v": 0.7}).results
        assert not r.met and r.status == "breach"
        assert r.burn_rate == pytest.approx(3.0)
        assert r.budget_remaining == 0.0

    def test_ceiling_objective_burn(self):
        policy = SLOPolicy(specs=(SLOSpec("rej", "v", 0.25, "<="),))
        (r,) = policy.evaluate({"v": 0.125}).results
        assert r.met
        assert r.burn_rate == pytest.approx(0.5)

    def test_exact_objective_met_with_budget_spent(self):
        policy = SLOPolicy(specs=(SLOSpec("rej", "v", 0.25, "<="),))
        (r,) = policy.evaluate({"v": 0.25}).results
        assert r.met
        assert r.burn_rate == pytest.approx(1.0)
        assert r.budget_remaining == 0.0

    def test_zero_budget_floor(self):
        # objective >= 1.0 has no budget: perfection burns 0, less is inf
        policy = SLOPolicy(specs=(SLOSpec("hit", "v", 1.0, ">="),))
        (ok,) = policy.evaluate({"v": 1.0}).results
        assert ok.met and ok.burn_rate == 0.0
        (bad,) = policy.evaluate({"v": 0.999}).results
        assert not bad.met and bad.burn_rate == math.inf

    def test_missing_indicator_is_no_data_pass(self):
        policy = SLOPolicy(specs=(SLOSpec("rec", "recovery_s", 30.0, "<="),))
        (r,) = policy.evaluate({}).results
        assert r.met and r.status == "no-data"
        assert r.value is None
        assert r.burn_rate == 0.0 and r.budget_remaining == 1.0

    def test_report_ok_and_breaches(self):
        policy = SLOPolicy(
            specs=(
                SLOSpec("good", "a", 0.5, ">="),
                SLOSpec("bad", "b", 0.1, "<="),
            )
        )
        report = policy.evaluate({"a": 0.9, "b": 0.9})
        assert not report.ok
        assert [r.spec.name for r in report.breaches] == ["bad"]


class TestPolicySerialization:
    def test_round_trip_via_dict(self):
        policy = SLOPolicy.default()
        again = SLOPolicy.from_dict(policy.to_dict())
        assert again == policy

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(SLOPolicy.default().to_dict()))
        assert SLOPolicy.load(path) == SLOPolicy.default()

    def test_committed_drill_policy_parses(self):
        policy = SLOPolicy.load("benchmarks/scenarios/online_slo.json")
        assert "deadline-hit-rate" in policy.names
        assert len(policy.names) == 6

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(SLOError, match="cannot read"):
            SLOPolicy.load(path)

    def test_from_dict_rejects_wrong_shapes(self):
        with pytest.raises(SLOError):
            SLOPolicy.from_dict({"wrong": []})
        with pytest.raises(SLOError, match="slos\\[0\\]"):
            SLOPolicy.from_dict({"slos": [{"name": "a"}]})


class TestRecordGauges:
    def test_burn_and_budget_gauges_published(self):
        obs = Observability.on()
        policy = SLOPolicy(specs=(SLOSpec("hit", "v", 0.9, ">="),))
        policy.evaluate({"v": 0.95}).record(obs.metrics)
        snap = obs.metrics.snapshot()
        (burn,) = snap["vor_slo_burn_rate"]["values"]
        assert burn["labels"] == {"slo": "hit"}
        assert burn["value"] == pytest.approx(0.5)
        (left,) = snap["vor_slo_error_budget_remaining_ratio"]["values"]
        assert left["value"] == pytest.approx(0.5)
        assert not snap["vor_slo_burn_rate"]["deterministic"]

    def test_null_registry_untouched(self):
        policy = SLOPolicy(specs=(SLOSpec("hit", "v", 0.9, ">="),))
        policy.evaluate({"v": 0.95}).record(Observability.off().metrics)


class TestFormatReport:
    def test_renders_pass_fail_and_verdict(self):
        policy = SLOPolicy(
            specs=(
                SLOSpec("good", "a", 0.5, ">="),
                SLOSpec("bad", "b", 0.1, "<="),
            )
        )
        text = policy.evaluate({"a": 0.9, "b": 0.9}).format_report()
        assert text.startswith("slo: BREACHED (1)")
        assert "PASS  good" in text and "FAIL  bad" in text

    def test_empty_policy(self):
        assert SLOPolicy(specs=()).evaluate({}).format_report() == (
            "slo: empty policy"
        )


class _Rec:
    def __init__(self, outcome="amended", lost=0, duration_s=0.0):
        self.outcome = outcome
        self.lost = lost
        self.duration_s = duration_s


class _Run:
    def __init__(self, records, shed_total=0):
        self.records = records
        self.shed_total = shed_total
        self.batches_total = len(records)


class TestOnlineIndicators:
    def test_standard_derivation(self):
        run = _Run(
            [
                _Rec(outcome="amended", lost=1, duration_s=0.2),
                _Rec(outcome="failed", lost=2, duration_s=0.5),
            ],
            shed_total=1,
        )
        ind = online_indicators(run, reservations=20, rejected=5)
        assert ind["rejection_rate"] == pytest.approx(0.2)  # 5/25
        assert ind["deadline_hit_rate"] == pytest.approx(0.8)  # 1-(3+1)/20
        assert ind["shed_rate"] == pytest.approx(0.05)
        assert ind["amendment_failure_rate"] == pytest.approx(0.5)
        assert ind["amendment_latency_seconds"] == pytest.approx(0.5)

    def test_hit_rate_clamped_at_zero(self):
        run = _Run([_Rec(lost=50)])
        ind = online_indicators(run, reservations=10)
        assert ind["deadline_hit_rate"] == 0.0

    def test_empty_run_yields_partial_dict(self):
        ind = online_indicators(_Run([]), reservations=0)
        assert ind == {}  # all no-data: zero reservations, zero batches

    def test_deterministic_slice_drops_latency(self):
        ind = {
            "deadline_hit_rate": 1.0,
            "amendment_latency_seconds": 0.3,
            "shed_rate": 0.0,
        }
        sliced = deterministic_slice(ind)
        assert sliced == {"deadline_hit_rate": 1.0, "shed_rate": 0.0}
        assert set(sliced) <= set(DETERMINISTIC_INDICATORS)
