"""Logging conventions: level parsing and idempotent configuration."""

import io
import logging

import pytest

from repro.obs.logs import configure_logging, parse_level


class TestParseLevel:
    def test_names_map_to_levels(self):
        assert parse_level("debug") == logging.DEBUG
        assert parse_level("INFO") == logging.INFO
        assert parse_level(" warning ") == logging.WARNING

    def test_ints_pass_through(self):
        assert parse_level(logging.ERROR) == logging.ERROR

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            parse_level("loud")


class TestConfigureLogging:
    def _managed_handlers(self):
        root = logging.getLogger("repro")
        return [
            h for h in root.handlers if getattr(h, "_repro_managed", False)
        ]

    def test_attaches_one_stream_handler(self):
        stream = io.StringIO()
        root = configure_logging("info", stream=stream)
        assert root.level == logging.INFO
        assert len(self._managed_handlers()) == 1
        logging.getLogger("repro.core.sorp").info("hello from sorp")
        assert "repro.core.sorp: hello from sorp" in stream.getvalue()

    def test_reconfiguring_replaces_instead_of_stacking(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging("info", stream=first)
        configure_logging("debug", stream=second)
        assert len(self._managed_handlers()) == 1
        logging.getLogger("repro.x").debug("only in second")
        assert "only in second" not in first.getvalue()
        assert "only in second" in second.getvalue()

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        logging.getLogger("repro.y").info("quiet")
        logging.getLogger("repro.y").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_foreign_handlers_left_alone(self):
        root = logging.getLogger("repro")
        foreign = logging.NullHandler()
        root.addHandler(foreign)
        try:
            configure_logging("info", stream=io.StringIO())
            assert foreign in root.handlers
        finally:
            root.removeHandler(foreign)
