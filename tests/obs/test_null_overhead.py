"""Regression: the null obs layer adds no allocations to the Ψ_C hot path.

The cost model keeps plain ``int`` hit/miss counters and never consults
the observability handle inside ``_psi_c``; instrumented call sites hold
the shared null instruments.  This test pins both properties so a future
"just one little metric in the inner loop" change fails loudly.
"""

import tracemalloc

from repro import units
from repro.core.costmodel import CostModel
from repro.core.schedule import ResidencyInfo
from repro.obs import NULL_OBS, NULL_REGISTRY, NULL_TRACER
from repro.topology import worked_example_topology
from repro.catalog import VideoCatalog, VideoFile


def _warm_model():
    topo = worked_example_topology()
    catalog = VideoCatalog(
        [
            VideoFile(
                "movie",
                size=units.gb(2.5),
                playback=units.minutes(90),
                bandwidth=units.mbps(6),
            )
        ]
    )
    cm = CostModel(topo, catalog)
    residency = ResidencyInfo(
        video_id="movie",
        location="IS1",
        source="VW",
        t_start=units.HOUR,
        t_last=3 * units.HOUR,
    )
    cm.residency_cost(residency)  # populate the Ψ_C cache
    return cm, residency


class TestNullOverhead:
    def test_warm_psi_c_path_allocates_nothing(self):
        cm, residency = _warm_model()
        baseline = cm.cache_stats.hits
        tracemalloc.start()
        try:
            for _ in range(200):
                cm.residency_cost(residency)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert cm.cache_stats.hits == baseline + 200
        # warm lookups reuse the cached float; only transient frame-local
        # objects may appear (tracemalloc itself can account a few bytes)
        assert peak < 4096, f"warm Ψ_C path allocated {peak} bytes"

    def test_null_instruments_are_shared_singletons(self):
        reg = NULL_REGISTRY
        assert reg.counter("vor_x_total", phase="ivsp") is reg.counter(
            "vor_y_total"
        )
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_OBS.child() is NULL_OBS

    def test_null_counter_calls_do_not_grow_memory(self):
        counter = NULL_REGISTRY.counter("vor_anything_total")
        span = NULL_TRACER.span("anything")
        tracemalloc.start()
        try:
            for _ in range(1000):
                counter.inc()
                with span:
                    pass
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 4096, f"null instruments allocated {peak} bytes"
