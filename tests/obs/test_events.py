"""Unit tests for the request-lifecycle audit journal."""

import json

import pytest

from repro import Request, units
from repro.obs.events import (
    EVENT_KINDS,
    JournalError,
    JournalEvent,
    NULL_JOURNAL,
    RequestJournal,
    load_journal_jsonl,
    request_key,
    write_journal_jsonl,
)


def _request(user="alice", video="m0", start=5 * units.HOUR, storage="IS1"):
    return Request(
        user_id=user, video_id=video, start_time=start, local_storage=storage
    )


class TestRequestKey:
    def test_derived_from_identifying_fields(self):
        assert request_key(_request()) == "alice/m0@18000->IS1"

    def test_identical_reservations_share_a_key(self):
        assert request_key(_request()) == request_key(_request())

    def test_distinct_fields_distinct_keys(self):
        base = _request()
        for other in (
            _request(user="bob"),
            _request(video="m1"),
            _request(start=6 * units.HOUR),
            _request(storage="IS2"),
        ):
            assert request_key(other) != request_key(base)


class TestEmit:
    def test_seq_is_append_order(self):
        j = RequestJournal()
        j.emit("admitted", request=_request())
        j.emit("shed", request=_request())
        assert [e.seq for e in j] == [0, 1]
        assert [e.kind for e in j] == ["admitted", "shed"]

    def test_request_fills_id_and_video(self):
        j = RequestJournal()
        j.emit("admitted", request=_request())
        (e,) = j.events
        assert e.request_id == "alice/m0@18000->IS1"
        assert e.video_id == "m0"

    def test_attrs_sorted_by_name(self):
        j = RequestJournal()
        j.emit("rejected", request_id="r", zeta=1, alpha=2)
        (e,) = j.events
        assert e.attrs == (("alpha", 2), ("zeta", 1))

    def test_unknown_kind_rejected(self):
        j = RequestJournal()
        with pytest.raises(JournalError, match="unknown event kind"):
            j.emit("exploded")

    def test_every_declared_kind_accepted(self):
        j = RequestJournal()
        for kind in EVENT_KINDS:
            j.emit(kind)
        assert len(j) == len(EVENT_KINDS)

    def test_counts_sorted_per_kind(self):
        j = RequestJournal()
        j.emit("shed")
        j.emit("admitted")
        j.emit("shed")
        assert j.counts() == {"admitted": 1, "shed": 2}
        assert list(j.counts()) == ["admitted", "shed"]


class TestAbsorb:
    def test_resequences_in_shard_order(self):
        main, shard1, shard2 = RequestJournal(), RequestJournal(), RequestJournal()
        main.emit("admitted", request_id="r0")
        shard1.emit("phase1-assigned", request_id="r1")
        shard2.emit("phase1-assigned", request_id="r2")
        main.absorb(shard1.events)
        main.absorb(shard2.events)
        assert [e.seq for e in main] == [0, 1, 2]
        assert [e.request_id for e in main] == ["r0", "r1", "r2"]

    def test_merged_order_equals_serial_order(self):
        # emitting directly vs sharded-then-absorbed yields identical logs
        serial = RequestJournal()
        for rid in ("a", "b", "c"):
            serial.emit("phase1-assigned", request_id=rid, source="VW")
        sharded = RequestJournal()
        for rid in ("a", "b", "c"):
            shard = RequestJournal()
            shard.emit("phase1-assigned", request_id=rid, source="VW")
            sharded.absorb(shard.events)
        assert sharded.events == serial.events

    def test_source_events_unmutated(self):
        shard = RequestJournal()
        shard.emit("saved", request_id="r")
        main = RequestJournal()
        main.emit("admitted", request_id="r")
        main.absorb(shard.events)
        assert shard.events[0].seq == 0  # frozen original untouched
        assert main.events[1].seq == 1


class TestExplain:
    @pytest.fixture
    def journal(self):
        j = RequestJournal()
        j.emit("admitted", request_id="alice/m0@18000->IS1", video_id="m0")
        j.emit("admitted", request_id="bob/m1@21600->IS2", video_id="m1")
        j.emit(
            "phase1-assigned",
            request_id="alice/m0@18000->IS1",
            video_id="m0",
            source="VW",
        )
        j.emit("sorp-placed", video_id="m0", location="IS2", heat=0.5)
        j.emit("sorp-placed", video_id="m1", location="IS1", heat=0.2)
        j.emit("cycle-closed", index=0, requests=2)
        return j

    def test_own_events_in_journal_order(self, journal):
        kinds = [e.kind for e in journal.explain("alice/m0@18000->IS1")]
        assert kinds == ["admitted", "phase1-assigned", "sorp-placed"]

    def test_video_scoped_events_included_for_touched_videos_only(self, journal):
        events = journal.explain("alice/m0@18000->IS1")
        placed = [e for e in events if e.kind == "sorp-placed"]
        assert [e.video_id for e in placed] == ["m0"]  # not m1's move

    def test_global_events_excluded(self, journal):
        assert all(
            e.kind != "cycle-closed"
            for e in journal.explain("alice/m0@18000->IS1")
        )

    def test_unknown_request_empty(self, journal):
        assert journal.explain("nobody/m9@0->IS9") == ()

    def test_request_ids_first_appearance_order(self, journal):
        assert journal.request_ids() == (
            "alice/m0@18000->IS1",
            "bob/m1@21600->IS2",
        )

    def test_format_timeline_renders_every_event(self, journal):
        text = journal.format_timeline("alice/m0@18000->IS1")
        assert text.startswith("timeline for alice/m0@18000->IS1:")
        assert "phase1-assigned" in text
        assert "[video m0]" in text  # video-scoped marker on the SORP line

    def test_format_timeline_unknown_request(self, journal):
        assert "no events" in journal.format_timeline("nobody/m9@0->IS9")


class TestJsonl:
    def test_round_trip(self, tmp_path):
        j = RequestJournal()
        j.emit("admitted", request_id="r0", video_id="m0", start=5.0)
        j.emit("overflowed", location="IS1", videos=("m0", "m1"), excess=2.5)
        path = write_journal_jsonl(tmp_path / "j.jsonl", j)
        loaded = load_journal_jsonl(path)
        assert loaded.events == j.events

    def test_bytes_identical_for_identical_journals(self, tmp_path):
        def build():
            j = RequestJournal()
            j.emit("admitted", request_id="r0", video_id="m0", start=5.0)
            j.emit("shed", request_id="r0", video_id="m0")
            return j

        a = write_journal_jsonl(tmp_path / "a.jsonl", build())
        b = write_journal_jsonl(tmp_path / "b.jsonl", build())
        assert a.read_bytes() == b.read_bytes()

    def test_lines_are_sorted_key_json(self, tmp_path):
        j = RequestJournal()
        j.emit("admitted", request_id="r0", video_id="m0")
        path = write_journal_jsonl(tmp_path / "j.jsonl", j)
        (line,) = path.read_text().splitlines()
        doc = json.loads(line)
        assert list(doc) == sorted(doc)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JournalError, match="not JSON"):
            load_journal_jsonl(path)

    def test_load_rejects_malformed_event(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\n')
        with pytest.raises(JournalError, match="malformed"):
            load_journal_jsonl(path)

    def test_load_rejects_unknown_kind_with_taxonomy_message(self, tmp_path):
        """A journal from another library version fails loudly at load,
        naming the offending line -- never a raw ``KeyError`` downstream."""
        path = tmp_path / "stale.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "event": "warp-drive", "attrs": {}}) + "\n"
        )
        with pytest.raises(JournalError) as excinfo:
            load_journal_jsonl(path)
        message = str(excinfo.value)
        assert "stale.jsonl:1" in message
        assert "unknown event kind 'warp-drive'" in message
        assert f"({len(EVENT_KINDS)} kinds)" in message
        assert "re-export" in message

    def test_blank_lines_skipped(self, tmp_path):
        j = RequestJournal()
        j.emit("admitted", request_id="r0")
        path = write_journal_jsonl(tmp_path / "j.jsonl", j)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_journal_jsonl(path)) == 1


class TestNullJournal:
    def test_inert_everything(self):
        NULL_JOURNAL.emit("admitted", request_id="r")
        assert not NULL_JOURNAL.enabled
        assert NULL_JOURNAL.events == ()
        assert len(NULL_JOURNAL) == 0
        assert list(NULL_JOURNAL) == []
        assert NULL_JOURNAL.counts() == {}
        assert NULL_JOURNAL.request_ids() == ()
        assert NULL_JOURNAL.explain("r") == ()
        assert NULL_JOURNAL.format_timeline("r") == "journal disabled"

    def test_absorb_noop(self):
        NULL_JOURNAL.absorb(
            (JournalEvent(seq=0, kind="admitted", request_id="r"),)
        )
        assert NULL_JOURNAL.events == ()
