"""Unit tests for the metrics registry: instruments, labels, merges."""

import pickle

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DOLLAR_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match=">= 0"):
            reg.counter("hits_total").inc(-1)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("evals_total", cache="psi_c").inc(3)
        reg.counter("evals_total", cache="psi_d").inc(7)
        assert reg.counter("evals_total", cache="psi_c").value == 3
        assert reg.counter("evals_total", cache="psi_d").value == 7

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x_total", a="1", b="2").inc()
        assert reg.counter("x_total", b="2", a="1").value == 1


class TestGauge:
    def test_last_mode_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("cost")
        g.set(5.0)
        g.set(3.0)
        assert g.value == 3.0

    def test_max_mode_keeps_peak_on_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak", mode="max")
        g.set(5.0)
        g.set(3.0)
        assert g.value == 5.0

    def test_min_and_sum_modes(self):
        reg = MetricsRegistry()
        lo = reg.gauge("lo", mode="min")
        lo.set(5.0)
        lo.set(3.0)
        assert lo.value == 3.0
        acc = reg.gauge("acc", mode="sum")
        acc.set(5.0)
        acc.set(3.0)
        assert acc.value == 8.0

    def test_unknown_mode_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="mode"):
            reg.gauge("g", mode="avg")

    def test_untouched_gauge_does_not_clobber_on_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("peak", mode="max").set(9.0)
        b.gauge("peak", mode="max")  # registered, never set
        a.merge(b)
        assert a.gauge("peak", mode="max").value == 9.0


class TestGaugeLastMergeContract:
    """Pin the ``mode="last"`` cross-shard semantics.

    "Last" means the last *touched* shard in deterministic shard order,
    never a wall-clock last-writer.  See the ``Gauge`` docstring.
    """

    def test_last_touched_shard_in_merge_order_wins(self):
        main = MetricsRegistry()
        shard1 = MetricsRegistry()
        shard2 = MetricsRegistry()
        shard1.gauge("cost").set(1.0)
        shard2.gauge("cost").set(2.0)
        main.merge(shard1)
        main.merge(shard2)
        assert main.gauge("cost").value == 2.0

    def test_merge_order_defines_the_result(self):
        # the symmetric merge gives the other value: "last" is
        # order-defined, which is exactly why shard order must be
        # deterministic
        main = MetricsRegistry()
        shard1 = MetricsRegistry()
        shard2 = MetricsRegistry()
        shard1.gauge("cost").set(1.0)
        shard2.gauge("cost").set(2.0)
        main.merge(shard2)
        main.merge(shard1)
        assert main.gauge("cost").value == 1.0

    def test_untouched_later_shard_never_overwrites(self):
        main = MetricsRegistry()
        shard1 = MetricsRegistry()
        shard2 = MetricsRegistry()
        shard1.gauge("cost").set(1.0)
        shard2.gauge("cost")  # registered, never set
        main.merge(shard1)
        main.merge(shard2)
        assert main.gauge("cost").value == 1.0

    def test_touched_shard_overwrites_coordinator_value(self):
        main = MetricsRegistry()
        shard = MetricsRegistry()
        main.gauge("cost").set(5.0)
        shard.gauge("cost").set(7.0)
        main.merge(shard)
        assert main.gauge("cost").value == 7.0

    def test_merge_marks_target_touched(self):
        # a value arriving via merge must survive later untouched merges
        main = MetricsRegistry()
        shard1 = MetricsRegistry()
        shard2 = MetricsRegistry()
        shard1.gauge("cost").set(3.0)
        shard2.gauge("cost")
        main.gauge("cost")  # coordinator registers but never sets
        main.merge(shard1)
        main.merge(shard2)
        assert main.gauge("cost").value == 3.0


class TestHistogram:
    def test_observe_buckets_by_upper_bound(self):
        h = Histogram((1, 10, 100))
        for v in (0.5, 1, 5, 50, 5000):
            h.observe(v)
        assert h.bucket_counts() == {"1": 2, "10": 1, "100": 1, "+Inf": 1}
        assert h.count == 5
        assert h.sum == pytest.approx(5056.5)

    def test_cumulative_counts_are_prometheus_style(self):
        h = Histogram((1, 10))
        h.observe(0.5)
        h.observe(5)
        h.observe(500)
        assert h.cumulative_counts() == [("1", 1), ("10", 2), ("+Inf", 3)]

    def test_boundaries_must_increase(self):
        with pytest.raises(MetricsError, match="increasing"):
            Histogram((10, 1))
        with pytest.raises(MetricsError, match="increasing"):
            Histogram((1, 1))

    def test_merge_requires_identical_boundaries(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", boundaries=COUNT_BUCKETS)
        b.histogram("h", boundaries=DOLLAR_BUCKETS)
        with pytest.raises(MetricsError, match="incompatibly|boundaries"):
            a.merge(b)


class TestRegistrySpecConflicts:
    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError, match="incompatibly"):
            reg.gauge("x")

    def test_gauge_mode_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("g", mode="max")
        with pytest.raises(MetricsError, match="incompatibly"):
            reg.gauge("g", mode="last")

    def test_compatible_reregistration_returns_same_child(self):
        reg = MetricsRegistry()
        reg.counter("x", help="first").inc()
        reg.counter("x").inc()
        assert reg.counter("x").value == 2


class TestMerge:
    @staticmethod
    def _populated(seed: int) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("c_total", phase="ivsp").inc(seed)
        reg.counter("c_total", phase="sorp").inc(2 * seed)
        reg.gauge("peak", mode="max", location="IS1").set(float(seed))
        h = reg.histogram("h", boundaries=(1, 10, 100))
        for v in range(seed):
            h.observe(v)
        return reg

    def test_merge_is_exact(self):
        a = self._populated(3)
        a.merge(self._populated(5))
        assert a.counter("c_total", phase="ivsp").value == 8
        assert a.counter("c_total", phase="sorp").value == 16
        assert a.gauge("peak", mode="max", location="IS1").value == 5.0
        assert a.histogram("h", boundaries=(1, 10, 100)).count == 8

    def test_merge_is_associative(self):
        left = self._populated(2)
        mid_l = self._populated(3)
        mid_l.merge(self._populated(4))
        left.merge(mid_l)

        right = self._populated(2)
        right.merge(self._populated(3))
        right.merge(self._populated(4))

        assert left.snapshot() == right.snapshot()

    def test_counter_and_histogram_merge_order_independent(self):
        ab = self._populated(3)
        ab.merge(self._populated(7))
        ba = self._populated(7)
        ba.merge(self._populated(3))
        # max-gauges are also symmetric; 'last' gauges would not be, which
        # is why the pipeline only merges last-gauges in deterministic order
        assert ab.snapshot() == ba.snapshot()

    def test_merge_null_registry_is_noop(self):
        a = self._populated(3)
        before = a.snapshot()
        a.merge(NULL_REGISTRY)
        assert a.snapshot() == before


class TestSnapshot:
    def test_deterministic_only_filters_families(self):
        reg = MetricsRegistry()
        reg.counter("work_total").inc()
        reg.counter("cache_hits_total", deterministic=False).inc()
        full = reg.snapshot()
        det = reg.snapshot(deterministic_only=True)
        assert set(full) == {"work_total", "cache_hits_total"}
        assert set(det) == {"work_total"}

    def test_snapshot_is_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c_total", phase="ivsp").inc(2)
        reg.histogram("h", boundaries=(1, 10)).observe(5)
        dumped = json.loads(json.dumps(reg.snapshot()))
        assert dumped["c_total"]["values"][0]["labels"] == {"phase": "ivsp"}
        assert dumped["h"]["values"][0]["buckets"] == {"1": 0, "10": 1, "+Inf": 0}


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert not null.enabled
        null.counter("x").inc()
        null.gauge("g").set(1.0)
        null.histogram("h").observe(2.0)
        assert null.snapshot() == {}
        assert list(null.families()) == []

    def test_shared_instruments(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b", anything="goes")


class TestPickling:
    def test_registry_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c_total", phase="ivsp").inc(3)
        reg.gauge("peak", mode="max").set(7.0)
        reg.histogram("h", boundaries=(1, 10)).observe(5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
        # and a merged clone doubles the counters (real merge semantics)
        reg.merge(clone)
        assert reg.counter("c_total", phase="ivsp").value == 6
