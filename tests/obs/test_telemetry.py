"""RunTelemetry aggregation and JSON snapshot round-trip coverage.

``phase_totals()`` is the per-phase wall-time view every exporter and
the ``vor-repro report`` dashboard consume; ``json_snapshot`` is the
``--metrics-out`` document.  These tests pin both on hand-built spans
and on a real degraded online run, so the snapshot provably carries the
``vor_online_*`` families and shed-reservation counters end to end.
"""

import json

import pytest

from repro import (
    Observability,
    Topology,
    VideoCatalog,
    VideoFile,
    VORService,
    units,
)
from repro.faults import FaultEvent, FaultKind, FaultSpec, FaultFeed
from repro.obs import RunTelemetry, json_snapshot
from repro.obs.trace import SpanRecord
from repro.online import (
    OnlineAmendmentLoop,
    OnlineLoopConfig,
    TransientFailureInjector,
)

H = units.HOUR


def _span(name, start, duration, parent=None, **attrs):
    return SpanRecord(
        name=name,
        start=start,
        duration=duration,
        parent=parent,
        attrs=tuple(sorted(attrs.items())),
    )


class TestPhaseTotals:
    def test_aggregates_count_total_and_max(self):
        t = RunTelemetry(
            metrics={},
            spans=(
                _span("ivsp", 0.0, 0.5),
                _span("ivsp.video", 0.0, 0.2, parent="ivsp"),
                _span("ivsp.video", 0.2, 0.3, parent="ivsp"),
            ),
        )
        totals = t.phase_totals()
        assert totals["ivsp"] == {
            "count": 1, "total_seconds": 0.5, "max_seconds": 0.5,
        }
        assert totals["ivsp.video"]["count"] == 2
        assert totals["ivsp.video"]["total_seconds"] == pytest.approx(0.5)
        assert totals["ivsp.video"]["max_seconds"] == pytest.approx(0.3)

    def test_keys_sorted_regardless_of_span_order(self):
        t = RunTelemetry(
            metrics={},
            spans=(_span("sorp", 1.0, 0.1), _span("ivsp", 0.0, 0.1)),
        )
        assert list(t.phase_totals()) == ["ivsp", "sorp"]

    def test_empty_spans_empty_totals(self):
        assert RunTelemetry(metrics={}).phase_totals() == {}


@pytest.fixture(scope="module")
def degraded_online_obs():
    """A real online run that amends, degrades, sheds, and retries."""
    topo = Topology()
    topo.add_warehouse("VW")
    topo.add_storage("IS1", srate=units.per_gb_hour(2), capacity=units.gb(8))
    topo.add_storage("IS2", srate=units.per_gb_hour(2), capacity=units.gb(8))
    topo.add_edge("VW", "IS1", nrate=units.per_gb(500))
    topo.add_edge("IS1", "IS2", nrate=units.per_gb(300))
    topo.add_edge("VW", "IS2", nrate=units.per_gb(900))
    catalog = VideoCatalog(
        [
            VideoFile(f"m{i}", size=units.gb(2.5), playback=units.minutes(90))
            for i in range(3)
        ]
    )
    obs = Observability.on(journal=True)
    svc = VORService(topo, catalog, obs=obs)
    for t in (5, 9, 15):
        svc.reserve("alice", "m0", t * H, local_storage="IS1")
    for t in (6, 10):
        svc.reserve("bob", "m1", t * H, local_storage="IS2")
    for i in range(3):
        svc.reserve("carl", "m2", (30 + i) * H, local_storage="IS2")
    report = svc.close_cycle(cycle_end=24 * H)
    feed = FaultFeed(
        events=(
            FaultEvent(
                at=1 * H,
                fault=FaultSpec(
                    kind=FaultKind.IS_OUTAGE, target="IS1",
                    t_start=4 * H, t_end=8 * H,
                ),
            ),
            FaultEvent(
                at=3 * H,
                fault=FaultSpec(
                    kind=FaultKind.IS_OUTAGE, target="IS2",
                    t_start=11 * H, t_end=12 * H,
                ),
            ),
        ),
        name="telemetry-drill",
    )
    loop = OnlineAmendmentLoop(
        svc,
        OnlineLoopConfig(
            max_retries=0,
            breaker_threshold=1,
            breaker_cooldown=100 * H,
            shed_per_degraded_batch=2,
        ),
        failure_injector=TransientFailureInjector({0: 1}),
    )
    run = loop.run(feed, report)
    assert run.shed_total > 0  # the drill genuinely shed reservations
    return obs, run


class TestJsonSnapshotRoundTrip:
    def test_snapshot_parses_back_to_the_source_dict(self, degraded_online_obs):
        obs, _ = degraded_online_obs
        telemetry = obs.telemetry()
        assert json.loads(json_snapshot(telemetry)) == telemetry.to_json_dict()

    def test_carries_online_families(self, degraded_online_obs):
        obs, run = degraded_online_obs
        doc = json.loads(json_snapshot(obs.telemetry()))
        metrics = doc["metrics"]
        assert metrics["vor_online_events_total"]["values"][0]["value"] == 2
        batch_outcomes = {
            tuple(v["labels"].items()): v["value"]
            for v in metrics["vor_online_batches_total"]["values"]
        }
        assert sum(batch_outcomes.values()) == run.batches_total
        assert metrics["vor_online_breaker_transitions_total"]["values"]

    def test_carries_shed_reservations(self, degraded_online_obs):
        obs, run = degraded_online_obs
        metrics = json.loads(json_snapshot(obs.telemetry()))["metrics"]
        assert (
            metrics["vor_online_shed_total"]["values"][0]["value"]
            == run.shed_total
        )
        assert (
            metrics["vor_reservations_shed_total"]["values"][0]["value"]
            == run.shed_total
        )

    def test_phases_section_matches_phase_totals(self, degraded_online_obs):
        obs, _ = degraded_online_obs
        telemetry = obs.telemetry()
        doc = json.loads(json_snapshot(telemetry))
        assert doc["phases"] == telemetry.phase_totals()
        assert "online_run" in doc["phases"]
        assert doc["phases"]["online_batch"]["count"] >= 1

    def test_spans_rebuild_into_span_records(self, degraded_online_obs):
        obs, _ = degraded_online_obs
        doc = json.loads(json_snapshot(obs.telemetry()))
        rebuilt = tuple(
            SpanRecord(
                name=s["name"],
                start=s["start"],
                duration=s["duration"],
                parent=s["parent"],
                attrs=tuple(
                    (k, tuple(v) if isinstance(v, list) else v)
                    for k, v in s["attrs"].items()
                ),
                span_id=s["span_id"],
                parent_id=s["parent_id"],
            )
            for s in doc["spans"]
        )
        names = [r.name for r in rebuilt]
        assert "online_run" in names and "amend_cycle" in names
        ids = {r.span_id for r in rebuilt}
        assert all(r.parent_id in ids or r.parent_id == 0 for r in rebuilt)
