"""Integration tests: observability threaded through the whole pipeline.

The acceptance contract of the obs layer:

* a live handle never changes a bit of any schedule;
* deterministic metric families and span counts are identical across the
  serial/thread/process Phase-1 backends for a seeded batch;
* metrics merged from process workers equal the serial run counter-exact
  and histogram-bucket-exact.
"""

import json

import pytest

from repro import (
    Observability,
    ParallelConfig,
    VideoScheduler,
    VORService,
    WorkloadGenerator,
    paper_catalog,
    paper_topology,
    units,
)
from repro.core.costmodel import CostModel
from repro.core.parallel import ParallelIndividualScheduler
from repro.sim.engine import SimulationEngine


@pytest.fixture(scope="module")
def env():
    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    catalog = paper_catalog(12, seed=3)
    batch = WorkloadGenerator(
        topo, catalog, users_per_neighborhood=2
    ).generate(seed=3)
    return topo, catalog, batch


def _solve(env, *, obs=None, backend="serial", workers=2):
    topo, catalog, batch = env
    parallel = (
        None
        if backend == "serial"
        else ParallelConfig(backend=backend, workers=workers)
    )
    return VideoScheduler(
        topo, catalog, parallel=parallel, obs=obs
    ).solve(batch)


class TestBitIdenticalSchedules:
    def test_obs_on_equals_obs_off(self, env):
        plain = _solve(env)
        observed = _solve(env, obs=Observability.on())
        assert observed.schedule == plain.schedule
        assert observed.cost == plain.cost
        assert observed.resolution.victims == plain.resolution.victims


class TestCrossBackendDeterminism:
    @pytest.fixture(scope="class")
    def runs(self, env):
        out = {}
        for backend in ("serial", "thread", "process"):
            obs = Observability.on()
            out[backend] = (_solve(env, obs=obs, backend=backend), obs)
        return out

    def test_schedules_identical(self, runs):
        serial = runs["serial"][0].schedule
        assert runs["thread"][0].schedule == serial
        assert runs["process"][0].schedule == serial

    def test_deterministic_metric_families_identical(self, runs):
        snaps = {
            backend: obs.metrics.snapshot(deterministic_only=True)
            for backend, (_, obs) in runs.items()
        }
        assert snaps["thread"] == snaps["serial"]
        assert snaps["process"] == snaps["serial"]

    def test_histograms_bucket_exact_across_backends(self, runs):
        for backend in ("thread", "process"):
            serial = runs["serial"][1].metrics.snapshot()
            other = runs[backend][1].metrics.snapshot()
            assert (
                other["vor_requests_per_video"]["values"]
                == serial["vor_requests_per_video"]["values"]
            )

    def test_span_counts_identical(self, runs):
        counts = {
            backend: obs.tracer.counts() for backend, (_, obs) in runs.items()
        }
        for backend in ("thread", "process"):
            assert (
                counts[backend]["ivsp.video"] == counts["serial"]["ivsp.video"]
            )
            assert counts[backend]["sorp"] == counts["serial"]["sorp"]
            assert (
                counts[backend]["sorp.round"] == counts["serial"]["sorp.round"]
            )

    def test_last_gauges_identical_across_backends(self, runs):
        # vor_schedule_cost_dollars is a mode="last" gauge set by the
        # coordinating facade after the shard merges; the Gauge "last"
        # contract (last touched shard in deterministic shard order)
        # makes its value backend-invariant
        def fam(obs):
            return obs.metrics.snapshot()["vor_schedule_cost_dollars"]

        serial = fam(runs["serial"][1])
        assert serial["values"]  # the facade populated it
        assert fam(runs["thread"][1]) == serial
        assert fam(runs["process"][1]) == serial

    def test_cache_eval_totals_deterministic(self, runs):
        # hit/miss splits vary with worker layout, but hits+misses per
        # (cache, phase) counts Ψ evaluations and must match exactly
        def totals(obs):
            snap = obs.metrics.snapshot()
            return snap["vor_psi_evaluations_total"]["values"]

        serial = totals(runs["serial"][1])
        assert totals(runs["thread"][1]) == serial
        assert totals(runs["process"][1]) == serial


class TestShardStats:
    def test_thread_shard_stats_sum_to_total(self, env):
        topo, catalog, batch = env
        engine = ParallelIndividualScheduler(
            CostModel(topo, catalog),
            ParallelConfig(backend="thread", workers=2),
        )
        result = engine.run(batch, catalog)
        assert len(result.shard_stats) > 1
        assert sum(s.hits for s in result.shard_stats) == result.cache_stats.hits
        assert (
            sum(s.misses for s in result.shard_stats)
            == result.cache_stats.misses
        )

    def test_serial_run_reports_one_shard(self, env):
        topo, catalog, batch = env
        result = ParallelIndividualScheduler(CostModel(topo, catalog)).run(
            batch, catalog
        )
        assert result.shard_stats == (result.cache_stats,)
        assert result.cache_stats.lookups > 0


class TestSpanTaxonomy:
    def test_solve_spans_nest(self, env):
        obs = Observability.on()
        _solve(env, obs=obs)
        by_name = {}
        for r in obs.tracer.records:
            by_name.setdefault(r.name, r)
        assert by_name["solve"].parent is None
        assert by_name["ivsp"].parent == "solve"
        assert by_name["ivsp.video"].parent == "ivsp"
        assert by_name["sorp"].parent == "solve"

    def test_phase_totals_cover_pipeline(self, env):
        obs = Observability.on()
        _solve(env, obs=obs)
        phases = obs.telemetry().phase_totals()
        for name in ("solve", "ivsp", "ivsp.video", "sorp", "overflow"):
            assert phases[name]["count"] >= 1
            assert phases[name]["total_seconds"] >= 0.0


class TestReportTelemetry:
    def test_cycle_report_attaches_telemetry(self, env):
        topo, catalog, _ = env
        obs = Observability.on()
        svc = VORService(topo, catalog, lead_time=0.0, obs=obs)
        svc.reserve("alice", "video0001", 5 * units.HOUR, local_storage="IS3")
        report = svc.close_cycle(cycle_end=units.DAY)
        assert report.telemetry is not None
        phases = report.telemetry.phase_totals()
        assert phases["close_cycle"]["count"] == 1
        for name in ("cycle", "ivsp", "billing", "validate"):
            assert name in phases
        assert (
            report.telemetry.metrics["vor_reservations_total"]["values"][0][
                "value"
            ]
            == 1
        )

    def test_cycle_report_telemetry_none_by_default(self, env):
        topo, catalog, _ = env
        svc = VORService(topo, catalog, lead_time=0.0)
        svc.reserve("alice", "video0001", 5 * units.HOUR, local_storage="IS3")
        report = svc.close_cycle(cycle_end=units.DAY)
        assert report.telemetry is None

    def test_simulation_report_telemetry(self, env):
        topo, catalog, batch = env
        result = _solve(env)
        obs = Observability.on()
        engine = SimulationEngine(CostModel(topo, catalog), obs=obs)
        report = engine.run(result.schedule)
        assert report.telemetry is not None
        assert report.telemetry.phase_totals()["simulate"]["count"] == 1
        snap = report.telemetry.metrics
        assert "vor_sim_events_total" in snap
        locations = {
            entry["labels"]["location"]
            for entry in snap["vor_storage_peak_reserved_bytes"]["values"]
        }
        assert locations == {s.name for s in topo.storages}


class TestCliTelemetry:
    @pytest.fixture
    def env_file(self, env, tmp_path):
        from repro.io import save_environment

        topo, catalog, batch = env
        path = tmp_path / "env.json"
        save_environment(path, topology=topo, catalog=catalog, batch=batch)
        return path

    def test_metrics_and_trace_out(self, env_file, tmp_path, capsys):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "run-env",
                    str(env_file),
                    "--metrics-out",
                    str(metrics_path),
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        doc = json.loads(metrics_path.read_text())
        # per-phase wall-time spans, incl. the simulator replay
        for phase in ("ivsp", "sorp", "overflow", "simulate", "solve"):
            assert phase in doc["phases"], phase
            assert doc["phases"][phase]["total_seconds"] >= 0.0
        # Ψ evaluation counters split by cache, cache hit/miss series
        assert "vor_psi_evaluations_total" in doc["metrics"]
        caches = {
            entry["labels"]["cache"]
            for entry in doc["metrics"]["vor_psi_evaluations_total"]["values"]
        }
        assert caches == {"psi_c", "psi_d"}
        assert "vor_cost_cache_hits_total" in doc["metrics"]
        assert "vor_cost_cache_misses_total" in doc["metrics"]
        # per-IS peak storage gauges
        gauges = doc["metrics"]["vor_storage_peak_reserved_bytes"]["values"]
        assert {e["labels"]["location"] for e in gauges} >= {"IS1", "IS2"}
        # trace is one JSON object per line
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert any(r["name"] == "ivsp.video" for r in records)

    def test_prometheus_suffix(self, env_file, tmp_path, capsys):
        from repro.cli import main

        prom_path = tmp_path / "metrics.prom"
        assert (
            main(["run-env", str(env_file), "--metrics-out", str(prom_path)])
            == 0
        )
        text = prom_path.read_text()
        assert "# TYPE vor_deliveries_total counter" in text
        assert "vor_schedule_cost_dollars" in text

    def test_no_flags_no_files(self, env_file, tmp_path, capsys):
        from repro.cli import main

        assert main(["run-env", str(env_file)]) == 0
        assert not (tmp_path / "metrics.json").exists()
        assert not (tmp_path / "trace.jsonl").exists()
