"""Tests for the benchmark baseline-comparison gate.

The speedup report lives under ``benchmarks/`` (not collected by the tier-1
run), so its pure comparison logic is imported here by file path and pinned
against the committed ``BENCH_phase1.json`` baseline's shape.
"""

import importlib.util
import json
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_BASELINE = _ROOT / "benchmarks" / "BENCH_phase1.json"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_scheduler_perf", _ROOT / "benchmarks" / "bench_scheduler_perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def baseline():
    return json.loads(_BASELINE.read_text())


class TestCompareReports:
    def test_identical_reports_pass(self, bench, baseline):
        assert bench.compare_reports(baseline, baseline) == []

    def test_timing_changes_do_not_gate(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        for row in current["backends"]:
            row["wall_time_seconds"] *= 100
            row["speedup"] /= 100
        current["uncached"]["wall_time_seconds"] *= 100
        assert bench.compare_reports(baseline, current) == []

    def test_psi_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["solve"]["psi_total_dollars"] += 0.01
        problems = bench.compare_reports(baseline, current)
        assert len(problems) == 1
        assert "psi_total_dollars" in problems[0]

    def test_overflow_iteration_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["solve"]["overflow_iterations"] += 1
        problems = bench.compare_reports(baseline, current)
        assert any("overflow_iterations" in p for p in problems)

    def test_config_mismatch_fails_before_solve_check(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["config"]["n_videos"] = 999
        current["solve"]["psi_total_dollars"] += 1  # masked by config gate
        problems = bench.compare_reports(baseline, current)
        assert len(problems) == 1
        assert "config.n_videos" in problems[0]

    def test_different_benchmark_name_fails(self, bench, baseline):
        problems = bench.compare_reports(baseline, {"benchmark": "other"})
        assert len(problems) == 1
        assert "benchmark name differs" in problems[0]

    def test_recovery_outcome_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["recovery"]["requests_saved"] -= 1
        current["recovery"]["requests_lost"] += 1
        problems = bench.compare_reports(baseline, current)
        assert any("recovery.requests_saved" in p for p in problems)
        assert any("recovery.requests_lost" in p for p in problems)

    def test_recovery_psi_delta_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["recovery"]["psi_delta_dollars"] += 0.01
        problems = bench.compare_reports(baseline, current)
        assert len(problems) == 1
        assert "recovery.psi_delta_dollars" in problems[0]

    def test_recovery_and_sorp_timing_do_not_gate(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["recovery"]["wall_time_seconds"] *= 100
        current["sorp"]["wall_time_seconds"] *= 100
        assert bench.compare_reports(baseline, current) == []

    def test_online_outcome_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["online"]["requests_lost_windowed"] += 1
        current["online"]["retries"] += 1
        problems = bench.compare_reports(baseline, current)
        assert any("online.requests_lost_windowed" in p for p in problems)
        assert any("online.retries" in p for p in problems)

    def test_online_timing_does_not_gate(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["online"]["wall_time_seconds"] *= 100
        current["online"]["amendment_seconds_max"] *= 100
        current["online"]["amendment_seconds_mean"] *= 100
        assert bench.compare_reports(baseline, current) == []

    def test_horizon_outcome_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["horizon"]["psi_total_dollars"] += 0.01
        current["horizon"]["migrations_accepted"] += 1
        problems = bench.compare_reports(baseline, current)
        assert any("horizon.psi_total_dollars" in p for p in problems)
        assert any("horizon.migrations_accepted" in p for p in problems)

    def test_horizon_trajectory_drift_fails(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["horizon"]["psi_trajectory"][0] += 1.0
        problems = bench.compare_reports(baseline, current)
        assert any("horizon.psi_trajectory" in p for p in problems)

    def test_horizon_timing_does_not_gate(self, bench, baseline):
        current = json.loads(json.dumps(baseline))
        current["horizon"]["wall_time_seconds"] *= 100
        assert bench.compare_reports(baseline, current) == []


class TestCommittedBaseline:
    def test_baseline_has_the_gating_keys(self, bench, baseline):
        assert baseline["benchmark"] == "phase1_speedup"
        for key in bench._DETERMINISTIC_SOLVE_KEYS:
            assert key in baseline["solve"]
        for key in bench._CONFIG_KEYS:
            assert key in baseline["config"]
        assert baseline["config"]["quick"] is True

    def test_baseline_has_the_recovery_keys(self, bench, baseline):
        for key in bench._DETERMINISTIC_RECOVERY_KEYS:
            assert key in baseline["recovery"]
        assert "wall_time_seconds" in baseline["recovery"]
        assert "wall_time_seconds" in baseline["sorp"]
        # the committed drill must demonstrate survivable warehouse loss
        assert baseline["recovery"]["requests_saved"] >= 1

    def test_baseline_has_the_online_keys(self, bench, baseline):
        for key in bench._DETERMINISTIC_ONLINE_KEYS:
            assert key in baseline["online"]
        assert "wall_time_seconds" in baseline["online"]
        # the committed drill must exercise the retry path...
        assert baseline["online"]["failures_injected"] >= 1
        assert baseline["online"]["retries"] >= 1
        # ...and demonstrate the windowed stance strictly dominating
        assert (
            baseline["online"]["requests_lost_windowed"]
            < baseline["online"]["requests_lost_cycle"]
        )

    def test_baseline_has_the_horizon_keys(self, bench, baseline):
        for key in bench._DETERMINISTIC_HORIZON_KEYS:
            assert key in baseline["horizon"]
        assert "wall_time_seconds" in baseline["horizon"]
        # the committed drill must accept a migration, pay real staging,
        # resume an interrupted stream, and beat the frozen-map horizon
        assert baseline["horizon"]["migrations_accepted"] >= 1
        assert baseline["horizon"]["staging_dollars"] > 0
        assert baseline["horizon"]["resumed"] >= 1
        assert (
            baseline["horizon"]["psi_total_dollars"]
            <= baseline["horizon"]["psi_frozen_dollars"]
        )
