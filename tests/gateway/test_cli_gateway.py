"""The run-gateway CLI: replay determinism, diagnostics, dashboards."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _env(tmp_path, *, n_videos=20, users=2, seed=2):
    from repro import paper_catalog, paper_topology, units
    from repro.io import save_environment

    topo = paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )
    path = tmp_path / "env.json"
    save_environment(
        path, topology=topo, catalog=paper_catalog(n_videos, seed=seed)
    )
    return path


class TestRunGateway:
    def test_generated_feed_runs_feasible(self, capsys, tmp_path):
        env = _env(tmp_path)
        assert main(["run-gateway", str(env), "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "gateway for" in out
        assert "gateway run feasible" in out
        assert "objective" in out  # the SLO verdict table rendered

    def test_requires_environment_path(self):
        with pytest.raises(SystemExit, match="requires"):
            main(["run-gateway"])

    def test_replay_is_byte_identical(self, capsys, tmp_path):
        env = _env(tmp_path)
        feed = tmp_path / "feed.jsonl"
        assert (
            main(
                [
                    "run-gateway", str(env), "--seed", "2",
                    "--request-feed-out", str(feed),
                ]
            )
            == 0
        )
        artifacts = []
        for tag in ("a", "b"):
            report = tmp_path / f"report-{tag}.json"
            journal = tmp_path / f"journal-{tag}.jsonl"
            assert (
                main(
                    [
                        "run-gateway", str(env),
                        "--request-feed", str(feed),
                        "--policy", "rate-limit:0.001:3",
                        "--max-batch", "20", "--queue-depth", "5",
                        "--seals", "2",
                        "--gateway-report-out", str(report),
                        "--journal-out", str(journal),
                    ]
                )
                == 0
            )
            artifacts.append((report.read_bytes(), journal.read_bytes()))
        capsys.readouterr()
        assert artifacts[0] == artifacts[1]

    def test_report_document_shape(self, capsys, tmp_path):
        env = _env(tmp_path)
        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "run-gateway", str(env), "--seed", "2",
                    "--gateway-report-out", str(report),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doc = json.loads(report.read_text())
        det = doc["deterministic"]
        assert doc["feasible"] is True
        assert det["offered"] > 0
        assert det["admitted"] > 0
        assert len(det["cycles"]) == 1
        assert "gateway_admission_ratio" in doc["slo"]["indicators"]

    def test_invalid_feed_diagnosed(self, tmp_path):
        env = _env(tmp_path)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit, match="invalid --request-feed"):
            main(["run-gateway", str(env), "--request-feed", str(bad)])

    def test_invalid_policy_diagnosed(self, tmp_path):
        env = _env(tmp_path)
        with pytest.raises(SystemExit, match="invalid gateway options"):
            main(
                [
                    "run-gateway", str(env), "--seed", "2",
                    "--policy", "warp-drive",
                ]
            )

    def test_invalid_seals_diagnosed(self, tmp_path):
        env = _env(tmp_path)
        with pytest.raises(SystemExit, match="--seals"):
            main(["run-gateway", str(env), "--seed", "2", "--seals", "0"])


class TestGatewayDashboard:
    def test_report_renders_gateway_sections(self, capsys, tmp_path):
        env = _env(tmp_path)
        report = tmp_path / "report.json"
        journal = tmp_path / "journal.jsonl"
        assert (
            main(
                [
                    "run-gateway", str(env), "--seed", "2",
                    "--gateway-report-out", str(report),
                    "--journal-out", str(journal),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "report",
                    "--gateway-report", str(report),
                    "--journal", str(journal),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "gateway cycles" in out
        assert "gateway summary" in out
        assert "gate-admitted" in out

    def test_stale_journal_exits_with_taxonomy_message(self, tmp_path):
        stale = tmp_path / "stale.jsonl"
        stale.write_text(
            json.dumps({"seq": 0, "event": "warp-drive", "attrs": {}}) + "\n"
        )
        with pytest.raises(SystemExit, match="event taxonomy") as excinfo:
            main(["report", "--journal", str(stale)])
        assert "cannot load --journal" in str(excinfo.value)
        assert "re-export" in str(excinfo.value)
