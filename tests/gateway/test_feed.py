"""The replayable booking feed: canonical order, JSONL, seeded generation."""

from __future__ import annotations

import math

import pytest

from repro import Request, WorkloadGenerator, units
from repro.errors import GatewayError
from repro.gateway import RequestEvent, RequestFeed


def _event(at=0.0, start=5 * units.HOUR, video="m0", user="u1", storage="IS1"):
    return RequestEvent(at=at, request=Request(start, video, user, storage))


class TestRequestEvent:
    def test_lead_is_booking_to_showing(self):
        assert _event(at=units.HOUR, start=5 * units.HOUR).lead == 4 * units.HOUR

    def test_non_finite_arrival_rejected(self):
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(GatewayError, match="finite"):
                _event(at=bad)

    def test_dict_round_trip(self):
        event = _event(at=120.0)
        assert RequestEvent.from_dict(event.to_dict()) == event

    def test_from_dict_malformed(self):
        with pytest.raises(GatewayError, match="malformed request event"):
            RequestEvent.from_dict({"at": 0.0})


class TestCanonicalOrder:
    def test_events_sorted_on_construction(self):
        feed = RequestFeed(events=(_event(at=10.0), _event(at=0.0)))
        assert [e.at for e in feed] == [0.0, 10.0]

    def test_ties_broken_by_request_fields(self):
        a = _event(at=0.0, video="m0")
        b = _event(at=0.0, video="m1")
        assert RequestFeed(events=(b, a)).events == (a, b)

    def test_construction_order_irrelevant_for_equality(self):
        a, b = _event(at=0.0), _event(at=10.0)
        assert RequestFeed(events=(a, b)) == RequestFeed(events=(b, a))

    def test_duplicates_kept(self):
        feed = RequestFeed(events=(_event(), _event()))
        assert len(feed) == 2


class TestViews:
    def test_span_and_showing_span(self):
        feed = RequestFeed(
            events=(
                _event(at=5.0, start=4 * units.HOUR),
                _event(at=30.0, start=6 * units.HOUR),
            )
        )
        assert feed.span == (5.0, 30.0)
        assert feed.showing_span == (4 * units.HOUR, 6 * units.HOUR)

    def test_empty_feed_spans_raise(self):
        empty = RequestFeed()
        assert not empty
        with pytest.raises(GatewayError, match="empty"):
            empty.span
        with pytest.raises(GatewayError, match="empty"):
            empty.showing_span

    def test_until_keeps_prefix_and_identity(self):
        feed = RequestFeed(
            events=(_event(at=0.0), _event(at=10.0), _event(at=20.0)),
            name="f",
            seed=7,
        )
        sub = feed.until(10.0)
        assert [e.at for e in sub] == [0.0, 10.0]
        assert (sub.name, sub.seed) == ("f", 7)

    def test_batch_is_the_offline_view(self):
        feed = RequestFeed(events=(_event(at=0.0), _event(at=10.0, user="u2")))
        assert len(feed.batch()) == 2


class TestGenerate:
    def test_equal_arguments_equal_feed(self, gw_topology, gw_catalog):
        a = RequestFeed.generate(gw_topology, gw_catalog, seed=2)
        b = RequestFeed.generate(gw_topology, gw_catalog, seed=2)
        assert a == b

    def test_distinct_seeds_distinct_feeds(self, gw_topology, gw_catalog):
        a = RequestFeed.generate(gw_topology, gw_catalog, seed=2)
        b = RequestFeed.generate(gw_topology, gw_catalog, seed=3)
        assert a != b

    def test_batch_matches_direct_workload_generator(
        self, gw_topology, gw_catalog, gw_feed
    ):
        direct = WorkloadGenerator(
            gw_topology, gw_catalog, users_per_neighborhood=2
        ).generate(2)
        assert sorted(gw_feed.batch(), key=repr) == sorted(direct, key=repr)

    def test_bookings_arrive_before_their_showings(self, gw_feed):
        assert all(e.lead >= 0 for e in gw_feed)
        assert all(e.at >= 0.0 for e in gw_feed)

    def test_lead_range_validated(self, gw_topology, gw_catalog):
        for bad in ((-1.0, 10.0), (10.0, 5.0)):
            with pytest.raises(GatewayError, match="lead_range"):
                RequestFeed.generate(
                    gw_topology, gw_catalog, seed=2, lead_range=bad
                )


class TestJsonl:
    def test_save_load_round_trip(self, gw_feed, tmp_path):
        path = tmp_path / "feed.jsonl"
        gw_feed.save(path)
        assert RequestFeed.load(path) == gw_feed

    def test_resave_is_byte_identical(self, gw_feed, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        gw_feed.save(a)
        RequestFeed.load(a).save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        RequestFeed(events=(_event(),), name="f").save(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(RequestFeed.load(path)) == 1

    def test_missing_file_diagnosed(self, tmp_path):
        with pytest.raises(GatewayError, match="cannot read request feed"):
            RequestFeed.load(tmp_path / "absent.jsonl")

    def test_non_json_line_names_path_and_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format_version": 1, "name": "f"}\nnot json\n')
        with pytest.raises(GatewayError, match=r"bad\.jsonl:2: not JSON"):
            RequestFeed.load(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format_version": 1, "name": "f"}\n[1, 2]\n')
        with pytest.raises(GatewayError, match="expected a JSON object"):
            RequestFeed.load(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"at": 0.0}\n')
        with pytest.raises(GatewayError, match="missing feed header"):
            RequestFeed.load(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format_version": 99}\n')
        with pytest.raises(GatewayError, match="unsupported feed format"):
            RequestFeed.load(path)

    def test_malformed_event_names_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format_version": 1, "name": "f"}\n{"at": 0.0}\n'
        )
        with pytest.raises(GatewayError, match=r"bad\.jsonl:2: malformed"):
            RequestFeed.load(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(GatewayError, match="empty feed file"):
            RequestFeed.load(path)
