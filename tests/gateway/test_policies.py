"""Admission policies: decisions, fold-in state, chaining, spec parsing."""

from __future__ import annotations

import pytest

from repro import Request, Topology, VideoCatalog, VideoFile, units
from repro.errors import GatewayError
from repro.gateway import (
    POLICY_REASONS,
    AcceptAllPolicy,
    HeadroomPolicy,
    PolicyChain,
    PriceCeilingPolicy,
    Quote,
    TokenBucketPolicy,
    build_policy,
)


def _quote(price=10.0):
    return Quote(price=price, basis="delivery", psi_d_fresh=price)


def _request(video="v0", user="u1", storage="IS1", start=5 * units.HOUR):
    return Request(start, video, user, storage)


def _tiny_env(capacity_gb=3.0):
    """One warehouse, one 2 GB-video-sized neighborhood cache."""
    topo = Topology()
    topo.add_warehouse("VW")
    topo.add_storage(
        "IS1", srate=units.per_gb_hour(1.0), capacity=units.gb(capacity_gb)
    )
    topo.add_edge("VW", "IS1", nrate=units.per_gb(500))
    catalog = VideoCatalog(
        [
            VideoFile(v, size=units.gb(2.0), playback=units.minutes(90))
            for v in ("v0", "v1")
        ]
    )
    return topo, catalog


class TestAcceptAll:
    def test_admits_everything(self):
        assert AcceptAllPolicy().decide(_request(), _quote(), 0.0) == (True, "")


class TestHeadroom:
    def test_new_video_over_budget_rejected(self):
        topo, catalog = _tiny_env(capacity_gb=3.0)
        policy = HeadroomPolicy(topo, catalog)
        first = _request(video="v0")
        assert policy.decide(first, _quote(), 0.0) == (True, "")
        policy.admitted(first, _quote(), 0.0)
        admit, reason = policy.decide(_request(video="v1"), _quote(), 0.0)
        assert not admit
        assert reason == "is-headroom"
        assert reason in POLICY_REASONS

    def test_admitted_video_always_shares_its_copy(self):
        topo, catalog = _tiny_env(capacity_gb=3.0)
        policy = HeadroomPolicy(topo, catalog)
        policy.admitted(_request(video="v0"), _quote(), 0.0)
        again = _request(video="v0", user="u2")
        assert policy.decide(again, _quote(), 0.0) == (True, "")

    def test_fraction_scales_the_budget(self):
        topo, catalog = _tiny_env(capacity_gb=3.0)
        policy = HeadroomPolicy(topo, catalog, fraction=0.5)
        # half of 3 GB cannot even hold the first 2 GB video
        admit, reason = policy.decide(_request(video="v0"), _quote(), 0.0)
        assert (admit, reason) == (False, "is-headroom")

    def test_reset_forgets_residents(self):
        topo, catalog = _tiny_env(capacity_gb=3.0)
        policy = HeadroomPolicy(topo, catalog)
        policy.admitted(_request(video="v0"), _quote(), 0.0)
        policy.reset()
        assert policy.decide(_request(video="v1"), _quote(), 0.0) == (True, "")

    def test_bad_fraction_rejected(self):
        topo, catalog = _tiny_env()
        with pytest.raises(GatewayError, match="fraction"):
            HeadroomPolicy(topo, catalog, fraction=0.0)


class TestPriceCeiling:
    def test_over_ceiling_rejected(self):
        policy = PriceCeilingPolicy(25.0)
        assert policy.decide(_request(), _quote(25.0), 0.0) == (True, "")
        admit, reason = policy.decide(_request(), _quote(25.01), 0.0)
        assert (admit, reason) == (False, "price-ceiling")

    def test_negative_ceiling_rejected(self):
        with pytest.raises(GatewayError, match="ceiling"):
            PriceCeilingPolicy(-1.0)


class TestTokenBucket:
    def test_burst_then_starved(self):
        policy = TokenBucketPolicy(rate=0.001, burst=2)
        for _ in range(2):
            assert policy.decide(_request(), _quote(), 0.0) == (True, "")
            policy.admitted(_request(), _quote(), 0.0)
        assert policy.decide(_request(), _quote(), 0.0) == (False, "rate-limit")

    def test_refills_on_the_virtual_clock(self):
        policy = TokenBucketPolicy(rate=0.01, burst=1)
        policy.admitted(_request(), _quote(), 0.0)
        assert policy.decide(_request(), _quote(), 10.0) == (False, "rate-limit")
        assert policy.decide(_request(), _quote(), 100.0) == (True, "")

    def test_buckets_are_per_neighborhood(self):
        policy = TokenBucketPolicy(rate=0.001, burst=1)
        policy.admitted(_request(storage="IS1"), _quote(), 0.0)
        assert policy.decide(_request(storage="IS1"), _quote(), 0.0)[0] is False
        assert policy.decide(_request(storage="IS2"), _quote(), 0.0) == (True, "")

    def test_reset_restores_burst(self):
        policy = TokenBucketPolicy(rate=0.001, burst=1)
        policy.admitted(_request(), _quote(), 0.0)
        policy.reset()
        assert policy.decide(_request(), _quote(), 0.0) == (True, "")

    def test_bad_parameters_rejected(self):
        with pytest.raises(GatewayError, match="rate"):
            TokenBucketPolicy(rate=0.0, burst=1)
        with pytest.raises(GatewayError, match="burst"):
            TokenBucketPolicy(rate=1.0, burst=0.5)


class TestChain:
    def test_first_rejector_names_the_reason(self):
        chain = PolicyChain(
            [PriceCeilingPolicy(5.0), TokenBucketPolicy(rate=1.0, burst=1)]
        )
        assert chain.decide(_request(), _quote(50.0), 0.0) == (
            False,
            "price-ceiling",
        )

    def test_all_members_must_admit(self):
        chain = PolicyChain(
            [AcceptAllPolicy(), PriceCeilingPolicy(5.0)]
        )
        assert chain.decide(_request(), _quote(1.0), 0.0) == (True, "")

    def test_admission_folds_into_every_member(self):
        bucket = TokenBucketPolicy(rate=0.001, burst=1)
        chain = PolicyChain([AcceptAllPolicy(), bucket])
        chain.admitted(_request(), _quote(), 0.0)
        assert bucket.decide(_request(), _quote(), 0.0)[0] is False
        chain.reset()
        assert bucket.decide(_request(), _quote(), 0.0)[0] is True

    def test_empty_chain_rejected(self):
        with pytest.raises(GatewayError, match="at least one"):
            PolicyChain([])


class TestBuildPolicy:
    @pytest.fixture
    def env(self):
        return _tiny_env()

    def test_every_spec_form(self, env):
        topo, catalog = env
        cases = {
            "accept-all": AcceptAllPolicy,
            "headroom": HeadroomPolicy,
            "headroom:0.5": HeadroomPolicy,
            "price-ceiling:25": PriceCeilingPolicy,
            "rate-limit:0.01:5": TokenBucketPolicy,
        }
        for spec, cls in cases.items():
            assert isinstance(
                build_policy(spec, topology=topo, catalog=catalog), cls
            )

    def test_chained_spec_builds_a_chain(self, env):
        topo, catalog = env
        policy = build_policy(
            "headroom:0.8,price-ceiling:40,rate-limit:0.02:8",
            topology=topo,
            catalog=catalog,
        )
        assert isinstance(policy, PolicyChain)
        assert len(policy.policies) == 3

    def test_unknown_name_names_the_segment(self, env):
        topo, catalog = env
        with pytest.raises(GatewayError, match="'maybe-later'"):
            build_policy(
                "accept-all,maybe-later", topology=topo, catalog=catalog
            )

    def test_bad_argument_names_the_segment(self, env):
        topo, catalog = env
        with pytest.raises(GatewayError, match="'price-ceiling:cheap'"):
            build_policy("price-ceiling:cheap", topology=topo, catalog=catalog)

    def test_wrong_arity_rejected(self, env):
        topo, catalog = env
        for spec in ("accept-all:1", "rate-limit:0.01", "headroom:1:2"):
            with pytest.raises(GatewayError):
                build_policy(spec, topology=topo, catalog=catalog)

    def test_empty_spec_rejected(self, env):
        topo, catalog = env
        with pytest.raises(GatewayError, match="empty policy spec"):
            build_policy(" , ", topology=topo, catalog=catalog)
