"""Incremental quoting: fresh delivery vs residency extension."""

from __future__ import annotations

import pytest

from repro import CostModel, Request, Topology, units
from repro.baselines.network_only import cheapest_home_route
from repro.gateway import QUOTE_BASES, QuoteEngine

ONE_PM = 13 * units.HOUR
TWO_THIRTY_PM = 14.5 * units.HOUR
FOUR_PM = 16 * units.HOUR


@pytest.fixture
def engine(fig2_topology, fig2_catalog):
    return QuoteEngine(CostModel(fig2_topology, fig2_catalog))


def _request(start, user, storage):
    return Request(start, "movie", user, storage)


class TestFreshDelivery:
    def test_first_quote_is_cheapest_route_psi_d(self, engine, fig2_video):
        request = _request(TWO_THIRTY_PM, "U2", "IS2")
        quote = engine.quote(request)
        route = cheapest_home_route(engine.cost_model, request)
        assert quote.basis == "delivery"
        assert quote.basis in QUOTE_BASES
        assert quote.price == pytest.approx(
            fig2_video.network_volume * route.rate
        )
        assert quote.psi_d_fresh == quote.price
        assert quote.psi_c_extension is None

    def test_quoting_does_not_mutate_state(self, engine):
        request = _request(TWO_THIRTY_PM, "U2", "IS2")
        first = engine.quote(request)
        assert engine.quote(request) == first


class TestResidencyExtension:
    def test_extension_beats_second_delivery(self, engine):
        """The Fig. 2 economics: caching at IS2 between the 2:30 and 4:00
        showings is cheaper than a second independent stream."""
        engine.admit(_request(TWO_THIRTY_PM, "U2", "IS2"))
        quote = engine.quote(_request(FOUR_PM, "U3", "IS2"))
        assert quote.basis == "residency-extension"
        assert quote.psi_c_extension is not None
        assert 0 < quote.price < quote.psi_d_fresh

    def test_showing_inside_admitted_span_is_marginal_free(self, engine):
        engine.admit(_request(ONE_PM, "U1", "IS2"))
        engine.admit(_request(FOUR_PM, "U3", "IS2"))
        quote = engine.quote(_request(TWO_THIRTY_PM, "U2", "IS2"))
        assert quote.basis == "residency-extension"
        assert quote.price == 0.0

    def test_other_storage_does_not_share_the_copy(self, engine):
        engine.admit(_request(TWO_THIRTY_PM, "U2", "IS2"))
        quote = engine.quote(_request(FOUR_PM, "U3", "IS1"))
        assert quote.basis == "delivery"
        assert quote.psi_c_extension is None

    def test_reset_forgets_the_building_batch(self, engine):
        engine.admit(_request(TWO_THIRTY_PM, "U2", "IS2"))
        engine.reset()
        quote = engine.quote(_request(FOUR_PM, "U3", "IS2"))
        assert quote.basis == "delivery"

    def test_admit_widens_span_both_ways(self, engine):
        engine.admit(_request(TWO_THIRTY_PM, "U2", "IS2"))
        engine.admit(_request(ONE_PM, "U1", "IS2"))
        quote = engine.quote(_request(TWO_THIRTY_PM, "U4", "IS2"))
        assert quote.price == 0.0


class TestReachability:
    def test_connected_neighborhood_reachable(self, engine):
        assert engine.reachable(_request(ONE_PM, "U1", "IS1"))

    def test_isolated_neighborhood_unreachable(self, fig2_catalog):
        topo = Topology()
        topo.add_warehouse("VW")
        topo.add_storage(
            "IS1", srate=units.per_gb_hour(1.0), capacity=units.gb(10)
        )
        topo.add_storage(
            "ISX", srate=units.per_gb_hour(1.0), capacity=units.gb(10)
        )
        topo.add_edge("VW", "IS1", nrate=units.per_gb(500))
        engine = QuoteEngine(CostModel(topo, fig2_catalog))
        assert not engine.reachable(_request(ONE_PM, "U1", "ISX"))

    def test_json_dict_carries_provenance(self, engine):
        doc = engine.quote(_request(ONE_PM, "U1", "IS1")).to_json_dict()
        assert set(doc) == {"price", "basis", "psi_d_fresh", "psi_c_extension"}
