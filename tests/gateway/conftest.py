"""Shared fixtures: a small paper environment and a seeded booking feed."""

from __future__ import annotations

import pytest

from repro import Observability, VORService, paper_catalog, units
from repro.gateway import RequestFeed
from repro.topology import paper_topology


def make_service(topology, catalog, **kwargs):
    """A service with journal + metrics on (the gateway's full surface)."""
    kwargs.setdefault("obs", Observability.on(journal=True))
    return VORService(topology, catalog, **kwargs)


@pytest.fixture(scope="session")
def gw_topology():
    return paper_topology(
        nrate=units.per_gb(500),
        srate=units.per_gb_hour(5),
        capacity=units.gb(5),
    )


@pytest.fixture(scope="session")
def gw_catalog():
    return paper_catalog(20, seed=2)


@pytest.fixture(scope="session")
def gw_feed(gw_topology, gw_catalog):
    return RequestFeed.generate(
        gw_topology, gw_catalog, seed=2, users_per_neighborhood=2
    )
